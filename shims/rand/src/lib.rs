//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads and fully deterministic per seed, which
//! is all the workload generators and tests require. It is **not** a
//! cryptographic RNG and the stream differs from upstream `rand`'s
//! `StdRng` (any fixtures derived from sampled values are regenerated in
//! this repo, never shared with upstream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng` under its 0.9+ name).
pub trait RngExt: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + Sized> RngExt for G {}

/// Range types [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
