//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, [`collection::vec`], [`sample::select`], [`Just`],
//! [`any`], and the `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Semantics: each `#[test]` inside `proptest!` runs
//! [`ProptestConfig::cases`] random cases from a deterministic per-test
//! seed. Failing cases panic with the generated inputs in the assertion
//! message. Unlike upstream proptest there is **no shrinking** — a failure
//! reports the raw case that produced it.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Everything tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module path used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic generator derived from the test's name, so every
    /// `cargo test` run replays the same cases.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Defines property tests: each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                // prop_assume! returns out of this closure to skip a case.
                // `mut` is required when $body mutates captured locals;
                // harmless (but flagged) when it does not.
                #[allow(unused_mut)]
                let mut case = || { $body };
                case();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100).prop_flat_map(|lo| (Just(lo), lo..100))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 5u64..10) {
            prop_assert!((5..10).contains(&v));
        }

        #[test]
        fn flat_map_respects_dependency((lo, hi) in pair()) {
            prop_assert!(lo <= hi && hi < 100);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&xs.len()));
        }

        #[test]
        fn select_picks_from_options(x in prop::sample::select(vec![1u8, 3, 7])) {
            prop_assert!([1u8, 3, 7].contains(&x));
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![0u64..3, 10u64..13]) {
            prop_assume!(x != 2);
            prop_assert!(x < 2 || (10..13).contains(&x));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = (0u64..1000, prop::collection::vec(any::<u64>(), 1..4));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
