//! Collection strategies (`prop::collection`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = (self.size.lo..=self.size.hi).generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of `size` elements drawn from `element` (mirrors
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
