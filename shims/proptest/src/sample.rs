//! Sampling strategies (`prop::sample`).

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly from a fixed set of options.
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (0..self.0.len()).generate(rng);
        self.0[i].clone()
    }
}

/// Uniform choice from `options` (mirrors `proptest::sample::select`).
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select(options)
}
