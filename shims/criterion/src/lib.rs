//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of Criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology is simplified but honest: every benchmark is warmed up,
//! then timed over enough iterations to fill a fixed measurement window;
//! the reported figure is the median of per-sample means. Results print
//! as `group/function/parameter  <time>  (<throughput>)` lines. There are
//! no HTML reports and no statistical regression analysis.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The benchmark harness entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(60),
            measurement: Duration::from_millis(240),
        }
    }
}

impl Criterion {
    /// Parses Criterion-style CLI args. This shim accepts and ignores
    /// them (it exists so `cargo bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            warm_up: self.warm_up,
            measurement: self.measurement,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = id.into_benchmark_id().label();
        let group = self.benchmark_group("");
        group.run(label, None, &mut f);
    }
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost; the shim only distinguishes
/// batch sizes when picking iteration counts.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to set up; batch many per measurement.
    SmallInput,
    /// Inputs are expensive; one input per measurement.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` at parameter `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

/// Things accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_owned()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (the shim time-boxes instead, so
    /// this only scales the measurement window slightly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer requested samples => the workload is heavy; keep the
        // window as-is but never below one sample. The parameter is
        // accepted for source compatibility.
        let _ = n;
        self
    }

    /// Sets measurement time for the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Reports per-iteration throughput with subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label();
        let throughput = self.throughput;
        self.run(label, throughput, &mut f);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_benchmark_id().label();
        let throughput = self.throughput;
        self.run(label, throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&self, label: String, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let name = if self.name.is_empty() {
            label
        } else {
            format!("{}/{}", self.name, label)
        };
        match bencher.median_ns() {
            Some(ns) => {
                let rate = throughput
                    .map(|t| Self::format_rate(t, ns))
                    .unwrap_or_default();
                eprintln!("bench: {name:<56} {:>14}{rate}", Self::format_ns(ns));
            }
            None => eprintln!("bench: {name:<56}  (no measurement)"),
        }
    }

    fn format_ns(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:.1} ns/iter")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs/iter", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms/iter", ns / 1_000_000.0)
        } else {
            format!("{:.3} s/iter", ns / 1_000_000_000.0)
        }
    }

    fn format_rate(t: Throughput, ns: f64) -> String {
        let per_second = |n: u64| n as f64 / (ns / 1_000_000_000.0);
        match t {
            Throughput::Bytes(n) => format!("  ({:.1} MiB/s)", per_second(n) / (1024.0 * 1024.0)),
            Throughput::Elements(n) => format!("  ({:.0} elem/s)", per_second(n)),
        }
    }
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut iters_in_warmup: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            iters_in_warmup += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_in_warmup as f64;
        let samples = 10usize;
        let iters_per_sample =
            ((self.measurement.as_secs_f64() / samples as f64) / per_iter).ceil() as u64;
        let iters_per_sample = iters_per_sample.max(1);

        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up with a single input.
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_iter = warm_start.elapsed().as_secs_f64().max(1e-9);

        let budget = self.measurement.as_secs_f64();
        let total_iters = (budget / per_iter).ceil().clamp(1.0, 1_000_000.0) as u64;
        let samples = 10u64.min(total_iters);
        let iters_per_sample = (total_iters / samples).max(1);

        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    fn median_ns(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Runs one or more `criterion_group!`s as `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_positive_median() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter_batched(
                || vec![n; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", "p").label(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).label(), "3");
    }
}
