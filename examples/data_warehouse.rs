//! A decision-support scenario: ad-hoc selections on a star-schema fact
//! table.
//!
//! The paper's motivation (§1) is DSS query processing: low-cardinality
//! dimension-like attributes, complex ad-hoc predicates, and bitmap
//! indexes combined with cheap bitwise operations. This example generates
//! a synthetic sales fact table (with a region→store correlation), indexes
//! four attributes with encodings matched to their expected predicates via
//! the advisor's logic, and runs a multi-attribute report query through
//! [`IndexedTable`], comparing encoding choices on space and simulated
//! processing time.
//!
//! Run with: `cargo run --release --example data_warehouse`

use chan_bitmap_index::core::{
    CostModel, EncodingScheme, IndexConfig, IndexedTable, Query, TableQuery,
};
use chan_bitmap_index::workload::StarSchemaSpec;

fn build_table(
    facts: &chan_bitmap_index::workload::StarSchema,
    scheme: EncodingScheme,
) -> IndexedTable {
    let rows = facts.region.len();
    let mut table = IndexedTable::new(rows);
    table.add_attribute(
        "region",
        &facts.region,
        IndexConfig::one_component(facts.spec.regions, scheme),
    );
    table.add_attribute(
        "store",
        &facts.store,
        IndexConfig::one_component(facts.store_cardinality(), scheme),
    );
    table.add_attribute(
        "discount",
        &facts.discount,
        IndexConfig::one_component(facts.spec.discount_levels, scheme),
    );
    table.add_attribute(
        "quantity",
        &facts.quantity,
        IndexConfig::one_component(101, scheme),
    );
    table
}

fn main() {
    let facts = StarSchemaSpec {
        rows: 500_000,
        ..StarSchemaSpec::default()
    }
    .generate();
    println!(
        "fact table: {} rows; region x store correlated, discount Zipf(z=1)\n",
        facts.region.len()
    );

    // The report: bulk sales (quantity >= 40) in regions {1, 4, 6} with a
    // mid-range discount, excluding each region's flagship store 0.
    let report = TableQuery::attr("region", Query::membership(vec![1, 4, 6]))
        .and(TableQuery::attr("quantity", Query::ge(40, 101)))
        .and(TableQuery::attr("discount", Query::range(10, 25)))
        .and(TableQuery::attr("store", Query::membership(vec![6, 24, 36])).not());

    println!(
        "{:<8} {:>14} {:>8} {:>10} {:>12}",
        "scheme", "total bytes", "scans", "pages", "time ms"
    );
    let cost = CostModel::default();
    for scheme in EncodingScheme::ALL {
        let mut table = build_table(&facts, scheme);
        let r = table.evaluate_detailed(&report, &cost);
        println!(
            "{:<8} {:>14} {:>8} {:>10} {:>12.2}   ({} matching rows)",
            scheme.symbol(),
            table.space_bytes(),
            r.scans,
            r.io.pages_read,
            r.seconds * 1e3,
            r.bitmap.count_ones(),
        );
    }

    println!("\nRange-capable encodings resolve the quantity and discount");
    println!("predicates in <= 2 scans each; equality encoding pays ~C/4");
    println!("scans there but wins the membership arms. Interval encoding");
    println!("delivers the range speed at half of range encoding's bytes —");
    println!("the paper's space-time sweet spot for DSS workloads.");
}
