//! Designing a bitmap index for your workload — the §2 optimization
//! problem, solved interactively.
//!
//! The paper frames bitmap-index design as picking a point in the
//! two-dimensional space (encoding scheme × decomposition). This example
//! walks three workloads through the advisor, prints each Pareto
//! frontier, and then verifies the recommendation empirically by timing
//! real queries against the recommended index and the runner-up.
//!
//! Run with: `cargo run --release --example index_advisor`

use chan_bitmap_index::analysis::{advise, knee_design, Workload};
use chan_bitmap_index::core::{
    BitmapIndex, BufferPool, CostModel, EncodingScheme, EvalStrategy, IndexConfig, Query,
};
use chan_bitmap_index::workload::DatasetSpec;

fn show(name: &str, c: u64, workload: &Workload, budget: Option<usize>) {
    println!("== {name} (C = {c}, budget = {budget:?} bitmaps) ==");
    let advice = advise(c, workload, budget);
    println!("   pareto frontier:");
    for d in &advice.frontier {
        println!(
            "     {:<4} n={}  {:>4} bitmaps  {:.2} scans/query",
            d.encoding.symbol(),
            d.n_components,
            d.bitmaps,
            d.expected_scans
        );
    }
    match &advice.recommended {
        Some(d) => println!(
            "   recommended: {} with {} component(s), {} bitmaps, {:.2} scans\n",
            d.encoding.symbol(),
            d.n_components,
            d.bitmaps,
            d.expected_scans
        ),
        None => println!("   nothing fits the budget\n"),
    }
}

fn main() {
    let c = 50u64;

    // 1. Point-lookup heavy (an OLTP-ish dimension key).
    show("point lookups", c, &Workload::equality_only(), Some(60));

    // 2. Range scans under space pressure — the paper's sweet spot for
    // interval encoding.
    show(
        "range scans, tight space",
        c,
        &Workload::range_only(),
        Some(30),
    );

    // 3. Mixed membership queries with room to spare: buy speed with ER.
    let mixed = Workload {
        equality: 0.5,
        one_sided: 0.25,
        two_sided: 0.25,
        membership_constituents: 2.0,
    };
    show("mixed membership, generous space", c, &mixed, Some(120));

    // The knee of each encoding's own space-time curve.
    println!("== knee of each encoding's decomposition curve (range workload) ==");
    for encoding in EncodingScheme::BASIC {
        let knee = knee_design(c, encoding, &Workload::range_only());
        println!(
            "   {:<2} knee: n={} ({} bitmaps, {:.2} scans)",
            encoding.symbol(),
            knee.n_components,
            knee.bitmaps,
            knee.expected_scans
        );
    }

    // Verify the range-scan recommendation empirically.
    println!("\n== empirical check: range workload, I vs R, 100k rows ==");
    let data = DatasetSpec {
        rows: 100_000,
        cardinality: c,
        zipf_z: 1.0,
        seed: 21,
    }
    .generate();
    let cost = CostModel::default();
    for scheme in [EncodingScheme::Interval, EncodingScheme::Range] {
        let mut index = BitmapIndex::build(&data.values, &IndexConfig::one_component(c, scheme));
        let mut total = 0.0;
        let mut scans = 0usize;
        let queries: Vec<Query> = (5..45)
            .step_by(5)
            .map(|lo| Query::range(lo, lo + 4))
            .collect();
        for q in &queries {
            let mut pool = BufferPool::new(2048);
            index.reset_stats();
            let r = index.evaluate_detailed(q, &mut pool, EvalStrategy::ComponentWise, &cost);
            total += r.total_seconds();
            scans += r.scans;
        }
        println!(
            "   {:<2} {:>8} bytes, {:.1} scans/query, {:.2} ms/query",
            scheme.symbol(),
            index.space_bytes(),
            scans as f64 / queries.len() as f64,
            total / queries.len() as f64 * 1e3
        );
    }
    println!("\nInterval encoding matches range encoding's speed at half the");
    println!("space — which is why the advisor picks it under a budget.");
}
