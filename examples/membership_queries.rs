//! Membership queries and the hybrid encoding schemes (§5).
//!
//! A membership query `A IN {v1, …, vk}` rewrites into a disjunction of a
//! minimal set of interval queries; hybrid schemes trade space for
//! answering each constituent with the cheaper bitmap family. This
//! example walks the paper's own §5 query, shows the minimal-interval
//! rewrite, and compares all seven schemes on scans and space across the
//! paper's 8 query-set shapes.
//!
//! Run with: `cargo run --release --example membership_queries`

use chan_bitmap_index::core::{minimal_intervals, BitmapIndex, EncodingScheme, IndexConfig, Query};
use chan_bitmap_index::workload::{DatasetSpec, QuerySetSpec};

fn main() {
    // The paper's example: A IN {6, 19, 20, 21, 22, 35}, C = 50.
    let values = vec![6u64, 19, 20, 21, 22, 35];
    println!("membership query: A IN {values:?}");
    println!("minimal interval rewrite: {:?}", minimal_intervals(&values));
    println!("  -> (A = 6) OR (19 <= A <= 22) OR (A = 35)\n");

    let data = DatasetSpec {
        rows: 100_000,
        cardinality: 50,
        zipf_z: 1.0,
        seed: 3,
    }
    .generate();

    println!("scans needed per scheme for this query (C = 50):");
    let query = Query::membership(values);
    for scheme in EncodingScheme::ALL {
        let mut index = BitmapIndex::build(&data.values, &IndexConfig::one_component(50, scheme));
        let expr = index.rewrite(&query);
        let matches = index.evaluate(&query).count_ones();
        println!(
            "  {:<4} {:>3} bitmaps stored, {:>2} scanned, {matches} rows matched",
            scheme.symbol(),
            index.num_bitmaps(),
            expr.scan_count(),
        );
    }

    // Average scans over the paper's 8 query-set shapes.
    println!("\naverage scans per membership query, by query-set shape:");
    print!("{:<14}", "(Nint, Nequ)");
    for scheme in EncodingScheme::ALL {
        print!("{:>6}", scheme.symbol());
    }
    println!();
    for spec in QuerySetSpec::paper_query_sets() {
        let queries = spec.generate(50, 10, 42);
        print!("{:<14}", format!("({}, {})", spec.n_int, spec.n_equ));
        for scheme in EncodingScheme::ALL {
            let index = BitmapIndex::build(&data.values, &IndexConfig::one_component(50, scheme));
            let total: usize = queries
                .iter()
                .map(|q| index.rewrite(&Query::Membership(q.values())).scan_count())
                .sum();
            print!("{:>6.1}", total as f64 / queries.len() as f64);
        }
        println!();
    }

    println!("\nER is the fastest (both families materialized, ~2x space);");
    println!("EI* keeps hybrid speed at two-thirds of EI's space; equality");
    println!("encoding wins only the equality-rich rows (Nequ = Nint).");
}
