//! Quickstart: build bitmap indexes with the three basic encoding schemes
//! and evaluate the paper's query classes on each.
//!
//! Run with: `cargo run --release --example quickstart`

use chan_bitmap_index::core::{BitmapIndex, EncodingScheme, IndexConfig, Query};

fn main() {
    // The paper's running example: a 12-record relation, attribute
    // cardinality C = 10 (Figure 1a).
    let column: Vec<u64> = vec![3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4];
    println!("column: {column:?}\n");

    let queries = [
        ("A = 2        (equality)", Query::equality(2)),
        ("A <= 4       (one-sided)", Query::le(4)),
        ("2 <= A <= 5  (two-sided)", Query::range(2, 5)),
        (
            "A IN {0,5,9} (membership)",
            Query::membership(vec![0, 5, 9]),
        ),
    ];

    for scheme in EncodingScheme::BASIC {
        let config = IndexConfig::one_component(10, scheme);
        let mut index = BitmapIndex::build(&column, &config);
        println!(
            "=== {} encoding: {} bitmaps, {} bytes on disk ===",
            scheme,
            index.num_bitmaps(),
            index.space_bytes()
        );
        for (label, query) in &queries {
            // The rewrite alone shows how many bitmaps a query touches.
            let expr = index.rewrite(query);
            let rows = index.evaluate(query).to_positions();
            println!(
                "  {label}  -> rows {rows:?}  ({} bitmap scans)",
                expr.scan_count()
            );
        }
        println!();
    }

    println!("The headline result: interval encoding answers every query");
    println!("above in at most 2 scans with only ceil(C/2) = 5 bitmaps,");
    println!("half the space of range encoding's 9.");
}
