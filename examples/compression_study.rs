//! Compression and skew: when does compressing the index pay off?
//!
//! The paper's conclusion: for low-to-medium skew, uncompressed indexes
//! have better space-time performance (interval encoding winning);
//! for medium-to-high skew, compressed indexes win because bitmaps become
//! highly compressible. This example sweeps Zipf skew z = 0..3 and prints
//! space and simulated query time for raw vs BBC vs WAH storage of each
//! basic scheme.
//!
//! Run with: `cargo run --release --example compression_study`

use chan_bitmap_index::core::{
    BitmapIndex, BufferPool, CodecKind, CostModel, EncodingScheme, EvalStrategy, IndexConfig, Query,
};
use chan_bitmap_index::workload::DatasetSpec;

fn main() {
    let rows = 200_000;
    let c = 50u64;
    // Two eras: the paper's testbed (slow disk AND slow CPU) and a modern
    // NVMe machine. The compressed-vs-uncompressed verdict flips between
    // them at low skew.
    let eras = [
        ("1997 (paper hardware)", CostModel::paper_hardware()),
        ("2026 (modern NVMe)", CostModel::modern_nvme()),
    ];
    let query = Query::range(10, 35);

    println!("rows = {rows}, C = {c}, query: 10 <= A <= 35\n");
    for (era, cost) in &eras {
        println!("=== {era} ===");
        println!(
            "{:>3} {:<7} {:<8} {:>12} {:>10} {:>10}",
            "z", "scheme", "codec", "space bytes", "pages", "time ms"
        );
        for z in [0.0f64, 2.0] {
            let data = DatasetSpec {
                rows,
                cardinality: c,
                zipf_z: z,
                seed: 9,
            }
            .generate();
            for scheme in EncodingScheme::BASIC {
                for codec in [
                    CodecKind::Raw,
                    CodecKind::Bbc,
                    CodecKind::Wah,
                    CodecKind::Roaring,
                ] {
                    let mut index = BitmapIndex::build(
                        &data.values,
                        &IndexConfig::one_component(c, scheme).with_codec(codec),
                    );
                    let mut pool = BufferPool::new(2048);
                    let r = index.evaluate_detailed(
                        &query,
                        &mut pool,
                        EvalStrategy::ComponentWise,
                        cost,
                    );
                    println!(
                        "{:>3} {:<7} {:<8} {:>12} {:>10} {:>10.3}",
                        z,
                        scheme.symbol(),
                        codec.name(),
                        index.space_bytes(),
                        r.io.pages_read,
                        r.total_seconds() * 1e3,
                    );
                }
            }
            println!();
        }
    }

    println!("On 1997 hardware at z = 0 the compressed forms pay decompression");
    println!("CPU for little space: uncompressed wins (the paper's Figure 9).");
    println!("At z = 2 runs dominate and compression wins on both axes. On");
    println!("modern hardware decompression is nearly free and compressed");
    println!("forms win at every skew — the trade-off's 25-year drift.");
}
