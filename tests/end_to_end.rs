//! Cross-crate integration tests: workload generation → index build →
//! rewrite → evaluation through the simulated disk, validated against
//! brute-force scans and against the analytic cost model.

use chan_bitmap_index::analysis;
use chan_bitmap_index::core::{
    BitmapIndex, BufferPool, CodecKind, CostModel, EncodingScheme, EvalStrategy, IndexConfig, Query,
};
use chan_bitmap_index::workload::{DatasetSpec, QuerySetSpec};

fn dataset(z: f64) -> chan_bitmap_index::workload::Dataset {
    DatasetSpec {
        rows: 20_000,
        cardinality: 50,
        zipf_z: z,
        seed: 42,
    }
    .generate()
}

#[test]
fn every_scheme_every_query_set_matches_brute_force() {
    let data = dataset(1.0);
    for scheme in EncodingScheme::ALL {
        let mut index = BitmapIndex::build(&data.values, &IndexConfig::one_component(50, scheme));
        for spec in QuerySetSpec::paper_query_sets() {
            for q in spec.generate(50, 3, 7) {
                let query = Query::Membership(q.values());
                let got = index.evaluate(&query);
                for (row, &v) in data.values.iter().enumerate() {
                    assert_eq!(
                        got.get(row),
                        q.matches(v),
                        "{scheme} query {:?} row {row}",
                        q.intervals
                    );
                }
            }
        }
    }
}

#[test]
fn compressed_and_multi_component_agree_with_one_component_raw() {
    let data = dataset(2.0);
    let query = Query::membership(vec![0, 7, 8, 9, 30, 49]);
    let mut reference = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Equality),
    );
    let expect = reference.evaluate(&query).to_positions();

    for scheme in EncodingScheme::ALL {
        for n in [1usize, 2, 3] {
            for codec in [CodecKind::Raw, CodecKind::Bbc, CodecKind::Wah] {
                let config = IndexConfig::n_components(50, scheme, n).with_codec(codec);
                let mut index = BitmapIndex::build(&data.values, &config);
                assert_eq!(
                    index.evaluate(&query).to_positions(),
                    expect,
                    "{scheme} n={n} {codec}"
                );
            }
        }
    }
}

/// The measured distinct-bitmap count of a single interval query equals
/// the analytic expression scan count, and averaging over a query class
/// reproduces `Time(S, C, Q)` from the analysis crate.
#[test]
fn measured_scans_match_analytic_expected_scans() {
    let data = dataset(0.0);
    let c = 50u64;
    for scheme in EncodingScheme::BASIC {
        let mut index = BitmapIndex::build(&data.values, &IndexConfig::one_component(c, scheme));
        for class in [
            analysis::QueryClass::Eq,
            analysis::QueryClass::OneSided,
            analysis::QueryClass::TwoSided,
        ] {
            let queries = analysis::queries_in_class(class, c);
            let mut total = 0usize;
            for &(lo, hi) in &queries {
                let mut pool = BufferPool::new(4096);
                index.reset_stats();
                let r = index.evaluate_detailed(
                    &Query::range(lo, hi),
                    &mut pool,
                    EvalStrategy::ComponentWise,
                    &CostModel::default(),
                );
                total += r.scans;
            }
            let measured = total as f64 / queries.len() as f64;
            let analytic = analysis::expected_scans(scheme, c, class);
            assert!(
                (measured - analytic).abs() < 1e-9,
                "{scheme} {class}: measured {measured} vs analytic {analytic}"
            );
        }
    }
}

/// NOT queries (the paper's "NOT (x <= A <= y)" interval form) are exact
/// complements through the entire pipeline.
#[test]
fn negated_queries_are_exact_complements() {
    let data = dataset(1.0);
    let mut index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Interval),
    );
    let q = Query::range(13, 37);
    let pos = index.evaluate(&q);
    let neg = index.evaluate(&q.clone().not());
    assert!(pos.and(&neg).is_all_zero());
    assert_eq!(pos.count_ones() + neg.count_ones(), data.values.len());
}

/// Physical clustering is the other compression lever (the paper keeps
/// placement random; this is the ablation): sorting the column makes even
/// the half-dense interval bitmaps collapse to a few runs.
#[test]
fn sorted_columns_compress_dramatically_better() {
    let random = dataset(1.0);
    let sorted = random.clone().into_sorted();
    for scheme in EncodingScheme::BASIC {
        let config = IndexConfig::one_component(50, scheme).with_codec(CodecKind::Bbc);
        let shuffled_size = BitmapIndex::build(&random.values, &config).space_bytes();
        let sorted_size = BitmapIndex::build(&sorted.values, &config).space_bytes();
        assert!(
            sorted_size * 10 < shuffled_size,
            "{scheme}: sorted {sorted_size} vs shuffled {shuffled_size}"
        );
    }
}

/// Skewed data compresses better — the premise behind Figures 7 and 9.
#[test]
fn compression_improves_with_skew() {
    let mut previous = usize::MAX;
    for z in [0.0f64, 1.0, 2.0, 3.0] {
        let data = dataset(z);
        let index = BitmapIndex::build(
            &data.values,
            &IndexConfig::one_component(50, EncodingScheme::Equality).with_codec(CodecKind::Bbc),
        );
        assert!(
            index.space_bytes() <= previous,
            "z={z}: {} > previous {previous}",
            index.space_bytes()
        );
        previous = index.space_bytes();
    }
}

/// The §6.3 scheduling heuristic: under a tight buffer pool, reordering
/// constituents to keep shared bitmaps adjacent reduces disk reads
/// compared to naive query-wise order, without changing the result.
#[test]
fn scheduled_query_wise_reduces_io_under_tight_pool() {
    let data = dataset(1.0);
    let mut index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Interval),
    );
    // Constituents 1 and 3 share I^0 with constituent 5; interleaved with
    // others so naive order thrashes a tiny pool. Intervals chosen so the
    // interval-encoded expressions overlap heavily on low slots.
    let query = Query::membership(
        [(0u64, 3u64), (20, 22), (5, 8), (30, 31), (10, 13)]
            .iter()
            .flat_map(|&(lo, hi)| lo..=hi)
            .collect::<Vec<u64>>(),
    );
    let cost = CostModel::default();
    let mut run = |strategy| {
        // Pool of 2 pages: each bitmap here is one page, so only two
        // bitmaps stay resident.
        let mut pool = BufferPool::new(2);
        index.reset_stats();
        index.evaluate_detailed(&query, &mut pool, strategy, &cost)
    };
    let naive = run(EvalStrategy::QueryWise);
    let scheduled = run(EvalStrategy::QueryWiseScheduled);
    assert_eq!(naive.bitmap, scheduled.bitmap);
    assert!(
        scheduled.io.pages_read <= naive.io.pages_read,
        "scheduled {} > naive {}",
        scheduled.io.pages_read,
        naive.io.pages_read
    );
}

/// §6.3's streaming component-wise evaluation: same answers, same single
/// scan per distinct bitmap, but bounded working memory — for the nested
/// multi-component rewrites it holds strictly fewer bitmaps in memory
/// than the cache-everything strategy.
#[test]
fn streaming_component_wise_bounds_memory() {
    let data = dataset(1.0);
    let mut index = BitmapIndex::build(
        &data.values,
        &chan_bitmap_index::core::IndexConfig::n_components(50, EncodingScheme::Range, 2),
    );
    // n1 = 2 equality/one-sided constituents, n2 = 2 two-sided.
    let query = Query::membership(
        [(3u64, 3u64), (10, 20), (30, 35), (44, 44)]
            .iter()
            .flat_map(|&(lo, hi)| lo..=hi)
            .collect::<Vec<u64>>(),
    );
    let cost = CostModel::default();
    let mut run = |strategy| {
        let mut pool = BufferPool::new(4096);
        index.reset_stats();
        index.evaluate_detailed(&query, &mut pool, strategy, &cost)
    };
    let streaming = run(EvalStrategy::ComponentStreaming);
    let cached = run(EvalStrategy::ComponentWise);
    assert_eq!(streaming.bitmap, cached.bitmap);
    assert_eq!(streaming.scans, streaming.distinct_bitmaps, "no rescans");
    assert!(
        streaming.peak_resident < cached.peak_resident,
        "streaming {} !< cache-all {}",
        streaming.peak_resident,
        cached.peak_resident
    );
}

/// An 11 MB pool (the paper's §7 setting) is enough for component-wise
/// evaluation never to rescan at this scale.
#[test]
fn paper_pool_size_avoids_rescans() {
    let data = dataset(1.0);
    let mut index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::EqualityRange),
    );
    let pages = index.config().disk.pages_for_bytes(11 << 20);
    let mut pool = BufferPool::new(pages);
    let query = Query::membership((0..50).step_by(3).collect::<Vec<u64>>());
    let r = index.evaluate_detailed(
        &query,
        &mut pool,
        EvalStrategy::ComponentWise,
        &CostModel::default(),
    );
    assert_eq!(r.scans, r.distinct_bitmaps);
}
