//! Golden tests for the paper's §6 worked rewrite examples, asserted
//! against the human-readable `explain` output so a reviewer can match
//! them to the paper line by line.

use chan_bitmap_index::core::{BaseVector, BitmapIndex, EncodingScheme, IndexConfig, Query};

fn index(c: u64, scheme: EncodingScheme, bases_msb: &[u64]) -> BitmapIndex {
    // An empty column is fine: we only inspect the rewrite.
    BitmapIndex::build(
        &[],
        &IndexConfig::one_component(c, scheme).with_bases(BaseVector::from_msb(bases_msb)),
    )
}

/// §6.1 step 2-3: "A <= 85" over a base-<10,10> equality-encoded index
/// becomes "(A_2 <= 7) ∨ [(A_2 = 8) ∧ (A_1 <= 5)]", and at the bitmap
/// level the range predicates open into Equation-(1) disjunctions.
#[test]
fn paper_a_le_85_equality_encoded() {
    let idx = index(100, EncodingScheme::Equality, &[10, 10]);
    let text = idx.explain(&Query::le(85));
    // Both components referenced; the A_2 = 8 arm survives as E^8[c2].
    assert!(text.contains("E^8[c2]"), "{text}");
    assert!(text.contains("E^5[c1]") || text.contains("¬"), "{text}");
    // Equation (1) evaluates A_2 <= 7 as the complement of {8, 9}.
    assert!(text.contains("¬(E^8[c2] ∨ E^9[c2])"), "{text}");
}

/// The same query over range encoding needs just two bitmaps:
/// "(A_2 <= 7) ∨ [(A_2 <= 8) ∧ (A_1 <= 5)]" with R bitmaps.
#[test]
fn paper_a_le_85_range_encoded() {
    let idx = index(100, EncodingScheme::Range, &[10, 10]);
    let text = idx.explain(&Query::le(85));
    assert_eq!(text, "R^7[c2] ∨ (R^8[c2] ∧ R^5[c1])");
    assert_eq!(idx.rewrite(&Query::le(85)).scan_count(), 3);
}

/// §6.2: "A <= 499" over base-<10,10,10> simplifies to "A_3 <= 4" — the
/// trailing-maximal-digit trim.
#[test]
fn paper_a_le_499_trims_to_one_predicate() {
    let idx = index(1000, EncodingScheme::Range, &[10, 10, 10]);
    assert_eq!(idx.explain(&Query::le(499)), "R^4[c3]");
}

/// §6.2: "4326 <= A <= 4377" over base-<10,10,10,10>: the common prefix
/// becomes equality conjuncts "(A_4 = 4) ∧ (A_3 = 3)".
#[test]
fn paper_common_prefix_4326_4377() {
    let idx = index(10_000, EncodingScheme::Range, &[10, 10, 10, 10]);
    let text = idx.explain(&Query::range(4326, 4377));
    // Range-encoded equality on a digit is an XOR of adjacent R bitmaps.
    assert!(
        text.starts_with("(R^4[c4] ⊕ R^3[c4]) ∧ (R^3[c3] ⊕ R^2[c3])"),
        "{text}"
    );
    // The suffix brackets 26..77 over the low two digits.
    assert!(text.contains("R^1[c2]"), "{text}"); // ¬(A_2A_1 <= 25) arm
}

/// §6.2 (equality-encoded refinement): the same query splits the top
/// differing digit into three arms: 3 <= A_2 <= 6, A_2 = 2 ∧ A_1 >= 6,
/// A_2 = 7 ∧ A_1 <= 7.
#[test]
fn paper_common_prefix_equality_split() {
    let idx = index(10_000, EncodingScheme::Equality, &[10, 10, 10, 10]);
    let text = idx.explain(&Query::range(4326, 4377));
    // Middle arm: E^3..E^6 on component 2.
    for v in 3..=6 {
        assert!(text.contains(&format!("E^{v}[c2]")), "{text}");
    }
    // Low arm anchored at A_2 = 2, high arm at A_2 = 7.
    assert!(text.contains("E^2[c2]"), "{text}");
    assert!(text.contains("E^7[c2]"), "{text}");
    // And the whole thing is still correct.
    let mut idx2 = BitmapIndex::build(
        &(4300..4400).collect::<Vec<u64>>(),
        &IndexConfig::one_component(10_000, EncodingScheme::Equality)
            .with_bases(BaseVector::from_msb(&[10, 10, 10, 10])),
    );
    assert_eq!(
        idx2.evaluate(&Query::range(4326, 4377)).count_ones(),
        (4326..=4377).count()
    );
}

/// Figure 4's contrast, in explain form: a two-sided range under range
/// encoding XORs two prefixes; under interval encoding it intersects or
/// unions two windows.
#[test]
fn figure_4_contrast_range_vs_interval() {
    let r = index(10, EncodingScheme::Range, &[10]);
    assert_eq!(r.explain(&Query::range(3, 6)), "R^6 ⊕ R^2");
    let i = index(10, EncodingScheme::Interval, &[10]);
    // Width 4 = m: exactly one stored window.
    assert_eq!(i.explain(&Query::range(3, 7)), "I^3");
    // Wider: union of two windows.
    assert_eq!(i.explain(&Query::range(1, 8)), "I^1 ∨ I^4");
}

/// Equation (4) in explain form, C = 10 (the paper's Figure 5 index).
#[test]
fn equation_4_explained() {
    let i = index(10, EncodingScheme::Interval, &[10]);
    assert_eq!(i.explain(&Query::equality(2)), "I^2 ∧ ¬I^3");
    assert_eq!(i.explain(&Query::equality(4)), "I^4 ∧ I^0");
    assert_eq!(i.explain(&Query::equality(7)), "I^3 ∧ ¬I^2");
    assert_eq!(i.explain(&Query::equality(9)), "¬(I^4 ∨ I^0)");
}
