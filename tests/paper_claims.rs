//! The paper's headline qualitative claims, asserted end-to-end. Each
//! test names the section it reproduces; EXPERIMENTS.md records the
//! quantitative side.

use chan_bitmap_index::core::{BitmapIndex, EncodingScheme, IndexConfig, Query};
use chan_bitmap_index::workload::{DatasetSpec, QuerySetSpec};

fn dataset() -> chan_bitmap_index::workload::Dataset {
    DatasetSpec {
        rows: 30_000,
        cardinality: 50,
        zipf_z: 1.0,
        seed: 1,
    }
    .generate()
}

/// §4: interval encoding guarantees at most two scans for any interval
/// query while storing ⌈C/2⌉ bitmaps — about half of range encoding.
#[test]
fn interval_is_two_scan_at_half_the_space() {
    let c = 50u64;
    let i_bitmaps = EncodingScheme::Interval.num_bitmaps(c);
    let r_bitmaps = EncodingScheme::Range.num_bitmaps(c);
    assert_eq!(i_bitmaps, 25);
    assert_eq!(r_bitmaps, 49);
    for lo in 0..c {
        for hi in lo..c {
            let scans = EncodingScheme::Interval
                .expr_range(c, lo, hi, 0)
                .scan_count();
            assert!(scans <= 2, "[{lo},{hi}]: {scans}");
        }
    }
}

/// §5.1: ER is the most time-efficient scheme per *constituent* — one
/// scan for an equality, at most two for a range, and never beaten by any
/// other scheme on a single interval query. (Across whole membership
/// queries, interval encoding can occasionally edge it out because its
/// expressions share bitmaps between constituents — e.g. `[16,17]` and
/// `[22,40]` at C = 50 both touch `I^16` — an effect of the DAG
/// evaluation; the test below pins that behaviour too.)
#[test]
fn er_scans_are_minimal_per_constituent() {
    let c = 50u64;
    for lo in 0..c {
        for hi in lo..c {
            let er = EncodingScheme::EqualityRange
                .expr_range(c, lo, hi, 0)
                .scan_count();
            assert!(er <= 2, "[{lo},{hi}]: {er}");
            if lo == hi {
                assert!(er <= 1, "equality [{lo}]: {er}");
            }
            for scheme in EncodingScheme::ALL {
                let other = scheme.expr_range(c, lo, hi, 0).scan_count();
                // Interval-family schemes answer a range of exactly the
                // window width (hi − lo = ⌊C/2⌋ − 1) with a single stored
                // bitmap — the one shape that beats ER's two-scan XOR.
                let window_hit = other == 1 && hi - lo == c / 2 - 1;
                assert!(
                    er <= other || window_hit,
                    "{scheme} beats ER on [{lo},{hi}] ({other} vs {er})"
                );
            }
        }
    }
}

/// DAG sharing: interval expressions for different constituents of one
/// membership query can reference the same bitmap, which the evaluator
/// then scans once — beating even ER on total scans for this query.
#[test]
fn interval_dag_sharing_can_beat_er_on_membership() {
    let data = dataset();
    let query = Query::membership((16..=17).chain(22..=40).collect::<Vec<u64>>());
    let i_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Interval),
    );
    let er_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::EqualityRange),
    );
    let i_scans = i_index.rewrite(&query).scan_count();
    let er_scans = er_index.rewrite(&query).scan_count();
    assert_eq!(i_scans, 3, "I^16 is shared between the two constituents");
    assert_eq!(er_scans, 4);
}

/// §7.2: equality encoding wins the equality-rich query sets
/// (N_equ = N_int) on scans, at one scan per constituent.
#[test]
fn equality_wins_equality_rich_sets() {
    let data = dataset();
    let e_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Equality),
    );
    let i_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Interval),
    );
    for spec in [
        QuerySetSpec { n_int: 1, n_equ: 1 },
        QuerySetSpec { n_int: 2, n_equ: 2 },
        QuerySetSpec { n_int: 5, n_equ: 5 },
    ] {
        for q in spec.generate(50, 10, 5) {
            let query = Query::Membership(q.values());
            let e = e_index.rewrite(&query).scan_count();
            let i = i_index.rewrite(&query).scan_count();
            assert_eq!(e, spec.n_int, "E is one scan per equality constituent");
            assert!(e <= i, "equality-rich set: E {e} vs I {i}");
        }
    }
}

/// §7.2 (converse): interval encoding needs no more scans than equality
/// encoding on the range-only query sets (N_equ = 0).
#[test]
fn interval_wins_range_heavy_sets() {
    let data = dataset();
    let e_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Equality),
    );
    let i_index = BitmapIndex::build(
        &data.values,
        &IndexConfig::one_component(50, EncodingScheme::Interval),
    );
    for spec in [
        QuerySetSpec { n_int: 1, n_equ: 0 },
        QuerySetSpec { n_int: 2, n_equ: 0 },
        QuerySetSpec { n_int: 5, n_equ: 0 },
    ] {
        for q in spec.generate(50, 10, 5) {
            let query = Query::Membership(q.values());
            assert!(
                i_index.rewrite(&query).scan_count() <= e_index.rewrite(&query).scan_count(),
                "range-heavy set {:?}",
                q.intervals
            );
        }
    }
}

/// §5.4: EI* stores about two-thirds of EI's bitmaps and still answers
/// every equality query in at most two scans.
#[test]
fn ei_star_space_time_claim() {
    let c = 50u64;
    let ei = EncodingScheme::EqualityInterval.num_bitmaps(c) as f64;
    let ei_star = EncodingScheme::EqualityIntervalStar.num_bitmaps(c) as f64;
    assert!((ei_star / ei - 2.0 / 3.0).abs() < 0.05);
    for v in 0..c {
        assert!(
            EncodingScheme::EqualityIntervalStar
                .expr_eq(c, v, 0)
                .scan_count()
                <= 2,
            "v={v}"
        );
    }
}

/// §7.1: equality encoding compresses best, interval encoding worst
/// (interval bitmaps are half-dense, so run-length coding cannot help).
#[test]
fn compressibility_ordering_matches_figure_6b() {
    use chan_bitmap_index::core::CodecKind;
    let data = dataset();
    let ratio = |scheme| {
        let raw = BitmapIndex::build(&data.values, &IndexConfig::one_component(50, scheme));
        let bbc = BitmapIndex::build(
            &data.values,
            &IndexConfig::one_component(50, scheme).with_codec(CodecKind::Bbc),
        );
        bbc.space_bytes() as f64 / raw.space_bytes() as f64
    };
    let e = ratio(EncodingScheme::Equality);
    let r = ratio(EncodingScheme::Range);
    let i = ratio(EncodingScheme::Interval);
    assert!(e < r, "E ({e:.3}) should compress better than R ({r:.3})");
    assert!(r < i || (i - r).abs() < 0.05, "R ({r:.3}) vs I ({i:.3})");
    assert!(
        i > 0.9,
        "interval bitmaps are nearly incompressible, got {i:.3}"
    );
}

/// Figure 1 / Figure 5: the worked example matrices, bit for bit.
#[test]
fn figure_1_and_5_bit_matrices() {
    let column = vec![3u64, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4];

    // Figure 1(b), row 1 (value 3): E^3 set, everything else clear.
    let mut e = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(10, EncodingScheme::Equality),
    );
    let row0: Vec<u8> = (0..10).map(|s| u8::from(e.bitmap(0, s).get(0))).collect();
    assert_eq!(row0, [0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);

    // Figure 1(c), row 1: R^3..R^8 set.
    let mut r = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(10, EncodingScheme::Range),
    );
    let row0: Vec<u8> = (0..9).map(|s| u8::from(r.bitmap(0, s).get(0))).collect();
    assert_eq!(row0, [0, 0, 0, 1, 1, 1, 1, 1, 1]);

    // Figure 5(c), row 1 (value 3): I^0..I^3 set, I^4 clear
    // (I^j = [j, j+4] contains 3 iff j <= 3).
    let mut i = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(10, EncodingScheme::Interval),
    );
    let row0: Vec<u8> = (0..5).map(|s| u8::from(i.bitmap(0, s).get(0))).collect();
    assert_eq!(row0, [1, 1, 1, 1, 0]);
}
