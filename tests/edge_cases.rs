//! Failure injection and boundary conditions promised in DESIGN.md §8:
//! minimal cardinalities, degenerate columns, starved buffer pools, empty
//! results, and maximal queries — across every encoding scheme.

use chan_bitmap_index::core::{
    BitmapIndex, BufferPool, CodecKind, CostModel, EncodingScheme, EvalStrategy, IndexConfig, Query,
};

/// Every scheme must work at the smallest legal cardinalities, where the
/// paper's formulas are full of special cases (C = 2 stores a single
/// bitmap under several encodings).
#[test]
fn minimal_cardinalities_all_schemes() {
    for c in 2u64..=4 {
        let column: Vec<u64> = (0..100).map(|i| i % c).collect();
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for codec in [CodecKind::Raw, CodecKind::Bbc, CodecKind::Wah] {
                let config = IndexConfig::one_component(c, scheme).with_codec(codec);
                let mut idx = BitmapIndex::build(&column, &config);
                for lo in 0..c {
                    for hi in lo..c {
                        let got = idx.evaluate(&Query::range(lo, hi)).count_ones();
                        let expect = column.iter().filter(|&&v| lo <= v && v <= hi).count();
                        assert_eq!(got, expect, "{scheme} {codec} C={c} [{lo},{hi}]");
                    }
                }
            }
        }
    }
}

/// C = 1 has no legal encoding (interval's window width `⌊C/2⌋ − 1`
/// would underflow): the scheme boundary must reject it with a clear
/// error instead of wrapping.
#[test]
#[should_panic(expected = "cardinality must be at least 2")]
fn cardinality_one_rejected_at_build() {
    let config = IndexConfig::one_component(1, EncodingScheme::Interval);
    BitmapIndex::build(&[0, 0, 0], &config);
}

/// The same guard holds when driving the expression API directly.
#[test]
#[should_panic(expected = "cardinality must be at least 2")]
fn cardinality_one_rejected_by_expr_eq() {
    EncodingScheme::Interval.expr_eq(1, 0, 0);
}

#[test]
#[should_panic(expected = "cardinality must be at least 2")]
fn cardinality_one_rejected_by_expr_range() {
    EncodingScheme::Interval.expr_range(1, 0, 0, 0);
}

/// C ∈ {2, 3} exercise the `m = 0` special cases of the interval family;
/// check the full query space (equalities, ranges, negations, memberships)
/// for every scheme, not just the range sweep above.
#[test]
fn tiny_cardinality_full_query_space() {
    for c in 2u64..=3 {
        let column: Vec<u64> = (0..120).map(|i| (i * 7 + i / 3) % c).collect();
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            let mut idx = BitmapIndex::build(&column, &IndexConfig::one_component(c, scheme));
            let mut queries: Vec<Query> = Vec::new();
            for v in 0..c {
                queries.push(Query::equality(v));
                queries.push(Query::equality(v).not());
                queries.push(Query::le(v));
                queries.push(Query::membership(vec![v]));
            }
            queries.push(Query::membership((0..c).collect::<Vec<u64>>()));
            queries.push(Query::membership(vec![]));
            for q in queries {
                let got = idx.evaluate(&q).count_ones();
                let expect = column.iter().filter(|&&v| q.matches(v)).count();
                assert_eq!(got, expect, "{scheme} C={c} {q:?}");
            }
        }
    }
}

/// A column where every record holds the same value: most bitmaps are
/// all-zero (maximally compressible), some all-one.
#[test]
fn constant_column() {
    let column = vec![7u64; 5_000];
    for scheme in EncodingScheme::ALL_WITH_VARIANTS {
        let config = IndexConfig::one_component(10, scheme).with_codec(CodecKind::Bbc);
        let mut idx = BitmapIndex::build(&column, &config);
        assert_eq!(idx.evaluate(&Query::equality(7)).count_ones(), 5_000);
        assert_eq!(idx.evaluate(&Query::equality(3)).count_ones(), 0);
        assert_eq!(idx.evaluate(&Query::le(6)).count_ones(), 0);
        assert_eq!(idx.evaluate(&Query::ge(7, 10)).count_ones(), 5_000);
        // All-zero bitmaps compress to almost nothing.
        assert!(
            idx.space_bytes() < idx.uncompressed_bytes() / 10,
            "{scheme}"
        );
    }
}

/// An empty column: zero-length bitmaps must survive the whole pipeline.
#[test]
fn empty_column() {
    for scheme in EncodingScheme::BASIC {
        let config = IndexConfig::one_component(10, scheme);
        let mut idx = BitmapIndex::build(&[], &config);
        assert_eq!(idx.rows(), 0);
        assert!(idx.evaluate(&Query::range(0, 9)).is_empty());
        assert!(idx.evaluate(&Query::equality(5).not()).is_empty());
    }
}

/// A one-page buffer pool forces maximal rescans but never wrong answers,
/// under every strategy.
#[test]
fn starved_buffer_pool() {
    let column: Vec<u64> = (0..50_000).map(|i| (i * 13) % 50).collect();
    let query = Query::membership((0..50).step_by(4).collect::<Vec<u64>>());
    let expect: Vec<usize> = column
        .iter()
        .enumerate()
        .filter(|(_, &v)| v % 4 == 0)
        .map(|(i, _)| i)
        .collect();
    for scheme in [EncodingScheme::Equality, EncodingScheme::Interval] {
        let mut idx = BitmapIndex::build(&column, &IndexConfig::one_component(50, scheme));
        for strategy in [
            EvalStrategy::ComponentWise,
            EvalStrategy::QueryWise,
            EvalStrategy::QueryWiseScheduled,
        ] {
            let mut pool = BufferPool::new(1);
            let r = idx.evaluate_detailed(&query, &mut pool, strategy, &CostModel::default());
            assert_eq!(r.bitmap.to_positions(), expect, "{scheme} {strategy:?}");
        }
    }
}

/// Queries at the extreme ends of the domain, which exercise every
/// encoding's special-case branches (v = 0, v = C−1, full domain).
#[test]
fn boundary_queries() {
    let column: Vec<u64> = (0..10_000).map(|i| i % 50).collect();
    for scheme in EncodingScheme::ALL_WITH_VARIANTS {
        let mut idx = BitmapIndex::build(&column, &IndexConfig::one_component(50, scheme));
        assert_eq!(idx.evaluate(&Query::equality(0)).count_ones(), 200);
        assert_eq!(idx.evaluate(&Query::equality(49)).count_ones(), 200);
        assert_eq!(idx.evaluate(&Query::range(0, 49)).count_ones(), 10_000);
        assert_eq!(idx.evaluate(&Query::le(0)).count_ones(), 200);
        assert_eq!(idx.evaluate(&Query::ge(49, 50)).count_ones(), 200);
        assert_eq!(
            idx.evaluate(&Query::range(0, 49).not()).count_ones(),
            0,
            "{scheme}"
        );
        // Full-domain membership.
        assert_eq!(
            idx.evaluate(&Query::membership((0..50).collect::<Vec<u64>>()))
                .count_ones(),
            10_000
        );
        // Empty membership.
        assert_eq!(idx.evaluate(&Query::membership(vec![])).count_ones(), 0);
    }
}

/// Values absent from the data: valid domain values that no record holds.
#[test]
fn queries_on_absent_values() {
    // Column only uses even values; odd values exist in the domain only.
    let column: Vec<u64> = (0..1_000).map(|i| (i % 25) * 2).collect();
    for scheme in EncodingScheme::ALL_WITH_VARIANTS {
        let mut idx = BitmapIndex::build(&column, &IndexConfig::one_component(50, scheme));
        assert_eq!(
            idx.evaluate(&Query::equality(7)).count_ones(),
            0,
            "{scheme}"
        );
        assert_eq!(
            idx.evaluate(&Query::membership(vec![1, 3, 5])).count_ones(),
            0
        );
        assert_eq!(idx.evaluate(&Query::range(7, 7)).count_ones(), 0);
    }
}

/// Single-row relations: every bitmap is one bit long.
#[test]
fn single_row_relation() {
    for scheme in EncodingScheme::ALL_WITH_VARIANTS {
        let mut idx = BitmapIndex::build(&[3], &IndexConfig::one_component(10, scheme));
        assert_eq!(idx.evaluate(&Query::equality(3)).to_positions(), vec![0]);
        assert_eq!(idx.evaluate(&Query::equality(4)).count_ones(), 0);
        assert_eq!(idx.evaluate(&Query::equality(3).not()).count_ones(), 0);
    }
}

/// Component bases of exactly 2 (the footnote-2 single-bitmap case)
/// mixed with larger bases in one index.
#[test]
fn base_two_components() {
    use chan_bitmap_index::core::BaseVector;
    let column: Vec<u64> = (0..2_000).map(|i| i % 48).collect();
    for scheme in EncodingScheme::ALL_WITH_VARIANTS {
        let config =
            IndexConfig::one_component(48, scheme).with_bases(BaseVector::from_msb(&[2, 12, 2]));
        let mut idx = BitmapIndex::build(&column, &config);
        for q in [Query::equality(47), Query::range(11, 37), Query::le(23)] {
            let got = idx.evaluate(&q).count_ones();
            let expect = column.iter().filter(|&&v| q.matches(v)).count();
            assert_eq!(got, expect, "{scheme} {q:?}");
        }
    }
}
