//! # chan-bitmap-index
//!
//! A complete reproduction of Chan & Ioannidis, *"An Efficient Bitmap
//! Encoding Scheme for Selection Queries"* (SIGMOD 1999): the equality,
//! range, and interval bitmap encoding schemes, the four hybrid schemes for
//! membership queries, multi-component bitmap indexes with the paper's
//! query rewrite and buffer-aware evaluation, BBC-style byte-aligned
//! compression, and the full experimental harness regenerating every table
//! and figure of the paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`bitvec`] — the uncompressed bit-vector substrate
//! * [`compress`] — BBC and WAH bitmap codecs
//! * [`storage`] — simulated disk, buffer pool, and I/O cost model
//! * [`workload`] — Zipf data sets and the paper's query-set generator
//! * [`core`] — encoding schemes, decomposition, rewrite, and evaluation
//! * [`analysis`] — space-time cost model and optimality search
//! * [`server`] — the TCP query server, wire protocol, and client library
//!
//! # Quickstart
//!
//! ```
//! use chan_bitmap_index::core::{BitmapIndex, EncodingScheme, IndexConfig, Query};
//!
//! // A small column over domain 0..10.
//! let column: Vec<u64> = vec![3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4];
//!
//! // Build a one-component interval-encoded index.
//! let config = IndexConfig::one_component(10, EncodingScheme::Interval);
//! let mut index = BitmapIndex::build(&column, &config);
//!
//! // Evaluate "2 <= A <= 5".
//! let result = index.evaluate(&Query::range(2, 5));
//! assert_eq!(result.to_positions(), vec![0, 1, 3, 5, 9, 11]);
//! ```

#![warn(missing_docs)]

pub use bix_analysis as analysis;
pub use bix_bitvec as bitvec;
pub use bix_compress as compress;
pub use bix_core as core;
pub use bix_server as server;
pub use bix_storage as storage;
pub use bix_workload as workload;

// Compile-check the README's code blocks as doctests.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
