//! `bix` — a command-line front end for the bitmap-index library.
//!
//! ```text
//! bix build   --input data.csv [--column 0] --cardinality C
//!             [--encoding I] [--codec raw|bbc|wah|ewah|roaring]
//!             [--components N] --out index.bix [--metrics-out file.json]
//! bix query   index.bix <predicate>   # '=5' '<=10' '3..7' 'in:1,2,9' '!3..7'
//!             [--eval-domain auto|compressed|raw]
//!             [--trace] [--trace-out spans.jsonl] [--metrics-out file.json]
//! bix query   index.bix --batch queries.txt [--parallel N] [--pool-pages P]
//!             [--eval-domain auto|compressed|raw]
//!             [--trace] [--trace-out spans.jsonl] [--metrics-out file.json]
//! bix buildcat --input table.csv --out star.bixcat
//!             [--encoding I] [--codec raw|bbc|wah|ewah|roaring]
//!             [--components N]    # header row names the attributes; one
//!                                 # index per column, cardinality = max+1
//! bix query   --catalog star.bixcat "<expr>" [--count] [--parallel N]
//!             [--eval-domain auto|compressed|raw] [--metrics-out file.json]
//!                                 # boolean multi-attribute selection, e.g.
//!                                 # "region in {0,1} and (discount >= 7 or
//!                                 #  not store = 12)"; --count skips row
//!                                 # materialisation (popcount pushdown)
//! bix explain index.bix <predicate> [--eval-domain auto|compressed|raw]
//!                                     # expression, per-constituent scans,
//!                                     # predicted cost-model seconds, and a
//!                                     # traced fold: per-node chosen domain
//!                                     # with predicted-vs-actual time
//! bix explain --catalog star.bixcat "<expr>"
//!                                     # parsed expression, rewrite action
//!                                     # log, DNF clauses, and per-literal
//!                                     # predicted cost through its index
//! bix stats   index.bix [--json]      # metrics snapshot: Prometheus text
//!                                     # by default, JSON with --json
//! bix info    index.bix
//! bix advise  --cardinality C [--equality X --one-sided Y --two-sided Z]
//!             [--budget BITMAPS]
//! bix verify  index.bix|star.bixcat   # checksum every bitmap; exit 2 if corrupt
//! bix repair  index.bix [--out file] [--metrics-out file.json]
//! bix repair  star.bixcat             # rebuild every repairable attribute
//! bix serve   index.bix|star.bixcat [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--deadline-ms MS] [--request-threads N] [--pool-pages P]
//!             [--shard-id N]      # stamp replies as shard N (row-range member)
//!             [--slow-ms MS]      # slow-query capture threshold (0 = all)
//! bix route   --shards H:P,H:P[,...] [--addr HOST:PORT] [--workers N]
//!             [--queue-depth N] [--deadline-ms MS] [--retries N]
//!             [--health-interval-ms MS] [--slow-ms MS]
//!                                 # scatter-gather front-end over row-range
//!                                 # shards (shard order = row order)
//! bix client  ping|query|table|batch|stats|slowlog|reload|shutdown|help
//!             --addr HOST:PORT | --via-router HOST:PORT ...
//!             # query  <predicate> [--eval-domain ...] [--deadline-ms MS]
//!             #        [--trace] [--trace-out spans.jsonl]  # distributed trace
//!             # table  "<expr>" [--count] [--eval-domain ...] [--deadline-ms MS]
//!             #        # multi-attribute query against a catalog server or a
//!             #        # router over catalog shards; --count sums shard popcounts
//!             # batch  <file>      [--eval-domain ...] [--deadline-ms MS]
//!             # stats  [--json]
//!             # slowlog            # slow-query log (router: whole fleet)
//!             # reload <server-side index path>
//!             # common: [--retries N] [--allow-degraded]
//!             # exit codes: 0 ok, 2 usage/connect, 3 overloaded,
//!             #             4 deadline, 5 degraded, 6 unavailable,
//!             #             7 bad query, 8 wire/malformed
//! bix top     --addr HOST:PORT [--interval-ms MS] [--iterations N]
//!                                 # live fleet view: per-node qps, p50/p99,
//!                                 # breaker state, in-flight load
//! ```
//!
//! The input file is one value per line, or CSV with `--column` selecting
//! a zero-based field. Query output is matching row numbers (zero-based),
//! one per line, plus a summary on stderr. `--eval-domain` picks whether
//! the evaluation DAG folds compressed streams directly (`compressed`),
//! decodes every bitmap at read time (`raw`), or chooses per DAG node by
//! a measured cost model (`auto`, the default). `--trace` prints the span tree
//! on stderr; `--trace-out` writes one JSON object per span (JSONL);
//! `--metrics-out` writes a JSON metrics snapshot (counters, gauges, and
//! per-phase latency histograms).

use bix_telemetry::{json, TraceContext};
use chan_bitmap_index::analysis::{advise, Workload};
use chan_bitmap_index::core::{
    BitmapIndex, BitmapRef, BufferPool, Catalog, CodecKind, CostModel, EncodingScheme, EvalDomain,
    EvalResult, EvalStrategy, IndexConfig, IoMetrics, MetricsRegistry, ParallelExecutor, Planner,
    Query, RewriteAction, ShardedBufferPool, TableQuery, Tracer, EXISTENCE_REF,
};
use chan_bitmap_index::server::{
    Client, ClientError, ErrorCode as WireErrorCode, RetryPolicy, Router, RouterConfig, Server,
    ServerConfig, StatsFormat, MAX_INGEST,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("buildcat") => cmd_buildcat(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("repair") => cmd_repair(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        // `client` and `ingest` map typed outcomes to distinct exit
        // codes so chaos scripts and CI can assert without parsing
        // stderr.
        Some("client") => {
            return match cmd_client(&args[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(CliFailure { exit_code, message }) => {
                    eprintln!("error: {message}");
                    ExitCode::from(exit_code)
                }
            }
        }
        Some("ingest") => {
            return match cmd_ingest(&args[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(CliFailure { exit_code, message }) => {
                    eprintln!("error: {message}");
                    ExitCode::from(exit_code)
                }
            }
        }
        _ => Err(
            "usage: bix <build|buildcat|query|info|explain|stats|advise|verify|repair|serve|route|client|ingest|top> ..."
                .to_string(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--flag` is present.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--eval-domain auto|compressed|raw` (default: auto).
fn parse_eval_domain(args: &[String]) -> Result<EvalDomain, String> {
    match flag_value(args, "--eval-domain") {
        None => Ok(EvalDomain::default()),
        Some(v) => EvalDomain::parse(&v)
            .ok_or_else(|| format!("--eval-domain must be auto, compressed, or raw (got {v})")),
    }
}

/// Registers the index-shape gauges every metrics snapshot carries.
fn register_index_gauges(registry: &MetricsRegistry, index: &BitmapIndex) {
    let config = index.config();
    let set = |name: &str, help: &str, v: f64| registry.gauge(name, help).set(v);
    set("bix_index_rows", "Indexed records", index.rows() as f64);
    set(
        "bix_index_cardinality",
        "Attribute cardinality C",
        config.cardinality as f64,
    );
    set(
        "bix_index_components",
        "Decomposition components",
        config.bases.n() as f64,
    );
    set(
        "bix_index_bitmaps",
        "Stored bitmaps",
        index.num_bitmaps() as f64,
    );
    set(
        "bix_index_stored_bytes",
        "On-disk index size (compressed)",
        index.space_bytes() as f64,
    );
    set(
        "bix_index_raw_bytes",
        "Uncompressed index size",
        index.uncompressed_bytes() as f64,
    );
}

/// Registers the evaluation-mix counters — decompressions plus DAG
/// nodes folded per domain — charged from a set of query results.
fn register_eval_counters<'a>(
    registry: &MetricsRegistry,
    results: impl IntoIterator<Item = &'a EvalResult>,
) {
    let decompressions = registry.counter(
        "bix_eval_decompressions_total",
        "Compressed bitmaps materialised during evaluation",
    );
    let nodes_raw = registry.counter(
        "bix_eval_nodes_raw_total",
        "DAG nodes folded in the raw (decoded) domain",
    );
    let nodes_compressed = registry.counter(
        "bix_eval_nodes_compressed_total",
        "DAG nodes folded in the compressed domain",
    );
    for r in results {
        decompressions.add(r.decompressions as u64);
        nodes_raw.add(r.nodes_raw as u64);
        nodes_compressed.add(r.nodes_compressed as u64);
    }
}

/// Writes the registry's JSON snapshot to `path` (for `--metrics-out`).
fn write_metrics(path: &str, registry: &MetricsRegistry) -> Result<(), String> {
    std::fs::write(path, registry.snapshot().to_json())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Emits trace output as requested: the human-readable tree on stderr
/// for `--trace`, JSONL spans into the `--trace-out` file.
fn emit_trace(args: &[String], tracer: &Tracer) -> Result<(), String> {
    if has_flag(args, "--trace") {
        eprint!("{}", tracer.render_tree());
    }
    if let Some(path) = flag_value(args, "--trace-out") {
        std::fs::write(&path, tracer.render_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Whether any tracing output was requested.
fn wants_trace(args: &[String]) -> bool {
    has_flag(args, "--trace") || flag_value(args, "--trace-out").is_some()
}

fn parse_encoding(s: &str) -> Result<EncodingScheme, String> {
    EncodingScheme::ALL_WITH_VARIANTS
        .into_iter()
        .find(|e| e.symbol().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown encoding {s} (use E, R, I, ER, O, EI, EI*, I+)"))
}

fn parse_codec(s: &str) -> Result<CodecKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "raw" => Ok(CodecKind::Raw),
        "bbc" => Ok(CodecKind::Bbc),
        "wah" => Ok(CodecKind::Wah),
        "ewah" => Ok(CodecKind::Ewah),
        "roaring" => Ok(CodecKind::Roaring),
        other => Err(format!(
            "unknown codec {other} (use raw, bbc, wah, ewah, roaring)"
        )),
    }
}

/// Parses the CLI predicate grammar into a [`Query`] (see
/// [`Query::parse`] for the grammar).
fn parse_predicate(s: &str, cardinality: u64) -> Result<Query, String> {
    Query::parse(s, cardinality).map_err(|e| e.to_string())
}

/// Reads one column of values from a text/CSV file.
fn read_column(path: &str, column: usize) -> Result<Vec<u64>, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut values = Vec::new();
    for (line_no, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let field = line
            .split(',')
            .nth(column)
            .ok_or_else(|| format!("{path}:{}: no column {column}", line_no + 1))?;
        let v: u64 = field
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: bad value {field:?}", line_no + 1))?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(format!("{path} contains no values"));
    }
    Ok(values)
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let input = flag_value(args, "--input").ok_or("--input is required")?;
    let out = flag_value(args, "--out").ok_or("--out is required")?;
    let column: usize = flag_value(args, "--column")
        .map(|v| v.parse().map_err(|_| "--column must be a number"))
        .transpose()?
        .unwrap_or(0);
    let values = read_column(&input, column)?;

    let cardinality: u64 = match flag_value(args, "--cardinality") {
        Some(v) => v.parse().map_err(|_| "--cardinality must be a number")?,
        None => values.iter().max().copied().unwrap_or(1) + 1,
    };
    let encoding = parse_encoding(&flag_value(args, "--encoding").unwrap_or_else(|| "I".into()))?;
    let codec = parse_codec(&flag_value(args, "--codec").unwrap_or_else(|| "raw".into()))?;
    let components: usize = flag_value(args, "--components")
        .map(|v| v.parse().map_err(|_| "--components must be a number"))
        .transpose()?
        .unwrap_or(1);

    let config = IndexConfig::n_components(cardinality, encoding, components).with_codec(codec);
    let build_started = std::time::Instant::now();
    let index = BitmapIndex::build(&values, &config);
    let build_seconds = build_started.elapsed().as_secs_f64();
    index
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    if let Some(metrics_out) = flag_value(args, "--metrics-out") {
        let registry = MetricsRegistry::new();
        register_index_gauges(&registry, &index);
        registry
            .gauge("bix_build_seconds", "Wall-clock index build time")
            .set(build_seconds);
        IoMetrics::register(&registry).record(&index.io_stats());
        write_metrics(&metrics_out, &registry)?;
    }
    eprintln!(
        "built {} index over {} rows (C={cardinality}, {} bitmaps, {} bytes) -> {out}",
        encoding.symbol(),
        values.len(),
        index.num_bitmaps(),
        index.space_bytes(),
    );
    Ok(())
}

/// Flags that consume a value argument, shared by the catalog-aware
/// subcommands so positional arguments (the expression) can be found
/// wherever they sit relative to `--flag value` pairs.
const VALUE_FLAGS: &[&str] = &[
    "--catalog",
    "--eval-domain",
    "--parallel",
    "--pool-pages",
    "--metrics-out",
    "--trace-out",
    "--input",
    "--out",
    "--encoding",
    "--codec",
    "--components",
];

/// The first positional (non-flag) argument, skipping `--flag value`
/// pairs for every flag in [`VALUE_FLAGS`].
fn first_positional(args: &[String]) -> Option<&String> {
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += if VALUE_FLAGS.contains(&args[i].as_str()) {
                2
            } else {
                1
            };
            continue;
        }
        return Some(&args[i]);
    }
    None
}

/// Reads a whole table from a headed CSV: the first non-empty line
/// names the attributes, every following line is one row of u64 values.
fn read_table(path: &str) -> Result<(Vec<String>, Vec<Vec<u64>>), String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = contents
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or_else(|| format!("{path} is empty"))?;
    let names: Vec<String> = header
        .split(',')
        .map(|f| f.trim().to_string())
        .filter(|f| !f.is_empty())
        .collect();
    if names.is_empty() {
        return Err(format!("{path}: header row names no attributes"));
    }
    let mut columns: Vec<Vec<u64>> = vec![Vec::new(); names.len()];
    for (line_no, line) in lines {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != names.len() {
            return Err(format!(
                "{path}:{}: {} field(s), header has {}",
                line_no + 1,
                fields.len(),
                names.len()
            ));
        }
        for (column, field) in columns.iter_mut().zip(&fields) {
            let v: u64 = field
                .parse()
                .map_err(|_| format!("{path}:{}: bad value {field:?}", line_no + 1))?;
            column.push(v);
        }
    }
    if columns[0].is_empty() {
        return Err(format!("{path} contains no rows"));
    }
    Ok((names, columns))
}

fn cmd_buildcat(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: bix buildcat --input table.csv --out star.bixcat \
         [--encoding I] [--codec raw|bbc|wah|ewah|roaring] [--components N]";
    let input = flag_value(args, "--input").ok_or(USAGE)?;
    let out = flag_value(args, "--out").ok_or(USAGE)?;
    let encoding = parse_encoding(&flag_value(args, "--encoding").unwrap_or_else(|| "I".into()))?;
    let codec = parse_codec(&flag_value(args, "--codec").unwrap_or_else(|| "raw".into()))?;
    let components: usize = flag_value(args, "--components")
        .map(|v| v.parse().map_err(|_| "--components must be a number"))
        .transpose()?
        .unwrap_or(1);

    let (names, columns) = read_table(&input)?;
    let rows = columns[0].len();
    let specs: Vec<(&str, &[u64], IndexConfig)> = names
        .iter()
        .zip(&columns)
        .map(|(name, column)| {
            let cardinality = column.iter().max().copied().unwrap_or(0) + 1;
            let config =
                IndexConfig::n_components(cardinality, encoding, components).with_codec(codec);
            (name.as_str(), column.as_slice(), config)
        })
        .collect();
    let mut catalog = Catalog::build(rows, &specs);
    catalog
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "built catalog over {rows} rows: {} attribute(s) ({}), {} bytes of indexes -> {out}",
        names.len(),
        names.join(", "),
        catalog.table().space_bytes(),
    );
    Ok(())
}

/// `bix query --catalog`: plans a boolean multi-attribute expression
/// and executes it across the catalog's indexes through one shared
/// buffer pool. `--count` skips row materialisation entirely — the
/// answer is the folded bitmap's popcount.
fn cmd_query_catalog(path: &str, args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: bix query --catalog <table.bixcat> \"<expr>\" [--count] [--parallel N] \
         [--pool-pages P] [--eval-domain auto|compressed|raw] [--metrics-out file.json]";
    let text = first_positional(args).ok_or(USAGE)?;
    let domain = parse_eval_domain(args)?;
    let threads = numeric_flag(args, "--parallel", 1)?;
    let pool_pages = numeric_flag(args, "--pool-pages", 8192)?;

    let catalog = Catalog::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let table = catalog.into_table();
    let schema = table.schema();
    let plan = Planner::plan_text(&schema, text).map_err(|e| e.to_string())?;

    let pool = ShardedBufferPool::new(pool_pages, threads.max(2));
    let executor = ParallelExecutor::new(threads).with_domain(domain);
    let result = executor.execute_plan(&table, &plan, &pool, &CostModel::default());

    if has_flag(args, "--count") {
        println!("{}", result.count());
        eprintln!(
            "{} rows matched ({} bitmap scans, {} decompressions, {:.4}s simulated I/O; \
             count pushdown, rows never materialised)",
            result.count(),
            result.scans,
            result.decompressions,
            result.seconds,
        );
    } else {
        for row in result.bitmap.ones() {
            println!("{row}");
        }
        eprintln!(
            "{} rows matched ({} bitmap scans, {} decompressions, {:.4}s simulated I/O)",
            result.bitmap.count_ones(),
            result.scans,
            result.decompressions,
            result.seconds,
        );
    }
    if let Some(metrics_out) = flag_value(args, "--metrics-out") {
        let registry = MetricsRegistry::new();
        registry
            .gauge("bix_index_rows", "Indexed records")
            .set(table.rows() as f64);
        registry
            .gauge("bix_catalog_attrs", "Indexed attributes")
            .set(schema.len() as f64);
        registry
            .counter("bix_queries_total", "Queries executed")
            .inc();
        IoMetrics::register(&registry).record(&result.io);
        write_metrics(&metrics_out, &registry)?;
    }
    Ok(())
}

/// `bix explain --catalog`: the parsed expression, the rewrite action
/// log, the DNF clauses, and each distinct literal's predicted cost
/// through its attribute's index.
fn cmd_explain_catalog(path: &str, args: &[String]) -> Result<(), String> {
    let text =
        first_positional(args).ok_or("usage: bix explain --catalog <table.bixcat> \"<expr>\"")?;
    let catalog = Catalog::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let table = catalog.into_table();
    let schema = table.schema();

    let query = TableQuery::parse(text, &schema).map_err(|e| e.to_string())?;
    println!("expression: {query}");
    let plan = Planner::new(&schema)
        .plan(&query)
        .map_err(|e| e.to_string())?;
    if plan.actions.is_empty() {
        println!("rewrite: (already normalised)");
    } else {
        let steps: Vec<String> = plan.actions.iter().map(RewriteAction::to_string).collect();
        println!("rewrite: {}", steps.join(", "));
    }
    println!("plan ({} DNF clause(s)):", plan.clauses.len());
    println!("{}", plan.display(&schema));

    let cost = CostModel::default();
    let mut scans = 0usize;
    let mut bytes = 0usize;
    let mut seconds = 0.0f64;
    for lit in plan.distinct_literals() {
        let name = &schema.attr(lit.attr).name;
        let index = table
            .index_at(lit.attr)
            .ok_or_else(|| format!("catalog has no index for attribute {name}"))?;
        let expr = index.rewrite(&lit.query);
        let p = index.predict_cost(&expr, &cost);
        let complement = if lit.complement {
            " (complemented)"
        } else {
            ""
        };
        println!(
            "  literal {name}{complement}: {} scan(s), {} bytes, predicted {:.4}s",
            p.scans, p.bytes, p.seconds,
        );
        scans += p.scans;
        bytes += p.bytes;
        seconds += p.seconds;
    }
    println!(
        "-- {scans} bitmap scan(s), {bytes} stored bytes, predicted {seconds:.4}s I/O \
         across {} distinct literal(s)",
        plan.distinct_literals().len(),
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: bix query <index.bix> <predicate> [--eval-domain auto|compressed|raw] | bix query <index.bix> --batch <file> [--parallel N] [--eval-domain auto|compressed|raw] | bix query --catalog <table.bixcat> \"<expr>\" [--count] [--parallel N]";
    if let Some(catalog_path) = flag_value(args, "--catalog") {
        return cmd_query_catalog(&catalog_path, args);
    }
    let path = args.first().ok_or(USAGE)?;
    if let Some(batch_file) = flag_value(args, "--batch") {
        return cmd_query_batch(path, &batch_file, args);
    }
    let predicate = args.get(1).filter(|a| !a.starts_with("--")).ok_or(USAGE)?;
    let domain = parse_eval_domain(args)?;
    let mut index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let query = parse_predicate(predicate, index.config().cardinality)?;

    let tracer = if wants_trace(args) {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let cost = CostModel::default();
    let mut pool = BufferPool::new(index.config().disk.pages_for_bytes(64 << 20));
    let root = tracer.span(&format!("query {predicate}"), None);
    let root_id = root.id();
    let result = index.evaluate_detailed_with_domain(
        &query,
        &mut pool,
        EvalStrategy::ComponentWise,
        domain,
        &cost,
        &tracer,
        root_id,
    );
    root.attr("rows", result.bitmap.count_ones());
    root.finish();

    for row in result.bitmap.ones() {
        println!("{row}");
    }
    emit_trace(args, &tracer)?;
    if let Some(metrics_out) = flag_value(args, "--metrics-out") {
        let registry = MetricsRegistry::new();
        register_index_gauges(&registry, &index);
        registry
            .counter("bix_queries_total", "Queries executed")
            .inc();
        IoMetrics::register(&registry).record(&result.io);
        register_eval_counters(&registry, std::iter::once(&result));
        registry.observe_trace(&tracer);
        write_metrics(&metrics_out, &registry)?;
    }
    eprintln!(
        "{} rows matched ({} bitmap scans, {} decompressions, {:.4}s simulated I/O)",
        result.bitmap.count_ones(),
        result.scans,
        result.decompressions,
        result.io_seconds,
    );
    Ok(())
}

/// Batch mode: evaluates one predicate per line of `batch_file`
/// concurrently over `--parallel N` threads (default: all cores) through
/// the lock-striped buffer pool. Prints one `line: count` summary per
/// query and merged I/O totals on stderr.
fn cmd_query_batch(path: &str, batch_file: &str, args: &[String]) -> Result<(), String> {
    let threads: usize = match flag_value(args, "--parallel") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--parallel must be a positive number")?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let pool_pages: usize = match flag_value(args, "--pool-pages") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--pool-pages must be a positive number")?,
        None => 8192,
    };

    let index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let contents = std::fs::read_to_string(batch_file)
        .map_err(|e| format!("cannot read {batch_file}: {e}"))?;
    let mut queries = Vec::new();
    for (line_no, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let q = parse_predicate(line, index.config().cardinality)
            .map_err(|e| format!("{batch_file}:{}: {e}", line_no + 1))?;
        queries.push((line.to_owned(), q));
    }
    if queries.is_empty() {
        return Err(format!("{batch_file} contains no predicates"));
    }

    let predicates: Vec<Query> = queries.iter().map(|(_, q)| q.clone()).collect();
    let pool = ShardedBufferPool::new(pool_pages, threads.max(2));
    let executor = ParallelExecutor::new(threads).with_domain(parse_eval_domain(args)?);
    let tracer = if wants_trace(args) {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let batch = executor.execute_traced(
        &index,
        &predicates,
        &pool,
        &CostModel::default(),
        &tracer,
        None,
    );
    emit_trace(args, &tracer)?;
    if let Some(metrics_out) = flag_value(args, "--metrics-out") {
        let registry = MetricsRegistry::new();
        register_index_gauges(&registry, &index);
        registry
            .counter("bix_queries_total", "Queries executed")
            .add(batch.results.len() as u64);
        IoMetrics::register(&registry).record(&batch.io);
        register_eval_counters(&registry, &batch.results);
        registry.observe_trace(&tracer);
        write_metrics(&metrics_out, &registry)?;
    }

    for ((text, _), result) in queries.iter().zip(&batch.results) {
        println!(
            "{text}\t{} rows\t{} scans",
            result.bitmap.count_ones(),
            result.scans
        );
    }
    eprintln!(
        "{} queries on {} threads in {:.3}s wall: {} scans, {} pages read, {} pool hits, {:.3}s simulated I/O",
        batch.results.len(),
        batch.threads,
        batch.wall_seconds,
        batch.total_scans(),
        batch.io.pages_read,
        batch.io.pool_hits,
        batch.io_seconds,
    );
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    if let Some(catalog_path) = flag_value(args, "--catalog") {
        return cmd_explain_catalog(&catalog_path, args);
    }
    let [path, predicate, ..] = args else {
        return Err(
            "usage: bix explain <index.bix> <predicate> [--eval-domain auto|compressed|raw] \
             | bix explain --catalog <table.bixcat> \"<expr>\""
                .into(),
        );
    };
    let mut index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let query = parse_predicate(predicate, index.config().cardinality)?;
    let expr = index.rewrite(&query);
    let cost = CostModel::default();
    println!("{}", index.explain(&query));

    // Per-constituent breakdown in the same terms the trace output uses:
    // distinct bitmap scans and predicted cost-model seconds (cold pool).
    let config = index.config();
    let bases = config.bases.bases().to_vec();
    let encoding = config.encoding;
    let multi = bases.len() > 1;
    let name_of = move |r: BitmapRef| {
        let name = encoding.slot_name(bases[r.component], r.slot);
        if multi {
            format!("{name}[c{}]", r.component + 1)
        } else {
            name
        }
    };
    let constituents = index.rewrite_constituents(&query);
    if constituents.len() > 1 {
        for (i, c) in constituents.iter().enumerate() {
            let p = index.predict_cost(c, &cost);
            println!(
                "  constituent {i}: {}  -- {} scan(s), {} bytes, predicted {:.4}s",
                c.display_with(&name_of),
                p.scans,
                p.bytes,
                p.seconds,
            );
        }
    }
    let total = index.predict_cost(&expr, &cost);
    println!(
        "-- {} distinct bitmap scan(s), {} stored bytes, predicted {:.4}s I/O, est. {} matching rows",
        total.scans,
        total.bytes,
        total.seconds,
        index.estimate_rows(&query),
    );

    // One traced evaluation: which domain each DAG node actually ran in,
    // with the DomainCostModel's predicted nanoseconds next to the
    // measured time, so model misfires are visible per node.
    let domain = parse_eval_domain(args)?;
    let tracer = Tracer::new();
    let mut pool = BufferPool::new(4096);
    let result = index.evaluate_detailed_with_domain(
        &query,
        &mut pool,
        EvalStrategy::ComponentWise,
        domain,
        &cost,
        &tracer,
        None,
    );
    println!(
        "-- {} fold: {} raw node(s), {} compressed node(s), {} decompression(s)",
        domain.name(),
        result.nodes_raw,
        result.nodes_compressed,
        result.decompressions,
    );
    for r in tracer.records() {
        if r.phase() != "node" {
            continue;
        }
        let attr = |k: &str| {
            r.attrs
                .iter()
                .find(|(a, _)| a == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or("-")
                .to_owned()
        };
        let predicted_us = attr("predicted_ns").parse::<f64>().unwrap_or(0.0) / 1e3;
        println!(
            "  {}: domain={}  predicted {predicted_us:.1}us  actual {:.1}us",
            r.name,
            attr("domain"),
            r.duration_ns() as f64 / 1e3,
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: bix stats <index.bix> [--json]")?;
    let index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let registry = MetricsRegistry::new();
    register_index_gauges(&registry, &index);
    IoMetrics::register(&registry).record(&index.io_stats());
    // Expose the eval-mix counters (zeroed: no queries have run in this
    // process) so scrapers see a stable schema from every entry point.
    register_eval_counters(&registry, std::iter::empty());
    let snapshot = registry.snapshot();
    if has_flag(args, "--json") {
        print!("{}", snapshot.to_json());
    } else {
        print!("{}", snapshot.to_prometheus());
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path, ..] = args else {
        return Err("usage: bix info <index.bix>".into());
    };
    let index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let config = index.config();
    println!("encoding:     {}", config.encoding.symbol());
    println!("codec:        {}", config.codec.name());
    println!("cardinality:  {}", config.cardinality);
    println!(
        "components:   {} (bases, most significant first: {:?})",
        config.bases.n(),
        config.bases.bases().iter().rev().collect::<Vec<_>>()
    );
    println!("rows:         {}", index.rows());
    println!("bitmaps:      {}", index.num_bitmaps());
    println!("stored bytes: {}", index.space_bytes());
    println!("raw bytes:    {}", index.uncompressed_bytes());
    Ok(())
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let cardinality: u64 = flag_value(args, "--cardinality")
        .ok_or("--cardinality is required")?
        .parse()
        .map_err(|_| "--cardinality must be a number")?;
    let get = |flag: &str, default: f64| -> Result<f64, String> {
        flag_value(args, flag)
            .map(|v| v.parse().map_err(|_| format!("{flag} must be a number")))
            .transpose()
            .map(|o| o.unwrap_or(default))
    };
    let workload = Workload {
        equality: get("--equality", 1.0)?,
        one_sided: get("--one-sided", 1.0)?,
        two_sided: get("--two-sided", 1.0)?,
        membership_constituents: get("--constituents", 1.0)?,
    };
    let budget: Option<usize> = flag_value(args, "--budget")
        .map(|v| v.parse().map_err(|_| "--budget must be a number"))
        .transpose()?;

    let advice = advise(cardinality, &workload, budget);
    println!("space-time frontier (bitmaps, expected scans/query):");
    for d in &advice.frontier {
        println!(
            "  {:<4} n={} bases={:?}  {:>4} bitmaps  {:.3} scans",
            d.encoding.symbol(),
            d.n_components,
            d.bases.iter().rev().collect::<Vec<_>>(),
            d.bitmaps,
            d.expected_scans,
        );
    }
    match &advice.recommended {
        Some(d) => println!(
            "recommended: {} with {} components ({} bitmaps, {:.3} scans/query)",
            d.encoding.symbol(),
            d.n_components,
            d.bitmaps,
            d.expected_scans,
        ),
        None => println!("no design fits the budget"),
    }
    Ok(())
}

/// Human-readable name for a bitmap slot in verify/repair output.
fn describe_ref(r: BitmapRef) -> String {
    if r == EXISTENCE_REF {
        "existence bitmap".to_string()
    } else {
        format!("component {} slot {}", r.component, r.slot)
    }
}

/// Opens an index file with the corruption-tolerant loader, so damaged
/// bitmaps are quarantined instead of aborting the load.
fn load_tolerant_path(path: &str) -> Result<BitmapIndex, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    BitmapIndex::load_tolerant(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot load {path}: {e}"))
}

/// `bix verify` for a `.bixcat` catalog: every attribute's index is
/// checksummed; any corrupt bitmap anywhere fails the whole catalog.
fn cmd_verify_catalog(path: &str) -> Result<(), String> {
    let mut catalog =
        Catalog::load_tolerant(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let reports = catalog.verify();
    let mut corrupt = 0usize;
    for (attr, report) in &reports {
        for (r, name) in &report.corrupt {
            corrupt += 1;
            eprintln!("corrupt: {attr}: {} [{name}]", describe_ref(*r));
        }
    }
    if corrupt == 0 {
        println!(
            "{path}: ok ({} attribute(s), {} rows, {} bytes)",
            reports.len(),
            catalog.table().rows(),
            catalog.table().space_bytes(),
        );
        Ok(())
    } else {
        Err(format!(
            "{path}: {corrupt} bitmap(s) failed checksum verification across {} attribute(s)",
            reports.len(),
        ))
    }
}

/// `bix repair` for a `.bixcat` catalog. Refuses to save when any
/// attribute still holds an unrepairable bitmap, for the same reason
/// the single-index repair does.
fn cmd_repair_catalog(path: &str, args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").unwrap_or_else(|| path.to_string());
    let mut catalog =
        Catalog::load_tolerant(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let reports = catalog.repair();
    let mut rebuilt = 0usize;
    let mut unrepairable = 0usize;
    for (attr, report) in &reports {
        for r in &report.repaired {
            rebuilt += 1;
            eprintln!("repaired: {attr}: {}", describe_ref(*r));
        }
        for r in &report.unrepairable {
            unrepairable += 1;
            eprintln!("unrepairable: {attr}: {}", describe_ref(*r));
        }
    }
    if unrepairable > 0 {
        return Err(format!(
            "{path}: {unrepairable} bitmap(s) could not be reconstructed; not saving",
        ));
    }
    catalog
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("{path}: {rebuilt} bitmap(s) rebuilt, catalog saved to {out}");
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let [path, ..] = args else {
        return Err("usage: bix verify <index.bix|table.bixcat>".into());
    };
    if path.ends_with(".bixcat") {
        return cmd_verify_catalog(path);
    }
    let mut index = load_tolerant_path(path)?;
    let report = index.verify();
    for (r, name) in &report.corrupt {
        eprintln!("corrupt: {} [{name}]", describe_ref(*r));
    }
    if report.is_clean() {
        println!(
            "{path}: ok ({} bitmaps, {} rows, {} bytes)",
            index.num_bitmaps(),
            index.rows(),
            index.space_bytes(),
        );
        Ok(())
    } else {
        Err(format!(
            "{path}: {} of {} bitmaps failed checksum verification",
            report.corrupt.len(),
            index.num_bitmaps(),
        ))
    }
}

fn cmd_repair(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: bix repair <index.bix|table.bixcat> [--out <file>]")?;
    if path.ends_with(".bixcat") {
        return cmd_repair_catalog(path, args);
    }
    let out = flag_value(args, "--out").unwrap_or_else(|| path.clone());
    let mut index = load_tolerant_path(path)?;
    let report = index.repair();
    for r in &report.repaired {
        eprintln!("repaired: {}", describe_ref(*r));
    }
    for r in &report.unrepairable {
        eprintln!("unrepairable: {}", describe_ref(*r));
    }
    if let Some(metrics_out) = flag_value(args, "--metrics-out") {
        let registry = MetricsRegistry::new();
        register_index_gauges(&registry, &index);
        registry
            .counter("bix_repair_rebuilt_total", "Bitmaps rebuilt by repair")
            .add(report.repaired.len() as u64);
        registry
            .counter(
                "bix_repair_unrepairable_total",
                "Bitmaps repair could not reconstruct",
            )
            .add(report.unrepairable.len() as u64);
        IoMetrics::register(&registry).record(&index.io_stats());
        write_metrics(&metrics_out, &registry)?;
    }
    if !report.unrepairable.is_empty() {
        // Never write a file that still contains corrupt bitmaps: saving
        // would re-checksum nothing, but it would overwrite the caller's
        // only copy with one we know is damaged.
        return Err(format!(
            "{path}: {} bitmap(s) could not be reconstructed; not saving",
            report.unrepairable.len(),
        ));
    }
    index
        .save(&out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "{path}: {} bitmap(s) rebuilt, index saved to {out}",
        report.repaired.len(),
    );
    Ok(())
}

/// Parses a positive `--flag N` with a default.
fn numeric_flag(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{flag} must be a positive number")),
    }
}

/// Like [`numeric_flag`] but zero is meaningful (`--slow-ms 0` captures
/// everything, `--iterations 0` runs until interrupted).
fn u64_flag(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag} must be a number")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: bix serve <index.bix|table.bixcat> [--addr HOST:PORT] [--workers N] \
         [--queue-depth N] [--deadline-ms MS] [--request-threads N] [--pool-pages P] \
         [--shard-id N] [--slow-ms MS] [--delta-budget-mb MB] [--merge-threshold-mb MB]";
    let path = args.first().filter(|a| !a.starts_with("--")).ok_or(USAGE)?;
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".into());
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: numeric_flag(args, "--workers", defaults.workers)?,
        queue_depth: numeric_flag(args, "--queue-depth", defaults.queue_depth)?,
        request_threads: numeric_flag(args, "--request-threads", defaults.request_threads)?,
        pool_pages: numeric_flag(args, "--pool-pages", defaults.pool_pages)?,
        default_deadline_ms: match flag_value(args, "--deadline-ms") {
            None => defaults.default_deadline_ms,
            Some(v) => v.parse().map_err(|_| "--deadline-ms must be a number")?,
        },
        shard_id: match flag_value(args, "--shard-id") {
            None => defaults.shard_id,
            Some(v) => v.parse().map_err(|_| "--shard-id must be a small number")?,
        },
        slow_threshold_ms: u64_flag(args, "--slow-ms", defaults.slow_threshold_ms)?,
        delta_budget_bytes: numeric_flag(
            args,
            "--delta-budget-mb",
            defaults.delta_budget_bytes >> 20,
        )? << 20,
        merge_threshold_bytes: numeric_flag(
            args,
            "--merge-threshold-mb",
            defaults.merge_threshold_bytes >> 20,
        )? << 20,
        ..defaults
    };
    // A `.bixcat` path serves the whole catalog: multi-attribute table
    // queries instead of single-index predicates.
    if path.ends_with(".bixcat") {
        let mut catalog = Catalog::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
        if catalog.verify().iter().any(|(_, r)| !r.is_clean()) {
            return Err(format!("{path}: catalog failed verification; not serving"));
        }
        let server = Server::start_catalog(catalog, addr.as_str(), config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        println!("serving catalog {path} on {}", server.addr());
        server.join();
        eprintln!("server stopped");
        return Ok(());
    }
    let mut index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    // Never serve an index that fails verification; a reload request
    // applies the same gate.
    if !index.verify().is_clean() {
        return Err(format!("{path}: index failed verification; not serving"));
    }
    let server = Server::start(index, addr.as_str(), config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("serving {path} on {}", server.addr());
    server.join();
    eprintln!("server stopped");
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: bix route --shards HOST:PORT,HOST:PORT[,...] \
         [--addr HOST:PORT] [--workers N] [--queue-depth N] [--deadline-ms MS] \
         [--retries N] [--health-interval-ms MS] [--slow-ms MS]";
    let shards: Vec<String> = flag_value(args, "--shards")
        .ok_or(USAGE)?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if shards.is_empty() {
        return Err(USAGE.to_string());
    }
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7071".into());
    let route_defaults = RouterConfig::default();
    let retry = RetryPolicy {
        max_retries: numeric_flag(args, "--retries", route_defaults.retry.max_retries as usize)?
            as u32,
        ..route_defaults.retry
    };
    let health_interval = match flag_value(args, "--health-interval-ms") {
        None => route_defaults.health_interval,
        Some(v) => Duration::from_millis(
            v.parse()
                .map_err(|_| "--health-interval-ms must be a number")?,
        ),
    };
    let route_config = RouterConfig {
        default_deadline_ms: match flag_value(args, "--deadline-ms") {
            None => route_defaults.default_deadline_ms,
            Some(v) => v.parse().map_err(|_| "--deadline-ms must be a number")?,
        },
        retry,
        health_interval,
        slow_threshold_ms: u64_flag(args, "--slow-ms", route_defaults.slow_threshold_ms)?,
        ..route_defaults
    };
    let serve_defaults = ServerConfig::default();
    let serve_config = ServerConfig {
        workers: numeric_flag(args, "--workers", serve_defaults.workers)?,
        queue_depth: numeric_flag(args, "--queue-depth", serve_defaults.queue_depth)?,
        ..serve_defaults
    };
    let n_shards = shards.len();
    let router = Router::new(shards, route_config);
    let server = Server::serve(Arc::new(router), addr.as_str(), serve_config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("routing {n_shards} shards on {}", server.addr());
    server.join();
    eprintln!("router stopped");
    Ok(())
}

/// Finds one named metric entry in a registry JSON snapshot.
fn metric<'a>(doc: &'a json::Json, name: &str) -> Option<&'a json::Json> {
    doc.get("metrics")?
        .as_array()?
        .iter()
        .find(|m| m.get("name").and_then(json::Json::as_str) == Some(name))
}

/// One row of the `bix top` display, extracted from a node's snapshot.
struct TopRow {
    label: String,
    /// Breaker state as the router publishes it (0 up, 1 half-open,
    /// 2 down); `None` for nodes without a breaker (the router itself)
    /// or unreachable shards.
    breaker: Option<f64>,
    reachable: bool,
    requests: Option<f64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    inflight: Option<f64>,
}

impl TopRow {
    fn from_snapshot(label: String, doc: &json::Json, breaker: Option<f64>) -> TopRow {
        let hist = metric(doc, "bix_server_request_nanos");
        let q = |key: &str| hist.and_then(|h| h.get(key)).and_then(json::Json::as_f64);
        TopRow {
            label,
            breaker,
            reachable: true,
            requests: metric(doc, "bix_server_requests_total")
                .and_then(|m| m.get("value"))
                .and_then(json::Json::as_f64),
            p50_ms: q("p50").map(|ns| ns / 1e6),
            p99_ms: q("p99").map(|ns| ns / 1e6),
            inflight: metric(doc, "bix_server_inflight")
                .and_then(|m| m.get("value"))
                .and_then(json::Json::as_f64),
        }
    }

    fn unreachable(label: String, breaker: Option<f64>) -> TopRow {
        TopRow {
            label,
            breaker,
            reachable: false,
            requests: None,
            p50_ms: None,
            p99_ms: None,
            inflight: None,
        }
    }

    fn state(&self) -> &'static str {
        if !self.reachable {
            return "down";
        }
        match self.breaker {
            Some(s) if s >= 2.0 => "down",
            Some(s) if s >= 1.0 => "half-open",
            _ => "up",
        }
    }
}

/// Splits an aggregated router snapshot (`{"router": …, "shards":
/// […]}`) — or a single server's flat snapshot — into display rows.
fn top_rows(doc: &json::Json) -> Vec<TopRow> {
    let Some(router) = doc.get("router") else {
        return vec![TopRow::from_snapshot("server".into(), doc, None)];
    };
    let mut rows = vec![TopRow::from_snapshot("router".into(), router, None)];
    if let Some(shards) = doc.get("shards").and_then(json::Json::as_array) {
        for (i, shard) in shards.iter().enumerate() {
            let label = format!("shard {i}");
            let breaker = metric(router, &format!("bix_route_shard_{i}_breaker_state"))
                .and_then(|m| m.get("value"))
                .and_then(json::Json::as_f64);
            // Unreachable shards arrive as JSON null (no "metrics").
            if shard.get("metrics").is_some() {
                rows.push(TopRow::from_snapshot(label, shard, breaker));
            } else {
                rows.push(TopRow::unreachable(label, breaker));
            }
        }
    }
    rows
}

/// `bix top`: a live fleet view — per-node request rate, latency
/// quantiles, breaker state, and in-flight load, polled from one
/// stats endpoint (a router aggregates its whole fleet).
fn cmd_top(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: bix top --addr HOST:PORT [--interval-ms MS] [--iterations N (0 = forever)]";
    let addr = flag_value(args, "--addr").ok_or(USAGE)?;
    let interval_ms = u64_flag(args, "--interval-ms", 2_000)?.max(1);
    let iterations = u64_flag(args, "--iterations", 0)?;
    let mut prev: Vec<(String, f64)> = Vec::new();
    let mut tick = 0u64;
    loop {
        tick += 1;
        let text = Client::connect_with_timeout(addr.as_str(), Duration::from_secs(5))
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?
            .stats(StatsFormat::Json)
            .map_err(|e| e.to_string())?;
        let doc = json::parse(&text).map_err(|e| format!("bad stats JSON from {addr}: {e}"))?;
        let rows = top_rows(&doc);

        let dash = "-".to_string();
        let fmt = |v: Option<f64>| v.map_or_else(|| dash.clone(), |v| format!("{v:.2}"));
        println!("bix top — {addr} — tick {tick} (every {interval_ms} ms)");
        println!(
            "{:<10} {:>9} {:>10} {:>8} {:>9} {:>9} {:>9}",
            "node", "state", "requests", "qps", "p50_ms", "p99_ms", "inflight"
        );
        let mut next_prev = Vec::with_capacity(rows.len());
        for row in &rows {
            // Request rate is the delta against this node's previous
            // sample; the first tick (and any node that just appeared
            // or restarted) shows "-".
            let qps = row.requests.and_then(|cur| {
                next_prev.push((row.label.clone(), cur));
                let (_, last) = prev.iter().find(|(l, _)| *l == row.label)?;
                (cur >= *last).then(|| (cur - last) * 1_000.0 / interval_ms as f64)
            });
            println!(
                "{:<10} {:>9} {:>10} {:>8} {:>9} {:>9} {:>9}",
                row.label,
                row.state(),
                row.requests
                    .map_or_else(|| dash.clone(), |v| format!("{v:.0}")),
                fmt(qps),
                fmt(row.p50_ms),
                fmt(row.p99_ms),
                row.inflight
                    .map_or_else(|| dash.clone(), |v| format!("{v:.0}")),
            );
        }
        println!();
        prev = next_prev;
        if iterations > 0 && tick >= iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// A `bix client` failure paired with the process exit code that
/// `main` should report, so scripts can branch on the outcome class
/// without parsing stderr.
struct CliFailure {
    exit_code: u8,
    message: String,
}

impl From<String> for CliFailure {
    fn from(message: String) -> CliFailure {
        CliFailure {
            exit_code: 2,
            message,
        }
    }
}

impl From<&str> for CliFailure {
    fn from(message: &str) -> CliFailure {
        CliFailure::from(message.to_string())
    }
}

impl From<ClientError> for CliFailure {
    fn from(err: ClientError) -> CliFailure {
        let exit_code = match &err {
            ClientError::Server { code, .. } => match code {
                WireErrorCode::Overloaded => 3,
                WireErrorCode::DeadlineExceeded => 4,
                WireErrorCode::Unavailable => 6,
                WireErrorCode::BadQuery => 7,
                WireErrorCode::Malformed => 8,
                _ => 2,
            },
            ClientError::Wire(_) => 8,
            ClientError::Io(_) | ClientError::Unexpected(_) => 2,
        };
        CliFailure {
            exit_code,
            message: err.to_string(),
        }
    }
}

const INGEST_USAGE: &str = "usage: bix ingest --addr HOST:PORT (--values V1,V2,... | --file PATH) \
     [--batch-size N]\n\
\n\
Streams values into a serving shard's in-memory delta index. The peer\n\
may also be a router, which forwards the batch to the shard owning the\n\
tail of the global row space. --file reads one value per line (blank\n\
lines and # comments skipped; '-' reads stdin). Values are split into\n\
batches of --batch-size (default 4096) and sent in order.\n\
\n\
Ingest is NOT idempotent, so failed batches are never retried\n\
automatically: on the first failure the command stops, reports how many\n\
rows were acknowledged, and the operator decides how to resume.\n\
Exit codes match `bix client` (3 = overloaded while a merge catches up,\n\
7 = a value is outside the indexed domain).";

fn cmd_ingest(args: &[String]) -> Result<(), CliFailure> {
    if args.first().map(String::as_str) == Some("help") || has_flag(args, "--help") {
        println!("{INGEST_USAGE}");
        return Ok(());
    }
    let addr = flag_value(args, "--addr").ok_or(INGEST_USAGE)?;
    let values: Vec<u64> = if let Some(csv) = flag_value(args, "--values") {
        csv.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().map_err(|_| format!("--values: {s} is not a u64")))
            .collect::<Result<_, String>>()?
    } else if let Some(file) = flag_value(args, "--file") {
        let contents = if file == "-" {
            use std::io::Read as _;
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            text
        } else {
            std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?
        };
        contents
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| l.parse().map_err(|_| format!("{file}: {l} is not a u64")))
            .collect::<Result<_, String>>()?
    } else {
        return Err(INGEST_USAGE.into());
    };
    if values.is_empty() {
        return Err("no values to ingest".into());
    }
    let batch_size: usize = match flag_value(args, "--batch-size") {
        None => 4096,
        Some(v) => v.parse().map_err(|_| "--batch-size must be a number")?,
    };
    if batch_size == 0 || batch_size > MAX_INGEST as usize {
        return Err(format!("--batch-size must be 1..={MAX_INGEST}").into());
    }
    let timeout = Duration::from_secs(30);
    let mut client = Client::connect_with_timeout(addr.as_str(), timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut sent = 0u64;
    let mut last_ack = None;
    for chunk in values.chunks(batch_size) {
        match client.ingest(chunk) {
            Ok(ack) => {
                sent += ack.appended;
                last_ack = Some(ack);
            }
            Err(e) => {
                eprintln!(
                    "{sent} of {} rows acknowledged before the failure; \
                     ingest is not idempotent, so nothing was retried",
                    values.len()
                );
                return Err(e.into());
            }
        }
    }
    let ack = last_ack.expect("non-empty values sent at least one batch");
    eprintln!(
        "ingested {sent} rows: delta holds {}, {} rows queryable in total",
        ack.delta_rows, ack.total_rows
    );
    Ok(())
}

const CLIENT_USAGE: &str =
    "usage: bix client <ping|query|table|batch|stats|slowlog|reload|shutdown|help> \
     --addr HOST:PORT [...]\n\
\n\
subcommands:\n\
  ping                     round-trip liveness check\n\
  query <predicate>        evaluate one predicate, print matching rows\n\
  table <expr> [--count]   evaluate a boolean multi-attribute expression\n\
                           against a catalog server (or a router over\n\
                           catalog shards); --count sums shard popcounts\n\
                           without materialising rows, and never degrades\n\
  batch <file>             evaluate predicates from <file> (one per line, # comments)\n\
  stats [--json]           fetch live metrics (Prometheus text by default)\n\
  slowlog                  fetch the slow-query log (JSON; a router\n\
                           aggregates its own log plus every shard's)\n\
  reload <path>            hot-swap the server's index from a server-side path\n\
  shutdown                 ask the server to drain and stop\n\
  help                     print this text\n\
\n\
common flags:\n\
  --addr HOST:PORT         server or router address (required)\n\
  --via-router HOST:PORT   alias for --addr, documenting that the peer\n\
                           is a scatter-gather router\n\
  --deadline-ms MS         per-request deadline (query/batch)\n\
  --eval-domain D          auto|compressed|decompressed (query/batch)\n\
  --retries N              transient-failure retries with jittered backoff\n\
                           (reconnects between attempts; default 0)\n\
  --allow-degraded         accept partial results when a router has lost\n\
                           shards; missing shards go to stderr, exit 5\n\
  --trace                  sample this query: print the assembled\n\
                           cross-process span tree on stderr (query)\n\
  --trace-out FILE         write the assembled spans as JSONL (query)\n\
\n\
exit codes:\n\
  0  success (full result)\n\
  2  usage, connection, or unclassified error\n\
  3  server overloaded (admission queue full)\n\
  4  request deadline exceeded\n\
  5  degraded reply: partial rows printed, some shards missing\n\
  6  shards unavailable and --allow-degraded not set\n\
  7  predicate rejected (bad query)\n\
  8  wire-level failure (malformed, truncated, or corrupt frames)";

fn cmd_client(args: &[String]) -> Result<(), CliFailure> {
    let sub = args.first().ok_or(CLIENT_USAGE)?;
    if sub == "help" || sub == "--help" {
        println!("{CLIENT_USAGE}");
        return Ok(());
    }
    let addr = flag_value(args, "--addr")
        .or_else(|| flag_value(args, "--via-router"))
        .ok_or("missing --addr HOST:PORT (or --via-router HOST:PORT)")?;
    let deadline_ms: u32 = match flag_value(args, "--deadline-ms") {
        None => 0,
        Some(v) => v.parse().map_err(|_| "--deadline-ms must be a number")?,
    };
    let retries: u32 = match flag_value(args, "--retries") {
        None => 0,
        Some(v) => v.parse().map_err(|_| "--retries must be a number")?,
    };
    let allow_degraded = has_flag(args, "--allow-degraded");
    let timeout = Duration::from_secs(30);
    let mut client = Client::connect_with_timeout(addr.as_str(), timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if retries > 0 {
        client = client.with_retry(RetryPolicy {
            max_retries: retries,
            ..RetryPolicy::standard(0xb1c5)
        });
    }
    client.set_allow_degraded(allow_degraded);
    let mut degraded: Option<Vec<u16>> = None;
    match sub.as_str() {
        "ping" => {
            client.ping()?;
            eprintln!("pong from {addr}");
        }
        "query" => {
            let predicate = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or(CLIENT_USAGE)?;
            let domain = parse_eval_domain(args)?;
            let traced = wants_trace(args);
            if traced {
                client.set_trace(TraceContext::generate());
            }
            let outcome = client.query_outcome(predicate, domain, deadline_ms)?;
            let missing = outcome.missing_shards().to_vec();
            let reply = outcome.into_value();
            for row in &reply.rows {
                println!("{row}");
            }
            eprintln!(
                "{} rows matched ({} bitmap scans, {} decompressions)",
                reply.rows.len(),
                reply.scans,
                reply.decompressions,
            );
            if traced {
                // The reply carries the whole fleet's span forest
                // (router admission, per-shard legs with retries, and
                // each shard's evaluation) already assembled into one
                // tree; re-hydrate it into a tracer to render.
                let spans = client.last_spans().to_vec();
                eprintln!(
                    "trace {:032x} ({} spans)",
                    client.trace().trace_id,
                    spans.len()
                );
                let assembled = Tracer::new();
                assembled.graft(None, &spans, 0);
                emit_trace(args, &assembled)?;
            }
            if !missing.is_empty() {
                degraded = Some(missing);
            }
        }
        "table" => {
            let text = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or(CLIENT_USAGE)?;
            let domain = parse_eval_domain(args)?;
            if has_flag(args, "--count") {
                let reply = client.table_count(text, domain, deadline_ms)?;
                println!("{}", reply.count);
                eprintln!(
                    "{} rows matched ({} bitmap scans, {} decompressions; \
                     count pushdown, rows never left the shards)",
                    reply.count, reply.scans, reply.decompressions,
                );
            } else {
                let outcome = client.table_query_outcome(text, domain, deadline_ms)?;
                let missing = outcome.missing_shards().to_vec();
                let reply = outcome.into_value();
                for row in &reply.rows {
                    println!("{row}");
                }
                eprintln!(
                    "{} rows matched ({} bitmap scans, {} decompressions)",
                    reply.rows.len(),
                    reply.scans,
                    reply.decompressions,
                );
                if !missing.is_empty() {
                    degraded = Some(missing);
                }
            }
        }
        "batch" => {
            let file = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or(CLIENT_USAGE)?;
            let domain = parse_eval_domain(args)?;
            let contents =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let predicates: Vec<String> = contents
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect();
            if predicates.is_empty() {
                return Err(format!("{file} contains no predicates").into());
            }
            let outcome = client.batch_outcome(&predicates, domain, deadline_ms)?;
            let missing = outcome.missing_shards().to_vec();
            let replies = outcome.into_value();
            let mut scans = 0u64;
            for (text, reply) in predicates.iter().zip(&replies) {
                println!("{text}\t{} rows\t{} scans", reply.rows.len(), reply.scans);
                scans += reply.scans;
            }
            eprintln!("{} queries: {} scans", replies.len(), scans);
            if !missing.is_empty() {
                degraded = Some(missing);
            }
        }
        "stats" => {
            let format = if has_flag(args, "--json") {
                StatsFormat::Json
            } else {
                StatsFormat::Prometheus
            };
            print!("{}", client.stats(format)?);
        }
        "slowlog" => {
            println!("{}", client.slowlog()?);
        }
        "reload" => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or(CLIENT_USAGE)?;
            client.reload(path)?;
            eprintln!("reloaded {path}");
        }
        "shutdown" => {
            client.shutdown()?;
            eprintln!("server draining");
        }
        other => {
            return Err(format!("unknown client subcommand {other}\n{CLIENT_USAGE}").into());
        }
    }
    let stats = client.client_stats();
    if stats.retries > 0 {
        eprintln!(
            "{} transient failure(s) retried ({} reconnects)",
            stats.retries, stats.reconnects
        );
    }
    if let Some(missing) = degraded {
        let list: Vec<String> = missing.iter().map(u16::to_string).collect();
        return Err(CliFailure {
            exit_code: 5,
            message: format!(
                "degraded reply: rows from shard(s) {} are missing",
                list.join(",")
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_exit_codes_are_distinct_per_error_class() {
        let server = |code| ClientError::Server {
            code,
            message: String::new(),
        };
        let cases = [
            (server(WireErrorCode::Overloaded), 3),
            (server(WireErrorCode::DeadlineExceeded), 4),
            (server(WireErrorCode::Unavailable), 6),
            (server(WireErrorCode::BadQuery), 7),
            (server(WireErrorCode::Malformed), 8),
            (server(WireErrorCode::Internal), 2),
            (
                ClientError::Wire(chan_bitmap_index::server::WireError::Truncated),
                8,
            ),
            (ClientError::Io(std::io::Error::other("x")), 2),
        ];
        for (err, want) in cases {
            assert_eq!(CliFailure::from(err).exit_code, want);
        }
        // Every documented code appears in the help text.
        for code in [0, 2, 3, 4, 5, 6, 7, 8] {
            let entry = format!("\n{code}  ");
            assert!(CLIENT_USAGE.contains(&entry), "help must document {code}");
        }
    }

    #[test]
    fn predicate_grammar() {
        assert_eq!(parse_predicate("=5", 10).unwrap(), Query::equality(5));
        assert_eq!(parse_predicate("<=7", 10).unwrap(), Query::le(7));
        assert_eq!(parse_predicate(">=3", 10).unwrap(), Query::ge(3, 10));
        assert_eq!(parse_predicate("2..8", 10).unwrap(), Query::range(2, 8));
        assert_eq!(
            parse_predicate("in:1, 4,9", 10).unwrap(),
            Query::membership(vec![1, 4, 9])
        );
        assert!(parse_predicate("8..2", 10).is_err());
        assert!(parse_predicate("garbage", 10).is_err());
    }

    #[test]
    fn encoding_and_codec_parsing() {
        assert_eq!(parse_encoding("I").unwrap(), EncodingScheme::Interval);
        assert_eq!(
            parse_encoding("ei*").unwrap(),
            EncodingScheme::EqualityIntervalStar
        );
        assert_eq!(parse_encoding("i+").unwrap(), EncodingScheme::IntervalPlus);
        assert!(parse_encoding("Z").is_err());
        assert_eq!(parse_codec("BBC").unwrap(), CodecKind::Bbc);
        assert!(parse_codec("zip").is_err());
    }

    #[test]
    fn flag_value_extraction() {
        let args: Vec<String> = ["--a", "1", "--b", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--a"), Some("1".into()));
        assert_eq!(flag_value(&args, "--b"), Some("2".into()));
        assert_eq!(flag_value(&args, "--c"), None);
    }

    #[test]
    fn read_column_parses_csv_fields() {
        let path = std::env::temp_dir().join(format!("bix_cli_test_{}.csv", std::process::id()));
        std::fs::write(&path, "1,10\n2,20\n\n3,30\n").unwrap();
        assert_eq!(
            read_column(path.to_str().unwrap(), 0).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            read_column(path.to_str().unwrap(), 1).unwrap(),
            vec![10, 20, 30]
        );
        assert!(read_column(path.to_str().unwrap(), 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_command_prints_the_rewrite() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("bix_cli_explain_{}.csv", std::process::id()));
        let idx = dir.join(format!("bix_cli_explain_{}.bix", std::process::id()));
        std::fs::write(
            &csv,
            (0..50u64)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
            "--encoding".into(),
            "R".into(),
        ])
        .expect("build");
        cmd_explain(&[idx.to_string_lossy().into_owned(), "=4".into()]).expect("explain");
        assert!(cmd_explain(&[idx.to_string_lossy().into_owned(), "garbage".into()]).is_err());
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn batch_query_end_to_end() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("bix_cli_batch_{pid}.csv"));
        let idx = dir.join(format!("bix_cli_batch_{pid}.bix"));
        let batch = dir.join(format!("bix_cli_batch_{pid}.txt"));
        let column: Vec<String> = (0..500u64).map(|i| (i % 20).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();
        std::fs::write(&batch, "# comment\n=3\n\n5..10\nin:1,4,19\n").unwrap();

        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
        ])
        .expect("build");

        cmd_query(&[
            idx.to_string_lossy().into_owned(),
            "--batch".into(),
            batch.to_string_lossy().into_owned(),
            "--parallel".into(),
            "3".into(),
        ])
        .expect("batch query");

        // Bad predicate inside the batch file is reported with its line.
        std::fs::write(&batch, "=3\ngarbage\n").unwrap();
        let err = cmd_query(&[
            idx.to_string_lossy().into_owned(),
            "--batch".into(),
            batch.to_string_lossy().into_owned(),
        ])
        .unwrap_err();
        assert!(err.contains(":2:"), "{err}");

        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&idx).ok();
        std::fs::remove_file(&batch).ok();
    }

    #[test]
    fn eval_domain_flag_is_parsed_and_accepted_on_both_query_paths() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("bix_cli_domain_{pid}.csv"));
        let idx = dir.join(format!("bix_cli_domain_{pid}.bix"));
        let batch = dir.join(format!("bix_cli_domain_{pid}.txt"));
        let column: Vec<String> = (0..2_000u64).map(|i| (i % 16).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();
        std::fs::write(&batch, "=3\n5..10\n").unwrap();

        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
            "--codec".into(),
            "wah".into(),
        ])
        .expect("build");

        for domain in ["auto", "compressed", "raw"] {
            cmd_query(&[
                idx.to_string_lossy().into_owned(),
                "in:1,7,13".into(),
                "--eval-domain".into(),
                domain.into(),
            ])
            .unwrap_or_else(|e| panic!("single query, domain {domain}: {e}"));
            cmd_query(&[
                idx.to_string_lossy().into_owned(),
                "--batch".into(),
                batch.to_string_lossy().into_owned(),
                "--parallel".into(),
                "2".into(),
                "--eval-domain".into(),
                domain.into(),
            ])
            .unwrap_or_else(|e| panic!("batch query, domain {domain}: {e}"));
        }

        let err = cmd_query(&[
            idx.to_string_lossy().into_owned(),
            "=3".into(),
            "--eval-domain".into(),
            "sideways".into(),
        ])
        .unwrap_err();
        assert!(err.contains("--eval-domain"), "{err}");

        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&idx).ok();
        std::fs::remove_file(&batch).ok();
    }

    #[test]
    fn stats_trace_and_metrics_outputs() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("bix_cli_stats_{pid}.csv"));
        let idx = dir.join(format!("bix_cli_stats_{pid}.bix"));
        let trace_out = dir.join(format!("bix_cli_stats_{pid}.jsonl"));
        let metrics_out = dir.join(format!("bix_cli_stats_{pid}.metrics.json"));
        let build_metrics = dir.join(format!("bix_cli_stats_{pid}.build.json"));
        let column: Vec<String> = (0..500u64).map(|i| (i % 20).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();

        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
            "--metrics-out".into(),
            build_metrics.to_string_lossy().into_owned(),
        ])
        .expect("build");
        let parsed = bix_telemetry::json::parse(&std::fs::read_to_string(&build_metrics).unwrap())
            .expect("build metrics parse");
        assert!(parsed.get("metrics").is_some());

        // stats: both exposition formats produced from a fresh load.
        cmd_stats(&[idx.to_string_lossy().into_owned()]).expect("stats text");
        cmd_stats(&[idx.to_string_lossy().into_owned(), "--json".into()]).expect("stats json");
        assert!(cmd_stats(&[]).is_err());

        // query --trace-out --metrics-out: spans are valid JSONL, the
        // snapshot parses and carries phase histograms + io counters.
        cmd_query(&[
            idx.to_string_lossy().into_owned(),
            "in:1,7,13".into(),
            "--trace-out".into(),
            trace_out.to_string_lossy().into_owned(),
            "--metrics-out".into(),
            metrics_out.to_string_lossy().into_owned(),
        ])
        .expect("traced query");

        let jsonl = std::fs::read_to_string(&trace_out).unwrap();
        assert!(
            jsonl.lines().count() >= 4,
            "expected a span tree, got:\n{jsonl}"
        );
        for line in jsonl.lines() {
            bix_telemetry::json::parse(line).expect("span line parses");
        }
        let snapshot = std::fs::read_to_string(&metrics_out).unwrap();
        let parsed = bix_telemetry::json::parse(&snapshot).expect("metrics snapshot parses");
        let names: Vec<String> = parsed
            .get("metrics")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|m| m.get("name").unwrap().as_str().unwrap().to_owned())
            .collect();
        for expected in [
            "bix_index_rows",
            "bix_io_pages_read_total",
            "bix_queries_total",
            "bix_phase_eval_nanos",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected}: {names:?}"
            );
        }

        for f in [&csv, &idx, &trace_out, &metrics_out, &build_metrics] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn explain_prints_per_constituent_costs() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("bix_cli_excost_{pid}.csv"));
        let idx = dir.join(format!("bix_cli_excost_{pid}.bix"));
        let column: Vec<String> = (0..200u64).map(|i| (i % 20).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();
        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
        ])
        .expect("build");

        // Multi-constituent membership query: predictions exist per
        // constituent and agree with the merged expression's leaf count.
        let index = BitmapIndex::load(&idx).expect("load");
        let q = parse_predicate("in:1,7,13", 20).unwrap();
        let cost = CostModel::default();
        let merged = index.rewrite(&q);
        let total = index.predict_cost(&merged, &cost);
        assert_eq!(total.scans, merged.scan_count());
        assert!(total.bytes > 0);
        assert!(total.seconds > 0.0);
        let per: Vec<_> = index
            .rewrite_constituents(&q)
            .iter()
            .map(|c| index.predict_cost(c, &cost))
            .collect();
        assert!(per.len() > 1);
        assert!(per.iter().map(|p| p.scans).sum::<usize>() >= total.scans);

        cmd_explain(&[idx.to_string_lossy().into_owned(), "in:1,7,13".into()])
            .expect("explain with costs");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn build_query_info_end_to_end() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("bix_cli_e2e_{}.csv", std::process::id()));
        let idx = dir.join(format!("bix_cli_e2e_{}.bix", std::process::id()));
        let column: Vec<String> = (0..200u64).map(|i| (i % 10).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();

        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
            "--encoding".into(),
            "I".into(),
            "--codec".into(),
            "bbc".into(),
        ])
        .expect("build");

        let mut loaded = BitmapIndex::load(&idx).expect("load");
        assert_eq!(loaded.rows(), 200);
        assert_eq!(loaded.evaluate(&Query::equality(3)).count_ones(), 20);

        cmd_info(&[idx.to_string_lossy().into_owned()]).expect("info");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn catalog_build_query_explain_verify_end_to_end() {
        let dir = std::env::temp_dir().join(format!("bix_cli_cat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("table.csv");
        let cat = dir.join("star.bixcat");
        let mut text = String::from("region,store,discount\n");
        for i in 0..200u64 {
            text.push_str(&format!("{},{},{}\n", i % 4, (i * 7) % 20, (i * 3) % 10));
        }
        std::fs::write(&csv, text).unwrap();

        let csv_s = csv.to_string_lossy().into_owned();
        let cat_s = cat.to_string_lossy().into_owned();
        cmd_buildcat(&[
            "--input".into(),
            csv_s.clone(),
            "--out".into(),
            cat_s.clone(),
            "--encoding".into(),
            "EI*".into(),
        ])
        .expect("buildcat");
        cmd_verify(std::slice::from_ref(&cat_s)).expect("fresh catalog verifies");

        let expr = "region in {0, 1} and (discount >= 7 or not store = 12)";
        cmd_query(&["--catalog".into(), cat_s.clone(), expr.into()]).expect("catalog query");
        cmd_query(&[
            "--catalog".into(),
            cat_s.clone(),
            expr.into(),
            "--count".into(),
            "--parallel".into(),
            "2".into(),
        ])
        .expect("catalog count");
        cmd_explain(&["--catalog".into(), cat_s.clone(), expr.into()]).expect("catalog explain");

        // Malformed expressions and unknown attributes are typed errors.
        assert!(cmd_query(&["--catalog".into(), cat_s.clone(), "region in {".into()]).is_err());
        assert!(cmd_explain(&["--catalog".into(), cat_s.clone(), "nope = 1".into()]).is_err());

        // Header-shape problems are reported with the line number.
        std::fs::write(&csv, "a,b\n1\n").unwrap();
        let err = cmd_buildcat(&["--input".into(), csv_s, "--out".into(), cat_s]).unwrap_err();
        assert!(err.contains(":2:"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a 200-row index file for the verify/repair tests and returns
    /// its path. 200 rows = 25 bytes per raw bitmap with no padding bits,
    /// so flipping any stored byte is a real corruption.
    fn build_index_file(tag: &str, encoding: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("bix_cli_{tag}_{pid}.csv"));
        let idx = dir.join(format!("bix_cli_{tag}_{pid}.bix"));
        let column: Vec<String> = (0..200u64).map(|i| (i % 10).to_string()).collect();
        std::fs::write(&csv, column.join("\n")).unwrap();
        cmd_build(&[
            "--input".into(),
            csv.to_string_lossy().into_owned(),
            "--out".into(),
            idx.to_string_lossy().into_owned(),
            "--encoding".into(),
            encoding.into(),
        ])
        .expect("build");
        std::fs::remove_file(&csv).ok();
        idx
    }

    /// Flips the final byte of the file, which lives inside the last
    /// stored bitmap's payload.
    fn corrupt_last_byte(path: &std::path::Path) {
        let mut bytes = std::fs::read(path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn verify_detects_and_repair_fixes_file_corruption() {
        let idx = build_index_file("repairable", "E");
        cmd_verify(&[idx.to_string_lossy().into_owned()]).expect("clean file verifies");

        corrupt_last_byte(&idx);
        let err = cmd_verify(&[idx.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Equality encoding: a single lost slot is the complement of the
        // surviving slots, so repair rebuilds it and rewrites the file.
        cmd_repair(&[idx.to_string_lossy().into_owned()]).expect("repair");
        cmd_verify(&[idx.to_string_lossy().into_owned()]).expect("repaired file verifies");

        // The repaired index answers queries over the rebuilt slot exactly.
        let mut loaded = BitmapIndex::load(&idx).expect("strict load after repair");
        assert_eq!(loaded.evaluate(&Query::equality(9)).count_ones(), 20);
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn repair_refuses_to_save_an_unrepairable_index() {
        // Range encoding carries no redundancy: losing one slot is
        // unrecoverable, so repair must fail and leave the file untouched.
        let idx = build_index_file("unrepairable", "R");
        corrupt_last_byte(&idx);
        let before = std::fs::read(&idx).unwrap();

        let err = cmd_repair(&[idx.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.contains("not saving"), "{err}");
        assert_eq!(
            std::fs::read(&idx).unwrap(),
            before,
            "failed repair must not rewrite the index file"
        );
        assert!(cmd_verify(&[idx.to_string_lossy().into_owned()]).is_err());
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn repair_writes_to_a_separate_output_when_asked() {
        let idx = build_index_file("repair_out", "E");
        corrupt_last_byte(&idx);
        let out = idx.with_extension("repaired.bix");
        let damaged = std::fs::read(&idx).unwrap();

        cmd_repair(&[
            idx.to_string_lossy().into_owned(),
            "--out".into(),
            out.to_string_lossy().into_owned(),
        ])
        .expect("repair with --out");
        assert_eq!(
            std::fs::read(&idx).unwrap(),
            damaged,
            "--out must leave the damaged input alone"
        );
        cmd_verify(&[out.to_string_lossy().into_owned()]).expect("repaired copy verifies");
        std::fs::remove_file(&idx).ok();
        std::fs::remove_file(&out).ok();
    }
}
