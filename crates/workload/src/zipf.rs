//! Zipf-distributed value sampling.

use rand::rngs::StdRng;
use rand::RngExt;

/// Samples attribute values with Zipfian frequencies.
///
/// Rank `r` (0-based) receives probability proportional to
/// `1 / (r + 1)^z`; `z = 0` degenerates to the uniform distribution. The
/// mapping from frequency rank to attribute *value* is a seeded random
/// permutation, reproducing the paper's "no correlation between the
/// attribute values and their frequencies".
///
/// Sampling is by binary search over the cumulative distribution — O(log C)
/// per row, exact (no approximation of the harmonic normalizer).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// cdf[i] = P(rank <= i), monotonically increasing to 1.0.
    cdf: Vec<f64>,
    /// rank -> attribute value permutation.
    rank_to_value: Vec<u64>,
}

impl ZipfSampler {
    /// Builds a sampler over `cardinality` values with skew `z`, using
    /// `rng` to draw the rank-to-value permutation.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality == 0` or `z < 0`.
    pub fn new(cardinality: u64, z: f64, rng: &mut StdRng) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        assert!(z >= 0.0, "Zipf skew must be non-negative");
        let c = cardinality as usize;
        let mut weights: Vec<f64> = (0..c).map(|r| 1.0 / ((r + 1) as f64).powf(z)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Clamp the final entry so search never falls off the end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }

        let mut rank_to_value: Vec<u64> = (0..cardinality).collect();
        // Fisher-Yates with the caller's seeded RNG.
        for i in (1..c).rev() {
            let j = rng.random_range(0..=i);
            rank_to_value.swap(i, j);
        }

        ZipfSampler {
            cdf: weights,
            rank_to_value,
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random_range(0.0..1.0);
        let rank = self.cdf.partition_point(|&p| p < u);
        self.rank_to_value[rank.min(self.cdf.len() - 1)]
    }

    /// The probability assigned to attribute value `v`.
    pub fn probability_of_value(&self, v: u64) -> f64 {
        let rank = self
            .rank_to_value
            .iter()
            .position(|&x| x == v)
            .expect("value out of domain");
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Domain cardinality.
    pub fn cardinality(&self) -> u64 {
        self.rank_to_value.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_skew_gives_equal_probabilities() {
        let mut r = rng(1);
        let s = ZipfSampler::new(10, 0.0, &mut r);
        for v in 0..10 {
            assert!((s.probability_of_value(v) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for z in [0.0, 1.0, 2.0, 3.0] {
            let mut r = rng(2);
            let s = ZipfSampler::new(50, z, &mut r);
            let total: f64 = (0..50).map(|v| s.probability_of_value(v)).sum();
            assert!((total - 1.0).abs() < 1e-9, "z={z}");
        }
    }

    #[test]
    fn higher_skew_concentrates_mass() {
        let mut r = rng(3);
        let s1 = ZipfSampler::new(50, 1.0, &mut r);
        let mut r = rng(3);
        let s3 = ZipfSampler::new(50, 3.0, &mut r);
        let max1 = (0..50)
            .map(|v| s1.probability_of_value(v))
            .fold(0.0, f64::max);
        let max3 = (0..50)
            .map(|v| s3.probability_of_value(v))
            .fold(0.0, f64::max);
        assert!(max3 > max1);
        assert!(max3 > 0.8, "z=3 over C=50 is heavily skewed, got {max3}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut r1 = rng(7);
        let s1 = ZipfSampler::new(20, 1.0, &mut r1);
        let a: Vec<u64> = (0..100).map(|_| s1.sample(&mut r1)).collect();
        let mut r2 = rng(7);
        let s2 = ZipfSampler::new(20, 1.0, &mut r2);
        let b: Vec<u64> = (0..100).map(|_| s2.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_frequencies_track_probabilities() {
        let mut r = rng(11);
        let s = ZipfSampler::new(10, 2.0, &mut r);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[s.sample(&mut r) as usize] += 1;
        }
        for v in 0..10u64 {
            let expect = s.probability_of_value(v);
            let got = counts[v as usize] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "value {v}: expected {expect:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let mut r = rng(13);
        let s = ZipfSampler::new(7, 1.5, &mut r);
        for _ in 0..1000 {
            assert!(s.sample(&mut r) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "cardinality")]
    fn zero_cardinality_panics() {
        let mut r = rng(0);
        let _ = ZipfSampler::new(0, 1.0, &mut r);
    }
}
