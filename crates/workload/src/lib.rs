//! Synthetic workloads for the SIGMOD '99 bitmap-index experiments.
//!
//! The paper's data sets (§7) are characterized by two parameters — the
//! attribute cardinality `C ∈ {50, 200}` and a Zipf skew `z ∈ {0,1,2,3}`
//! (`z = 0` is uniform) — with **no correlation between attribute values
//! and their frequencies** (frequencies are assigned to values by a random
//! permutation). The query workload is 8 query sets characterized by
//! `N_int ∈ {1,2,5}` (number of interval constituents per membership
//! query) and `N_equ ∈ {0, ⌈N_int/2⌉, N_int}` (how many of those are
//! equality constituents), 10 random queries per set.
//!
//! All generation is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use bix_workload::{DatasetSpec, QuerySetSpec};
//!
//! let data = DatasetSpec { rows: 10_000, cardinality: 50, zipf_z: 1.0, seed: 42 }.generate();
//! assert_eq!(data.values.len(), 10_000);
//! assert!(data.values.iter().all(|&v| v < 50));
//!
//! let sets = QuerySetSpec::paper_query_sets();
//! assert_eq!(sets.len(), 8);
//! let queries = sets[0].generate(50, 10, 7);
//! assert_eq!(queries.len(), 10);
//! ```

#![warn(missing_docs)]

mod dataset;
mod queries;
mod star;
mod zipf;

pub use dataset::{Dataset, DatasetSpec};
pub use queries::{GeneratedQuery, QuerySetSpec};
pub use star::{StarSchema, StarSchemaSpec};
pub use zipf::ZipfSampler;
