//! A small star-schema fact-table generator.
//!
//! The paper motivates bitmap indexes with DSS workloads; this preset
//! produces a sales-like fact table with several low-cardinality
//! dimension-style attributes, including a pair of **correlated** columns
//! (region determines a skewed distribution over store), so multi-
//! attribute examples and tests exercise realistic value interactions
//! rather than independent uniform noise.

use crate::ZipfSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic fact table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarSchemaSpec {
    /// Number of fact rows.
    pub rows: usize,
    /// Number of regions (e.g. 8).
    pub regions: u64,
    /// Stores per region (store id = region * stores_per_region + k).
    pub stores_per_region: u64,
    /// Distinct discount percentages, 0..discount_levels.
    pub discount_levels: u64,
    /// Zipf skew of the discount distribution.
    pub discount_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarSchemaSpec {
    fn default() -> Self {
        StarSchemaSpec {
            rows: 100_000,
            regions: 8,
            stores_per_region: 6,
            discount_levels: 50,
            discount_skew: 1.0,
            seed: 42,
        }
    }
}

/// The generated fact table: columnar, one entry per row in each column.
#[derive(Debug, Clone, PartialEq)]
pub struct StarSchema {
    /// Region id per row, `0..regions` (uniform).
    pub region: Vec<u64>,
    /// Store id per row, `0..regions*stores_per_region`; correlated with
    /// region (a store belongs to exactly one region).
    pub store: Vec<u64>,
    /// Discount percentage per row, `0..discount_levels` (Zipf-skewed).
    pub discount: Vec<u64>,
    /// Quantity per row, `1..=100` (uniform).
    pub quantity: Vec<u64>,
    /// The spec the table was generated from.
    pub spec: StarSchemaSpec,
}

impl StarSchemaSpec {
    /// Generates the fact table.
    ///
    /// # Panics
    ///
    /// Panics if any dimension cardinality is zero.
    pub fn generate(&self) -> StarSchema {
        assert!(
            self.regions > 0 && self.stores_per_region > 0 && self.discount_levels > 0,
            "dimension cardinalities must be positive"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let discount_sampler = ZipfSampler::new(self.discount_levels, self.discount_skew, &mut rng);

        let mut region = Vec::with_capacity(self.rows);
        let mut store = Vec::with_capacity(self.rows);
        let mut discount = Vec::with_capacity(self.rows);
        let mut quantity = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            let r = rng.random_range(0..self.regions);
            // Stores within a region are popularity-skewed: the first
            // store of each region takes about half the traffic.
            let s_local = {
                let u: f64 = rng.random_range(0.0..1.0);
                // u² concentrates near 0: low store indexes get most rows.
                ((u * u) * self.stores_per_region as f64) as u64 % self.stores_per_region
            };
            region.push(r);
            store.push(r * self.stores_per_region + s_local);
            discount.push(discount_sampler.sample(&mut rng));
            quantity.push(rng.random_range(1..=100));
        }
        StarSchema {
            region,
            store,
            discount,
            quantity,
            spec: *self,
        }
    }
}

impl StarSchema {
    /// Total store cardinality, `regions * stores_per_region`.
    pub fn store_cardinality(&self) -> u64 {
        self.spec.regions * self.spec.stores_per_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_domains() {
        let t = StarSchemaSpec {
            rows: 5_000,
            ..StarSchemaSpec::default()
        }
        .generate();
        assert_eq!(t.region.len(), 5_000);
        assert!(t.region.iter().all(|&r| r < 8));
        assert!(t.store.iter().all(|&s| s < t.store_cardinality()));
        assert!(t.discount.iter().all(|&d| d < 50));
        assert!(t.quantity.iter().all(|&q| (1..=100).contains(&q)));
    }

    #[test]
    fn store_is_consistent_with_region() {
        let t = StarSchemaSpec::default().generate();
        for (r, s) in t.region.iter().zip(&t.store) {
            assert_eq!(
                s / t.spec.stores_per_region,
                *r,
                "store {s} not in region {r}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = StarSchemaSpec::default();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn store_popularity_is_skewed_within_regions() {
        let t = StarSchemaSpec {
            rows: 100_000,
            ..StarSchemaSpec::default()
        }
        .generate();
        // The first store of region 0 should see far more traffic than
        // the last.
        let count = |s: u64| t.store.iter().filter(|&&x| x == s).count();
        let first = count(0);
        let last = count(t.spec.stores_per_region - 1);
        assert!(first > 2 * last, "first {first}, last {last}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cardinality_panics() {
        let _ = StarSchemaSpec {
            regions: 0,
            ..StarSchemaSpec::default()
        }
        .generate();
    }
}
