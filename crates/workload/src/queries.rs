//! The paper's query-set generator (§7 "Queries").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Characterizes one query set: `N_int` interval constituents per
/// membership query, of which `N_equ` are equality constituents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuerySetSpec {
    /// Total interval queries per membership query (paper: 1, 2, 5).
    pub n_int: usize,
    /// How many of those are equality queries (paper: 0, ⌈N_int/2⌉, N_int).
    pub n_equ: usize,
}

impl QuerySetSpec {
    /// The paper's 8 query sets: `N_int ∈ {1,2,5}` crossed with
    /// `N_equ ∈ {0, ⌈N_int/2⌉, N_int}`, deduplicated (for `N_int = 1`,
    /// `⌈N_int/2⌉ = N_int`).
    pub fn paper_query_sets() -> Vec<QuerySetSpec> {
        let mut sets = Vec::new();
        for n_int in [1usize, 2, 5] {
            let mut n_equs = vec![0, n_int.div_ceil(2), n_int];
            n_equs.dedup();
            for n_equ in n_equs {
                let spec = QuerySetSpec { n_int, n_equ };
                if !sets.contains(&spec) {
                    sets.push(spec);
                }
            }
        }
        sets
    }

    /// Generates `count` random membership queries over domain `0..c`.
    ///
    /// Each query has exactly `n_int` pairwise disjoint, non-adjacent
    /// constituent intervals (so the disjunction is already minimal, as the
    /// paper's rewrite step requires), of which `n_equ` are single values
    /// and the rest are proper ranges (at least two values wide).
    ///
    /// # Panics
    ///
    /// Panics if `n_equ > n_int`, or if the domain is too small to fit
    /// `n_int` disjoint non-adjacent constituents.
    pub fn generate(&self, c: u64, count: usize, seed: u64) -> Vec<GeneratedQuery> {
        assert!(self.n_equ <= self.n_int, "N_equ cannot exceed N_int");
        // Worst case each constituent needs 2 values plus a 1-value gap.
        assert!(
            c >= (3 * self.n_int) as u64,
            "domain of {c} too small for {} disjoint constituents",
            self.n_int
        );
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.generate_one(c, &mut rng)).collect()
    }

    fn generate_one(&self, c: u64, rng: &mut StdRng) -> GeneratedQuery {
        // Rejection-sample constituent intervals until all are pairwise
        // non-adjacent. Domains here are small (50-200), so this is cheap.
        'retry: loop {
            let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(self.n_int);
            for k in 0..self.n_int {
                let is_equality = k < self.n_equ;
                let (lo, hi) = if is_equality {
                    let v = rng.random_range(0..c);
                    (v, v)
                } else {
                    // A proper range: at least 2 values wide.
                    let lo = rng.random_range(0..c - 1);
                    let hi = rng.random_range(lo + 1..c);
                    (lo, hi)
                };
                intervals.push((lo, hi));
            }
            intervals.sort_unstable();
            // Non-adjacent: a gap of at least one value between intervals,
            // otherwise the minimal rewrite would merge them.
            for w in intervals.windows(2) {
                if w[1].0 <= w[0].1 + 1 {
                    continue 'retry;
                }
            }
            return GeneratedQuery { intervals };
        }
    }
}

/// One membership query, already in minimal-interval form: the disjunction
/// of `lo <= A <= hi` over its constituent intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedQuery {
    /// Sorted, pairwise disjoint and non-adjacent `(lo, hi)` constituents.
    pub intervals: Vec<(u64, u64)>,
}

impl GeneratedQuery {
    /// Expands to the explicit value set `{v1, ..., vk}` form.
    pub fn values(&self) -> Vec<u64> {
        self.intervals
            .iter()
            .flat_map(|&(lo, hi)| lo..=hi)
            .collect()
    }

    /// True if row value `v` satisfies the query.
    pub fn matches(&self, v: u64) -> bool {
        self.intervals.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// Number of equality constituents (single-value intervals).
    pub fn equality_count(&self) -> usize {
        self.intervals.iter().filter(|&&(lo, hi)| lo == hi).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_sets_match_section_7() {
        let sets = QuerySetSpec::paper_query_sets();
        assert_eq!(sets.len(), 8);
        assert!(sets.contains(&QuerySetSpec { n_int: 1, n_equ: 0 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 1, n_equ: 1 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 2, n_equ: 0 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 2, n_equ: 1 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 2, n_equ: 2 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 5, n_equ: 0 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 5, n_equ: 3 }));
        assert!(sets.contains(&QuerySetSpec { n_int: 5, n_equ: 5 }));
    }

    #[test]
    fn generated_queries_have_requested_shape() {
        for spec in QuerySetSpec::paper_query_sets() {
            let queries = spec.generate(50, 10, 42);
            assert_eq!(queries.len(), 10);
            for q in &queries {
                assert_eq!(q.intervals.len(), spec.n_int, "{spec:?}");
                assert_eq!(q.equality_count(), spec.n_equ, "{spec:?}");
            }
        }
    }

    #[test]
    fn intervals_are_sorted_disjoint_non_adjacent() {
        let spec = QuerySetSpec { n_int: 5, n_equ: 3 };
        for q in spec.generate(50, 50, 7) {
            for w in q.intervals.windows(2) {
                assert!(
                    w[1].0 > w[0].1 + 1,
                    "adjacent or overlapping: {:?}",
                    q.intervals
                );
            }
            for &(lo, hi) in &q.intervals {
                assert!(lo <= hi && hi < 50);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = QuerySetSpec { n_int: 2, n_equ: 1 };
        assert_eq!(spec.generate(50, 10, 3), spec.generate(50, 10, 3));
    }

    #[test]
    fn values_expansion_and_matching_agree() {
        let q = GeneratedQuery {
            intervals: vec![(6, 6), (19, 22), (35, 35)],
        };
        // The paper's §5 example: A ∈ {6, 19, 20, 21, 22, 35}.
        assert_eq!(q.values(), vec![6, 19, 20, 21, 22, 35]);
        for v in 0..50 {
            assert_eq!(q.matches(v), q.values().contains(&v));
        }
        assert_eq!(q.equality_count(), 2);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_domain_panics() {
        let spec = QuerySetSpec { n_int: 5, n_equ: 0 };
        let _ = spec.generate(10, 1, 0);
    }
}
