//! Synthetic column generation.

use crate::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a synthetic data set (§7 "Data Sets").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Number of records (the paper uses just over 6 million).
    pub rows: usize,
    /// Attribute cardinality C (the paper uses 50 and 200).
    pub cardinality: u64,
    /// Zipf skew z (the paper uses 0, 1, 2, 3; 0 = uniform).
    pub zipf_z: f64,
    /// RNG seed, for reproducible runs.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the column.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sampler = ZipfSampler::new(self.cardinality, self.zipf_z, &mut rng);
        let values = (0..self.rows).map(|_| sampler.sample(&mut rng)).collect();
        Dataset {
            cardinality: self.cardinality,
            values,
        }
    }
}

/// A generated column: the projection of the indexed attribute, duplicates
/// preserved (Figure 1(a) of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Attribute cardinality C; every value is in `0..C`.
    pub cardinality: u64,
    /// One attribute value per record.
    pub values: Vec<u64>,
}

impl Dataset {
    /// Per-value occurrence counts (histogram of length C).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.cardinality as usize];
        for &v in &self.values {
            h[v as usize] += 1;
        }
        h
    }

    /// The exact 12-row, C = 10 example column of Figure 1(a)/2(a)/5(b),
    /// used throughout the paper's worked examples.
    pub fn paper_example() -> Dataset {
        Dataset {
            cardinality: 10,
            values: vec![3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4],
        }
    }

    /// Returns the same multiset of values in fully sorted order — the
    /// best case for run-length bitmap compression (each bitmap becomes a
    /// handful of runs). The paper's data sets are unsorted; this is the
    /// ablation for how much physical clustering matters to BBC.
    pub fn into_sorted(mut self) -> Dataset {
        self.values.sort_unstable();
        self
    }

    /// Partially clusters the column: values are grouped into runs of up
    /// to `run_length` identical values while preserving the multiset —
    /// the realistic middle ground between the paper's random placement
    /// and fully sorted storage.
    ///
    /// # Panics
    ///
    /// Panics if `run_length == 0`.
    pub fn into_clustered(self, run_length: usize) -> Dataset {
        assert!(run_length > 0, "run length must be positive");
        let hist = self.histogram();
        let mut remaining: Vec<(u64, usize)> = hist
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .map(|(v, n)| (v as u64, n))
            .collect();
        let mut values = Vec::with_capacity(self.values.len());
        // Round-robin over the values, emitting up to run_length at once;
        // deterministic, preserves counts, bounds run lengths.
        while !remaining.is_empty() {
            remaining.retain_mut(|(v, n)| {
                let take = run_length.min(*n);
                values.extend(std::iter::repeat_n(*v, take));
                *n -= take;
                *n > 0
            });
        }
        Dataset {
            cardinality: self.cardinality,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let d = DatasetSpec {
            rows: 5000,
            cardinality: 50,
            zipf_z: 1.0,
            seed: 1,
        }
        .generate();
        assert_eq!(d.values.len(), 5000);
        assert!(d.values.iter().all(|&v| v < 50));
    }

    #[test]
    fn same_seed_same_data() {
        let spec = DatasetSpec {
            rows: 1000,
            cardinality: 20,
            zipf_z: 2.0,
            seed: 99,
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec {
            rows: 1000,
            cardinality: 20,
            zipf_z: 1.0,
            seed: 1,
        }
        .generate();
        let b = DatasetSpec {
            rows: 1000,
            cardinality: 20,
            zipf_z: 1.0,
            seed: 2,
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn histogram_sums_to_rows() {
        let d = DatasetSpec {
            rows: 3000,
            cardinality: 10,
            zipf_z: 3.0,
            seed: 5,
        }
        .generate();
        assert_eq!(d.histogram().iter().sum::<usize>(), 3000);
    }

    #[test]
    fn skewed_data_has_a_dominant_value() {
        let d = DatasetSpec {
            rows: 10_000,
            cardinality: 50,
            zipf_z: 3.0,
            seed: 5,
        }
        .generate();
        let max = d.histogram().into_iter().max().unwrap();
        assert!(max > 7_000, "z=3 should concentrate most rows, got {max}");
    }

    #[test]
    fn uniform_data_is_balanced() {
        let d = DatasetSpec {
            rows: 50_000,
            cardinality: 10,
            zipf_z: 0.0,
            seed: 5,
        }
        .generate();
        for (v, count) in d.histogram().into_iter().enumerate() {
            assert!(
                (count as f64 - 5_000.0).abs() < 500.0,
                "value {v} count {count} far from uniform"
            );
        }
    }

    #[test]
    fn sorted_preserves_multiset() {
        let d = DatasetSpec {
            rows: 1000,
            cardinality: 10,
            zipf_z: 1.0,
            seed: 3,
        }
        .generate();
        let sorted = d.clone().into_sorted();
        assert_eq!(sorted.histogram(), d.histogram());
        assert!(sorted.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clustered_preserves_multiset_and_bounds_runs() {
        let d = DatasetSpec {
            rows: 2000,
            cardinality: 10,
            zipf_z: 2.0,
            seed: 3,
        }
        .generate();
        let run = 16;
        let clustered = d.clone().into_clustered(run);
        assert_eq!(clustered.histogram(), d.histogram());
        // No run of identical values longer than 2*run-1 (adjacent chunks
        // of the same value can only touch at round-robin wraparound when
        // a single value remains).
        let mut longest = 1usize;
        let mut current = 1usize;
        for w in clustered.values.windows(2) {
            if w[0] == w[1] {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 1;
            }
        }
        // The dominant value's tail may be contiguous once others run out.
        let max_count = *d.histogram().iter().max().expect("non-empty");
        assert!(longest <= max_count, "longest run {longest}");
    }

    #[test]
    #[should_panic(expected = "run length")]
    fn zero_run_length_panics() {
        let _ = Dataset::paper_example().into_clustered(0);
    }

    #[test]
    fn paper_example_matches_figure_1a() {
        let d = Dataset::paper_example();
        assert_eq!(d.cardinality, 10);
        assert_eq!(d.values, vec![3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4]);
    }
}
