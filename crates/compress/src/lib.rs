//! Bitmap compression codecs for bitmap indexes.
//!
//! The SIGMOD '99 experiments store every bitmap either **uncompressed** or
//! compressed with a **byte-aligned run-length code** ("BBC", Antoshenkov
//! '93, as used by Oracle 8). The patent text is not publicly available, so
//! [`Bbc`] is a clean-room byte-aligned fill/literal code with the same
//! structure and asymptotics: runs of identical fill bytes (`0x00`/`0xFF`)
//! are counted, everything else is stored verbatim, and all boundaries are
//! byte-aligned so decompression is branchy-but-cheap byte copying.
//!
//! [`Wah`] (word-aligned hybrid, the scheme FastBit later adopted) is
//! included as an ablation baseline, and [`Raw`] is the identity codec so
//! that compressed and uncompressed indexes share one storage interface.
//!
//! # Example
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{Bbc, BitmapCodec};
//!
//! // A sparse bitmap: long zero runs compress well.
//! let bv = Bitvec::from_positions(10_000, &[3, 4_000, 9_999]);
//! let codec = Bbc;
//! let compressed = codec.compress(&bv);
//! assert!(compressed.len() < bv.byte_size() / 10);
//! assert_eq!(codec.decompress(&compressed, bv.len()), bv);
//! ```

#![warn(missing_docs)]

mod bbc;
mod bbc_ops;
mod codec;
mod ewah;
mod ewah_ops;
mod roaring;
mod roaring_ops;
mod runs;
mod wah;
mod wah_ops;

pub use bbc::{Bbc, BbcAtoms, BbcEncoder, BbcPiece};
pub use bbc_ops::{bbc_binary, bbc_not, BitOp};
pub use codec::{BitmapCodec, CodecKind, CompressedBitmap, DecodeError, Raw};
pub use ewah::Ewah;
pub use ewah_ops::{ewah_binary, ewah_binary_bytes, ewah_not, ewah_not_bytes};
pub use roaring::Roaring;
pub use roaring_ops::{roaring_binary, roaring_not};
pub use runs::{ByteRun, ByteRunIter};
pub use wah::Wah;
pub use wah_ops::{wah_binary, wah_binary_bytes, wah_not, wah_not_bytes};
