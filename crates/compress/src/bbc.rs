//! Byte-aligned bitmap code (BBC).
//!
//! A clean-room byte-aligned fill/literal run-length code in the spirit of
//! Antoshenkov's Byte-Aligned Bitmap Code. The compressed stream is a
//! sequence of *atoms*. Each atom describes a **gap** (a run of identical
//! fill bytes, all `0x00` or all `0xFF`) followed by a **literal tail**
//! (bytes stored verbatim):
//!
//! ```text
//! atom := header [gap-varint] [lit-varint] literal-bytes*
//!
//! header (1 byte):
//!   bit  7    fill bit of the gap (0 => 0x00 bytes, 1 => 0xFF bytes)
//!   bits 6..4 gap length in bytes, 0..=6; 7 => gap-varint follows
//!   bits 3..0 literal byte count,  0..=14; 15 => lit-varint follows
//! ```
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation) and encode
//! the *full* value (not an offset), so the format is trivially seekable
//! atom by atom. A gap run shorter than [`MIN_GAP`] bytes is cheaper to
//! store as literals, so the encoder folds it into the literal tail.
//!
//! Decompression cost is linear in the *uncompressed* size — exactly the
//! CPU-cost behaviour the paper's experiments charge for compressed
//! bitmaps.

use crate::codec::check_tail_byte;
use crate::runs::{ByteRun, ByteRunIter};
use crate::DecodeError;
use bix_bitvec::Bitvec;

/// Minimum run length (in bytes) worth encoding as a gap. A gap costs at
/// least one header byte, so runs of 1 byte never pay for themselves; runs
/// of 2 break even only when they don't split a literal tail in two.
pub const MIN_GAP: usize = 3;

/// Maximum gap length representable in the header without a varint.
const HDR_GAP_MAX: usize = 6;
/// Maximum literal count representable in the header without a varint.
const HDR_LIT_MAX: usize = 14;

/// The BBC codec. Stateless; see the module docs for the format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bbc;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(DecodeError::Truncated {
                codec: "bbc",
                offset: *pos,
            });
        };
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError::BadAtom {
                codec: "bbc",
                offset: *pos,
                what: "varint overflow",
            });
        }
    }
}

/// Parses one atom header (plus its varints) at `pos`, leaving `pos` at the
/// first literal byte. Returns `(fill, gap_bytes, literal_bytes)`. The
/// caller guarantees `*pos < stream.len()`.
fn try_read_atom(stream: &[u8], pos: &mut usize) -> Result<(bool, usize, usize), DecodeError> {
    let header = stream[*pos];
    *pos += 1;
    let fill = header & 0x80 != 0;
    let gap_code = (header >> 4) & 0x7;
    let lit_code = header & 0xf;
    let gap = if gap_code == 7 {
        try_read_varint(stream, pos)?
    } else {
        u64::from(gap_code)
    };
    let lits = if lit_code == 15 {
        try_read_varint(stream, pos)?
    } else {
        u64::from(lit_code)
    };
    Ok((fill, gap as usize, lits as usize))
}

fn push_atom(out: &mut Vec<u8>, fill: bool, gap: usize, literals: &[u8]) {
    let gap_code = if gap > HDR_GAP_MAX { 7 } else { gap as u8 };
    let lit_code = if literals.len() > HDR_LIT_MAX {
        15
    } else {
        literals.len() as u8
    };
    let header = (u8::from(fill) << 7) | (gap_code << 4) | lit_code;
    out.push(header);
    if gap_code == 7 {
        push_varint(out, gap as u64);
    }
    if lit_code == 15 {
        push_varint(out, literals.len() as u64);
    }
    out.extend_from_slice(literals);
}

/// A streaming BBC encoder: feed it fill runs and literal bytes in decoded
/// order, get the canonical compressed stream out. Produces byte-identical
/// output to [`Bbc::compress_bytes`] for the same logical content, which
/// the compressed-domain operations ([`crate::bbc_binary`]) rely on.
#[derive(Default)]
pub struct BbcEncoder {
    out: Vec<u8>,
    /// Pending atom: gap then literal tail.
    gap_fill: bool,
    gap_len: usize,
    literals: Vec<u8>,
    /// Uncommitted fill run still being merged across pushes.
    run_bit: bool,
    run_len: usize,
}

impl BbcEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies the merged fill run as a gap or as literal bytes, the
    /// same decision [`Bbc::compress_bytes`] makes per maximal run.
    fn commit_run(&mut self) {
        if self.run_len == 0 {
            return;
        }
        if self.run_len >= MIN_GAP {
            if self.gap_len > 0 || !self.literals.is_empty() {
                push_atom(&mut self.out, self.gap_fill, self.gap_len, &self.literals);
                self.literals.clear();
            }
            self.gap_fill = self.run_bit;
            self.gap_len = self.run_len;
        } else {
            let byte = if self.run_bit { 0xFFu8 } else { 0x00 };
            self.literals
                .extend(std::iter::repeat_n(byte, self.run_len));
        }
        self.run_len = 0;
    }

    /// Appends `len` fill bytes (`0xFF` if `bit`, else `0x00`).
    pub fn push_fill(&mut self, bit: bool, len: usize) {
        if len == 0 {
            return;
        }
        if self.run_len > 0 && self.run_bit != bit {
            self.commit_run();
        }
        self.run_bit = bit;
        self.run_len += len;
    }

    /// Appends decoded bytes verbatim (fill bytes among them are merged
    /// into runs exactly as the block compressor would).
    pub fn push_literals(&mut self, bytes: &[u8]) {
        for run in crate::ByteRunIter::new(bytes) {
            match run {
                crate::ByteRun::Fill { bit, len } => self.push_fill(bit, len),
                crate::ByteRun::Literal(slice) => {
                    self.commit_run();
                    self.literals.extend_from_slice(slice);
                }
            }
        }
    }

    /// Finalizes and returns the compressed stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.commit_run();
        if self.gap_len > 0 || !self.literals.is_empty() {
            push_atom(&mut self.out, self.gap_fill, self.gap_len, &self.literals);
        }
        self.out
    }
}

impl Bbc {
    /// Compresses a raw little-endian byte image of a bitmap.
    pub fn compress_bytes(bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        // Pending atom state: a gap followed by accumulating literals.
        let mut gap_fill = false;
        let mut gap_len = 0usize;
        let mut literals: Vec<u8> = Vec::new();

        for run in ByteRunIter::new(bytes) {
            match run {
                ByteRun::Fill { bit, len } if len >= MIN_GAP && literals.is_empty() => {
                    if gap_len > 0 {
                        // Two adjacent gaps of different fill: flush the first.
                        push_atom(&mut out, gap_fill, gap_len, &[]);
                    }
                    gap_fill = bit;
                    gap_len = len;
                }
                ByteRun::Fill { bit, len } if len >= MIN_GAP => {
                    // A real gap terminates the current atom's literal tail.
                    push_atom(&mut out, gap_fill, gap_len, &literals);
                    literals.clear();
                    gap_fill = bit;
                    gap_len = len;
                }
                ByteRun::Fill { bit, len } => {
                    // Short run: cheaper as literal bytes.
                    let byte = if bit { 0xFF } else { 0x00 };
                    literals.extend(std::iter::repeat_n(byte, len));
                }
                ByteRun::Literal(slice) => literals.extend_from_slice(slice),
            }
        }
        if gap_len > 0 || !literals.is_empty() {
            push_atom(&mut out, gap_fill, gap_len, &literals);
        }
        out
    }

    /// Decompresses into a raw byte image of exactly `n_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed or does not decode to `n_bytes`.
    pub fn decompress_bytes(stream: &[u8], n_bytes: usize) -> Vec<u8> {
        Bbc::try_decompress_bytes(stream, n_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Decompresses into a raw byte image of exactly `n_bytes` bytes,
    /// rejecting malformed streams instead of panicking. Output is never
    /// allowed to grow past `n_bytes`, so hostile gap or literal counts
    /// cannot force oversized allocations.
    pub fn try_decompress_bytes(stream: &[u8], n_bytes: usize) -> Result<Vec<u8>, DecodeError> {
        // One zeroed allocation up front, then a cursor: a zero gap is a
        // pure cursor skip, a one gap is a slice fill, and a literal tail
        // is one bulk copy. Sparse bitmaps are almost entirely zero gaps,
        // so their decode cost collapses to the header parse itself.
        let mut out = vec![0u8; n_bytes];
        let mut decoded = 0usize;
        let mut pos = 0usize;
        while pos < stream.len() {
            let (fill, gap, lits) = try_read_atom(stream, &mut pos)?;
            if gap > n_bytes - decoded {
                return Err(DecodeError::Overrun {
                    codec: "bbc",
                    declared_bits: n_bytes * 8,
                });
            }
            if fill {
                out[decoded..decoded + gap].fill(0xFF);
            }
            decoded += gap;
            if lits > stream.len() - pos {
                return Err(DecodeError::Truncated {
                    codec: "bbc",
                    offset: stream.len(),
                });
            }
            if lits > n_bytes - decoded {
                return Err(DecodeError::Overrun {
                    codec: "bbc",
                    declared_bits: n_bytes * 8,
                });
            }
            out[decoded..decoded + lits].copy_from_slice(&stream[pos..pos + lits]);
            decoded += lits;
            pos += lits;
        }
        if decoded != n_bytes {
            return Err(DecodeError::WrongLength {
                codec: "bbc",
                decoded,
                declared: n_bytes,
            });
        }
        Ok(out)
    }

    /// Iterates over the decoded byte runs of a compressed stream without
    /// materializing the whole bitmap. Used by compressed-domain operations.
    pub fn atoms(stream: &[u8]) -> BbcAtoms<'_> {
        BbcAtoms {
            stream,
            pos: 0,
            pending: None,
        }
    }
}

/// One decoded piece of a BBC stream: either a fill run or literal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbcPiece<'a> {
    /// `len` bytes of `0x00` (bit = false) or `0xFF` (bit = true).
    Fill {
        /// The fill bit.
        bit: bool,
        /// Run length in bytes.
        len: usize,
    },
    /// Bytes stored verbatim.
    Literal(&'a [u8]),
}

/// Iterator over the [`BbcPiece`]s of a compressed stream.
pub struct BbcAtoms<'a> {
    stream: &'a [u8],
    pos: usize,
    /// Literal half of an atom whose gap half was already yielded.
    pending: Option<BbcPiece<'a>>,
}

impl<'a> BbcAtoms<'a> {
    /// Queue of at most two pieces per atom (gap then literal).
    fn next_atom(&mut self) -> Option<(Option<BbcPiece<'a>>, Option<BbcPiece<'a>>)> {
        if self.pos >= self.stream.len() {
            return None;
        }
        let (fill, gap, lits) =
            try_read_atom(self.stream, &mut self.pos).unwrap_or_else(|e| panic!("{e}"));
        let gap_piece = (gap > 0).then_some(BbcPiece::Fill {
            bit: fill,
            len: gap,
        });
        let lit_piece = if lits > 0 {
            assert!(
                lits <= self.stream.len() - self.pos,
                "BBC stream truncated: literal tail runs past end"
            );
            let slice = &self.stream[self.pos..self.pos + lits];
            self.pos += lits;
            Some(BbcPiece::Literal(slice))
        } else {
            None
        };
        Some((gap_piece, lit_piece))
    }
}

impl<'a> Iterator for BbcAtoms<'a> {
    type Item = BbcPiece<'a>;

    fn next(&mut self) -> Option<BbcPiece<'a>> {
        // Flatten (gap, literal) pairs, skipping empty halves.
        loop {
            if let Some(p) = self.pending.take() {
                return Some(p);
            }
            match self.next_atom() {
                None => return None,
                Some((gap, lit)) => match (gap, lit) {
                    (Some(g), l) => {
                        self.pending = l;
                        return Some(g);
                    }
                    (None, Some(l)) => return Some(l),
                    (None, None) => continue, // degenerate empty atom
                },
            }
        }
    }
}

impl super::codec::BitmapCodec for Bbc {
    fn name(&self) -> &'static str {
        "bbc"
    }

    fn kind(&self) -> crate::CodecKind {
        crate::CodecKind::Bbc
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        Bbc::compress_bytes(&bv.to_bytes())
    }

    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, crate::DecodeError> {
        let raw = Bbc::try_decompress_bytes(bytes, len_bits.div_ceil(8))?;
        check_tail_byte(&raw, len_bits, "bbc")?;
        Ok(Bitvec::from_bytes(len_bits, &raw))
    }

    fn validate(&self, bytes: &[u8], len_bits: usize) -> Result<(), crate::DecodeError> {
        let n_bytes = len_bits.div_ceil(8);
        let mut decoded = 0usize;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let atom_at = pos;
            let (fill, gap, lits) = try_read_atom(bytes, &mut pos)?;
            if gap > n_bytes - decoded {
                return Err(crate::DecodeError::Overrun {
                    codec: "bbc",
                    declared_bits: n_bytes * 8,
                });
            }
            decoded += gap;
            if lits > bytes.len() - pos {
                return Err(crate::DecodeError::Truncated {
                    codec: "bbc",
                    offset: bytes.len(),
                });
            }
            if lits > n_bytes - decoded {
                return Err(crate::DecodeError::Overrun {
                    codec: "bbc",
                    declared_bits: n_bytes * 8,
                });
            }
            // The final byte of the image may not carry bits past len_bits.
            let tail_bits = len_bits % 8;
            if tail_bits != 0 {
                let tail_mask = !((1u8 << tail_bits) - 1);
                let covers_tail = decoded + lits == n_bytes;
                if covers_tail && lits > 0 && bytes[pos + lits - 1] & tail_mask != 0 {
                    return Err(crate::DecodeError::BadAtom {
                        codec: "bbc",
                        offset: pos + lits - 1,
                        what: "set bits past the declared length",
                    });
                }
                if covers_tail && lits == 0 && fill {
                    return Err(crate::DecodeError::BadAtom {
                        codec: "bbc",
                        offset: atom_at,
                        what: "set bits past the declared length",
                    });
                }
            }
            decoded += lits;
            pos += lits;
        }
        if decoded != n_bytes {
            return Err(crate::DecodeError::WrongLength {
                codec: "bbc",
                decoded,
                declared: n_bytes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapCodec;

    fn round_trip(bytes: &[u8]) {
        let c = Bbc::compress_bytes(bytes);
        let d = Bbc::decompress_bytes(&c, bytes.len());
        assert_eq!(d, bytes);
    }

    #[test]
    fn empty_stream_round_trips() {
        round_trip(&[]);
    }

    #[test]
    fn all_zero_compresses_to_a_few_bytes() {
        let bytes = vec![0u8; 100_000];
        let c = Bbc::compress_bytes(&bytes);
        assert!(c.len() <= 4, "100KB of zeros became {} bytes", c.len());
        assert_eq!(Bbc::decompress_bytes(&c, bytes.len()), bytes);
    }

    #[test]
    fn all_ones_compresses_to_a_few_bytes() {
        let bytes = vec![0xFFu8; 100_000];
        let c = Bbc::compress_bytes(&bytes);
        assert!(c.len() <= 4);
        assert_eq!(Bbc::decompress_bytes(&c, bytes.len()), bytes);
    }

    #[test]
    fn literal_data_round_trips_with_small_overhead() {
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 251) as u8 | 1).collect();
        let c = Bbc::compress_bytes(&bytes);
        round_trip(&bytes);
        // Incompressible data should cost at most a few percent extra.
        assert!(c.len() <= bytes.len() + bytes.len() / 10 + 4);
    }

    #[test]
    fn alternating_gaps_and_literals() {
        let mut bytes = Vec::new();
        for i in 0..50 {
            bytes.extend(std::iter::repeat_n(0x00u8, 10 + i));
            bytes.push(0xAB);
            bytes.extend(std::iter::repeat_n(0xFFu8, 5 + i));
            bytes.push(0x01);
        }
        round_trip(&bytes);
    }

    #[test]
    fn short_fill_runs_are_folded_into_literals() {
        // Runs of 1-2 fill bytes between literals must not explode into atoms.
        let bytes = vec![0xAB, 0x00, 0xCD, 0x00, 0x00, 0xEF];
        let c = Bbc::compress_bytes(&bytes);
        // One atom: header + 6 literals.
        assert_eq!(c.len(), 1 + 6);
        round_trip(&bytes);
    }

    #[test]
    fn long_gap_uses_varint() {
        let mut bytes = vec![0u8; 1_000_000];
        bytes.push(0xAA);
        let c = Bbc::compress_bytes(&bytes);
        assert!(c.len() < 10);
        round_trip(&bytes);
    }

    #[test]
    fn long_literal_tail_uses_varint() {
        let bytes: Vec<u8> = (0..300u32).map(|i| (i % 97) as u8 + 1).collect();
        round_trip(&bytes);
    }

    #[test]
    fn adjacent_gaps_of_different_fill() {
        let mut bytes = vec![0x00u8; 20];
        bytes.extend(vec![0xFFu8; 20]);
        bytes.extend(vec![0x00u8; 20]);
        round_trip(&bytes);
    }

    #[test]
    fn codec_trait_round_trips_bitvec() {
        let bv = Bitvec::from_positions(5000, &[0, 1, 2, 2500, 4999]);
        let codec = Bbc;
        let c = codec.compress(&bv);
        assert_eq!(codec.decompress(&c, bv.len()), bv);
        assert!(c.len() < bv.byte_size());
    }

    #[test]
    fn atoms_iterator_reconstructs_stream() {
        let mut bytes = vec![0u8; 100];
        bytes.extend_from_slice(&[1, 2, 3]);
        bytes.extend(vec![0xFFu8; 50]);
        let c = Bbc::compress_bytes(&bytes);
        let mut rebuilt = Vec::new();
        for piece in Bbc::atoms(&c) {
            match piece {
                BbcPiece::Fill { bit, len } => {
                    rebuilt.extend(std::iter::repeat_n(if bit { 0xFFu8 } else { 0 }, len));
                }
                BbcPiece::Literal(s) => rebuilt.extend_from_slice(s),
            }
        }
        assert_eq!(rebuilt, bytes);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_expected_length_panics() {
        let c = Bbc::compress_bytes(&[0u8; 10]);
        let _ = Bbc::decompress_bytes(&c, 11);
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(try_read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_is_an_error_not_a_panic() {
        // Header promising a gap varint, but the stream ends there.
        let stream = [0x70u8];
        assert!(matches!(
            Bbc::try_decompress_bytes(&stream, 100),
            Err(DecodeError::Truncated { .. })
        ));
        // Continuation bit set on the final byte.
        let stream = [0x70u8, 0x80];
        assert!(matches!(
            Bbc::try_decompress_bytes(&stream, 100),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_gap_is_capped_by_declared_length() {
        // A gap varint claiming ~2^42 bytes must not allocate anything
        // close to that: the decode is rejected against n_bytes first.
        let mut stream = vec![0x70u8];
        push_varint(&mut stream, 1 << 42);
        assert!(matches!(
            Bbc::try_decompress_bytes(&stream, 64),
            Err(DecodeError::Overrun { .. })
        ));
    }

    #[test]
    fn truncated_literal_tail_is_an_error() {
        // Header: gap 0, 3 literals — but only 1 byte follows.
        let stream = [0x03u8, 0xAB];
        assert!(matches!(
            Bbc::try_decompress_bytes(&stream, 3),
            Err(DecodeError::Truncated { .. })
        ));
    }
}
