//! The codec abstraction shared by compressed and uncompressed indexes.

use bix_bitvec::Bitvec;

/// Identifies a codec in configuration and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Identity codec: bitmaps stored as raw little-endian bytes.
    Raw,
    /// Byte-aligned run-length code (Antoshenkov-style).
    Bbc,
    /// 32-bit word-aligned hybrid.
    Wah,
    /// 64-bit enhanced word-aligned hybrid.
    Ewah,
    /// Roaring-style hybrid containers (array / bitmap per 64Ki chunk).
    Roaring,
}

impl CodecKind {
    /// Returns the codec implementation for this kind.
    pub fn codec(self) -> Box<dyn BitmapCodec> {
        match self {
            CodecKind::Raw => Box::new(Raw),
            CodecKind::Bbc => Box::new(crate::Bbc),
            CodecKind::Wah => Box::new(crate::Wah),
            CodecKind::Ewah => Box::new(crate::Ewah),
            CodecKind::Roaring => Box::new(crate::Roaring),
        }
    }

    /// Short lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::Bbc => "bbc",
            CodecKind::Wah => "wah",
            CodecKind::Ewah => "ewah",
            CodecKind::Roaring => "roaring",
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A bitmap compression codec.
///
/// Implementations must round-trip exactly:
/// `decompress(compress(bv), bv.len()) == bv`.
pub trait BitmapCodec: Send + Sync {
    /// Short lowercase name used in experiment output.
    fn name(&self) -> &'static str;

    /// The corresponding [`CodecKind`].
    fn kind(&self) -> CodecKind;

    /// Compresses a bitmap to a byte stream.
    fn compress(&self, bv: &Bitvec) -> Vec<u8>;

    /// Decompresses a byte stream back into a bitmap of `len_bits` bits.
    fn decompress(&self, bytes: &[u8], len_bits: usize) -> Bitvec;
}

/// The identity codec: bitmaps are stored as their raw byte image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Raw;

impl BitmapCodec for Raw {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Raw
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        bv.to_bytes()
    }

    fn decompress(&self, bytes: &[u8], len_bits: usize) -> Bitvec {
        Bitvec::from_bytes(len_bits, bytes)
    }
}

/// A bitmap held in compressed form, tagged with its codec and bit length.
#[derive(Clone)]
pub struct CompressedBitmap {
    kind: CodecKind,
    len_bits: usize,
    bytes: Vec<u8>,
}

impl CompressedBitmap {
    /// Compresses `bv` with the given codec.
    pub fn encode(kind: CodecKind, bv: &Bitvec) -> Self {
        CompressedBitmap {
            kind,
            len_bits: bv.len(),
            bytes: kind.codec().compress(bv),
        }
    }

    /// Decompresses back to a plain bitmap.
    pub fn decode(&self) -> Bitvec {
        self.kind.codec().decompress(&self.bytes, self.len_bits)
    }

    /// Stored (compressed) size in bytes.
    pub fn stored_size(&self) -> usize {
        self.bytes.len()
    }

    /// Uncompressed size in bytes.
    pub fn raw_size(&self) -> usize {
        self.len_bits.div_ceil(8)
    }

    /// Number of bits in the decoded bitmap.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// The codec used.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// The compressed byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_codec_is_identity() {
        let bv = Bitvec::from_positions(100, &[1, 50, 99]);
        let raw = Raw;
        assert_eq!(raw.compress(&bv), bv.to_bytes());
        assert_eq!(raw.decompress(&bv.to_bytes(), 100), bv);
    }

    #[test]
    fn compressed_bitmap_round_trips_all_codecs() {
        let bv = Bitvec::from_positions(2000, &[0, 3, 700, 701, 702, 1999]);
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            let cb = CompressedBitmap::encode(kind, &bv);
            assert_eq!(cb.decode(), bv, "codec {kind}");
            assert_eq!(cb.len_bits(), 2000);
            assert_eq!(cb.raw_size(), 250);
        }
    }

    #[test]
    fn sparse_bitmaps_are_smaller_compressed() {
        let bv = Bitvec::from_positions(80_000, &[5, 40_000]);
        let raw = CompressedBitmap::encode(CodecKind::Raw, &bv);
        let bbc = CompressedBitmap::encode(CodecKind::Bbc, &bv);
        let wah = CompressedBitmap::encode(CodecKind::Wah, &bv);
        assert_eq!(raw.stored_size(), 10_000);
        assert!(bbc.stored_size() < 100);
        assert!(wah.stored_size() < 100);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(CodecKind::Raw.name(), "raw");
        assert_eq!(CodecKind::Bbc.name(), "bbc");
        assert_eq!(CodecKind::Wah.name(), "wah");
        assert_eq!(CodecKind::Ewah.name(), "ewah");
        assert_eq!(format!("{}", CodecKind::Bbc), "bbc");
    }

    #[test]
    fn kind_dispatch_matches_codec_kind() {
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            assert_eq!(kind.codec().kind(), kind);
        }
    }
}
