//! The codec abstraction shared by compressed and uncompressed indexes.

use crate::BitOp;
use bix_bitvec::Bitvec;

/// Why a compressed byte stream failed to decode.
///
/// Returned by [`BitmapCodec::try_decompress`] so that callers holding
/// possibly-corrupt bytes (e.g. a storage layer whose checksum passed but
/// whose payload was written by a buggy producer) can treat malformed
/// streams as data corruption instead of crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream length is not a multiple of the codec's word size.
    Misaligned {
        /// Codec name.
        codec: &'static str,
        /// Required alignment in bytes.
        align: usize,
        /// Actual stream length in bytes.
        len: usize,
    },
    /// The stream ended in the middle of a varint, literal run or container.
    Truncated {
        /// Codec name.
        codec: &'static str,
        /// Byte offset at which decoding had to stop.
        offset: usize,
    },
    /// A fill atom or marker word is structurally invalid.
    BadAtom {
        /// Codec name.
        codec: &'static str,
        /// Byte offset of the offending atom.
        offset: usize,
        /// What is wrong with it.
        what: &'static str,
    },
    /// Decoding would produce more output than the declared bitmap length;
    /// also guards decode allocations against hostile length fields.
    Overrun {
        /// Codec name.
        codec: &'static str,
        /// Declared bitmap length in bits.
        declared_bits: usize,
    },
    /// The stream decoded cleanly but to the wrong total length.
    WrongLength {
        /// Codec name.
        codec: &'static str,
        /// Decoded length (codec-specific unit: groups, words or bytes).
        decoded: usize,
        /// Length the declared bitmap size requires, in the same unit.
        declared: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Misaligned { codec, align, len } => {
                write!(
                    f,
                    "{codec} stream of {len} bytes is not {align}-byte aligned"
                )
            }
            DecodeError::Truncated { codec, offset } => {
                write!(f, "{codec} stream truncated at byte {offset}")
            }
            DecodeError::BadAtom {
                codec,
                offset,
                what,
            } => write!(f, "{codec} stream has {what} at byte {offset}"),
            DecodeError::Overrun {
                codec,
                declared_bits,
            } => write!(
                f,
                "{codec} stream overruns the declared length of {declared_bits} bits"
            ),
            DecodeError::WrongLength {
                codec,
                decoded,
                declared,
            } => write!(
                f,
                "{codec} stream decoded to wrong length: {decoded} vs expected {declared}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Identifies a codec in configuration and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Identity codec: bitmaps stored as raw little-endian bytes.
    Raw,
    /// Byte-aligned run-length code (Antoshenkov-style).
    Bbc,
    /// 32-bit word-aligned hybrid.
    Wah,
    /// 64-bit enhanced word-aligned hybrid.
    Ewah,
    /// Roaring-style hybrid containers (array / bitmap per 64Ki chunk).
    Roaring,
}

impl CodecKind {
    /// Returns the codec implementation for this kind.
    pub fn codec(self) -> Box<dyn BitmapCodec> {
        match self {
            CodecKind::Raw => Box::new(Raw),
            CodecKind::Bbc => Box::new(crate::Bbc),
            CodecKind::Wah => Box::new(crate::Wah),
            CodecKind::Ewah => Box::new(crate::Ewah),
            CodecKind::Roaring => Box::new(crate::Roaring),
        }
    }

    /// True when the codec has compressed-domain bitwise kernels
    /// ([`CompressedBitmap::binary_op`] / [`CompressedBitmap::not_op`]).
    pub fn supports_compressed_ops(self) -> bool {
        matches!(
            self,
            CodecKind::Bbc | CodecKind::Wah | CodecKind::Ewah | CodecKind::Roaring
        )
    }

    /// Short lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::Bbc => "bbc",
            CodecKind::Wah => "wah",
            CodecKind::Ewah => "ewah",
            CodecKind::Roaring => "roaring",
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A bitmap compression codec.
///
/// Implementations must round-trip exactly:
/// `decompress(compress(bv), bv.len()) == bv`.
pub trait BitmapCodec: Send + Sync {
    /// Short lowercase name used in experiment output.
    fn name(&self) -> &'static str;

    /// The corresponding [`CodecKind`].
    fn kind(&self) -> CodecKind;

    /// Compresses a bitmap to a byte stream.
    fn compress(&self, bv: &Bitvec) -> Vec<u8>;

    /// Decompresses a byte stream back into a bitmap of `len_bits` bits,
    /// returning a [`DecodeError`] instead of panicking on malformed input.
    ///
    /// Implementations must reject structurally invalid streams (zero-count
    /// fills, truncated runs, trailing garbage) and must never allocate more
    /// than the declared bitmap length requires, no matter how hostile the
    /// input bytes are.
    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, DecodeError>;

    /// Decompresses a byte stream back into a bitmap of `len_bits` bits.
    ///
    /// Convenience wrapper over [`try_decompress`](Self::try_decompress)
    /// for internal round-trips where the stream is trusted.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed.
    fn decompress(&self, bytes: &[u8], len_bits: usize) -> Bitvec {
        self.try_decompress(bytes, len_bits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Structurally validates a stream without materializing the bitmap.
    ///
    /// The default implementation decodes and discards; codecs override it
    /// with an allocation-free walk where the format allows.
    fn validate(&self, bytes: &[u8], len_bits: usize) -> Result<(), DecodeError> {
        self.try_decompress(bytes, len_bits).map(|_| ())
    }
}

/// The identity codec: bitmaps are stored as their raw byte image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Raw;

impl BitmapCodec for Raw {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn kind(&self) -> CodecKind {
        CodecKind::Raw
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        bv.to_bytes()
    }

    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, DecodeError> {
        self.validate(bytes, len_bits)?;
        Ok(Bitvec::from_bytes(len_bits, bytes))
    }

    fn validate(&self, bytes: &[u8], len_bits: usize) -> Result<(), DecodeError> {
        let expected = len_bits.div_ceil(8);
        if bytes.len() != expected {
            return Err(DecodeError::WrongLength {
                codec: "raw",
                decoded: bytes.len(),
                declared: expected,
            });
        }
        check_tail_byte(bytes, len_bits, "raw")
    }
}

/// Rejects a raw byte image whose final byte has bits set past `len_bits`.
pub(crate) fn check_tail_byte(
    bytes: &[u8],
    len_bits: usize,
    codec: &'static str,
) -> Result<(), DecodeError> {
    let tail_bits = len_bits % 8;
    if tail_bits != 0 {
        if let Some(&last) = bytes.last() {
            if last & !((1u8 << tail_bits) - 1) != 0 {
                return Err(DecodeError::BadAtom {
                    codec,
                    offset: bytes.len() - 1,
                    what: "set bits past the declared length",
                });
            }
        }
    }
    Ok(())
}

/// A bitmap held in compressed form, tagged with its codec and bit length.
#[derive(Debug, Clone)]
pub struct CompressedBitmap {
    kind: CodecKind,
    len_bits: usize,
    bytes: Vec<u8>,
}

impl CompressedBitmap {
    /// Compresses `bv` with the given codec.
    pub fn encode(kind: CodecKind, bv: &Bitvec) -> Self {
        CompressedBitmap {
            kind,
            len_bits: bv.len(),
            bytes: kind.codec().compress(bv),
        }
    }

    /// Wraps an already-compressed byte stream without decoding it.
    ///
    /// The bytes are *not* validated here; [`try_decode`](Self::try_decode)
    /// or [`BitmapCodec::validate`] report malformed streams later. Used by
    /// storage read paths that hand compressed pages straight to the
    /// compressed-domain evaluator.
    pub fn from_parts(kind: CodecKind, len_bits: usize, bytes: Vec<u8>) -> Self {
        CompressedBitmap {
            kind,
            len_bits,
            bytes,
        }
    }

    /// Decompresses back to a plain bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed; use
    /// [`try_decode`](Self::try_decode) for untrusted bytes.
    pub fn decode(&self) -> Bitvec {
        self.kind.codec().decompress(&self.bytes, self.len_bits)
    }

    /// Decompresses back to a plain bitmap, reporting malformed streams as
    /// a [`DecodeError`] instead of panicking.
    pub fn try_decode(&self) -> Result<Bitvec, DecodeError> {
        self.kind.codec().try_decompress(&self.bytes, self.len_bits)
    }

    /// Combines two compressed bitmaps directly in the compressed domain,
    /// without decompressing either operand.
    ///
    /// Returns `None` when the codec has no compressed-domain kernel
    /// ([`CodecKind::supports_compressed_ops`] is false) or when the
    /// operands disagree on codec or length; the caller then falls back to
    /// decompress-then-bitwise.
    pub fn binary_op(&self, other: &CompressedBitmap, op: BitOp) -> Option<CompressedBitmap> {
        if self.kind != other.kind || self.len_bits != other.len_bits {
            return None;
        }
        let bytes = match self.kind {
            CodecKind::Bbc => crate::bbc_binary(&self.bytes, &other.bytes, op),
            CodecKind::Wah => crate::wah_binary_bytes(&self.bytes, &other.bytes, op),
            CodecKind::Ewah => crate::ewah_binary_bytes(&self.bytes, &other.bytes, op),
            CodecKind::Roaring => crate::roaring_binary(&self.bytes, &other.bytes, op),
            CodecKind::Raw => return None,
        };
        Some(CompressedBitmap {
            kind: self.kind,
            len_bits: self.len_bits,
            bytes,
        })
    }

    /// Complements a compressed bitmap in the compressed domain.
    ///
    /// Returns `None` when the codec has no compressed-domain kernel.
    pub fn not_op(&self) -> Option<CompressedBitmap> {
        let bytes = match self.kind {
            CodecKind::Bbc => crate::bbc_not(&self.bytes, self.len_bits),
            CodecKind::Wah => crate::wah_not_bytes(&self.bytes, self.len_bits),
            CodecKind::Ewah => crate::ewah_not_bytes(&self.bytes, self.len_bits),
            CodecKind::Roaring => crate::roaring_not(&self.bytes, self.len_bits),
            CodecKind::Raw => return None,
        };
        Some(CompressedBitmap {
            kind: self.kind,
            len_bits: self.len_bits,
            bytes,
        })
    }

    /// Stored (compressed) size in bytes.
    pub fn stored_size(&self) -> usize {
        self.bytes.len()
    }

    /// Uncompressed size in bytes.
    pub fn raw_size(&self) -> usize {
        self.len_bits.div_ceil(8)
    }

    /// Number of bits in the decoded bitmap.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// The codec used.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// The compressed byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_codec_is_identity() {
        let bv = Bitvec::from_positions(100, &[1, 50, 99]);
        let raw = Raw;
        assert_eq!(raw.compress(&bv), bv.to_bytes());
        assert_eq!(raw.decompress(&bv.to_bytes(), 100), bv);
    }

    #[test]
    fn compressed_bitmap_round_trips_all_codecs() {
        let bv = Bitvec::from_positions(2000, &[0, 3, 700, 701, 702, 1999]);
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            let cb = CompressedBitmap::encode(kind, &bv);
            assert_eq!(cb.decode(), bv, "codec {kind}");
            assert_eq!(cb.len_bits(), 2000);
            assert_eq!(cb.raw_size(), 250);
        }
    }

    #[test]
    fn sparse_bitmaps_are_smaller_compressed() {
        let bv = Bitvec::from_positions(80_000, &[5, 40_000]);
        let raw = CompressedBitmap::encode(CodecKind::Raw, &bv);
        let bbc = CompressedBitmap::encode(CodecKind::Bbc, &bv);
        let wah = CompressedBitmap::encode(CodecKind::Wah, &bv);
        assert_eq!(raw.stored_size(), 10_000);
        assert!(bbc.stored_size() < 100);
        assert!(wah.stored_size() < 100);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(CodecKind::Raw.name(), "raw");
        assert_eq!(CodecKind::Bbc.name(), "bbc");
        assert_eq!(CodecKind::Wah.name(), "wah");
        assert_eq!(CodecKind::Ewah.name(), "ewah");
        assert_eq!(format!("{}", CodecKind::Bbc), "bbc");
    }

    #[test]
    fn kind_dispatch_matches_codec_kind() {
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            assert_eq!(kind.codec().kind(), kind);
        }
    }
}
