//! Compressed-domain bitwise operations on EWAH streams.
//!
//! The 64-bit word-aligned analogue of [`crate::bbc_binary`]: two
//! compressed EWAH streams are walked in lockstep at word granularity,
//! aligned fill runs combine in O(1), and only literal words pay a word
//! operation. Output is canonical — byte-identical to compressing the
//! bitwise result from scratch.
//!
//! Inputs are assumed structurally valid (see [`crate::BitmapCodec::validate`]);
//! the storage layer validates streams when it reads them for
//! compressed-domain use.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{ewah_binary_bytes, BitOp, BitmapCodec, Ewah};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 50_000]);
//! let c = ewah_binary_bytes(&Ewah.compress(&a), &Ewah.compress(&b), BitOp::Or);
//! assert_eq!(Ewah.decompress(&c, 100_000), a.or(&b));
//! ```

use crate::ewah::{marker, unpack, words_from_bytes, words_to_bytes};
use crate::ewah::{FILL_COUNT_MAX, LITERAL_COUNT_MAX};
use crate::BitOp;

/// Re-encodes words into canonical EWAH: fill runs merge maximally,
/// all-0 / all-1 literal words fold into fills, and each (fill run,
/// literal run) pair becomes one marker, split exactly as
/// [`crate::Ewah::compress_words`] splits oversized runs.
struct EwahEncoder {
    out: Vec<u64>,
    fill_bit: bool,
    fills: u64,
    lits: Vec<u64>,
}

impl EwahEncoder {
    fn new() -> Self {
        EwahEncoder {
            out: Vec::new(),
            fill_bit: false,
            fills: 0,
            lits: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.fills == 0 && self.lits.is_empty() {
            return;
        }
        // A marker with no fill run always encodes fill = false, matching
        // the block compressor.
        let bit = self.fills > 0 && self.fill_bit;
        let mut fills = self.fills;
        let lits = std::mem::take(&mut self.lits);
        let mut lit_cursor = 0usize;
        loop {
            let f = fills.min(FILL_COUNT_MAX);
            let l = ((lits.len() - lit_cursor) as u64).min(LITERAL_COUNT_MAX);
            self.out.push(marker(bit, f, l));
            self.out
                .extend_from_slice(&lits[lit_cursor..lit_cursor + l as usize]);
            fills -= f;
            lit_cursor += l as usize;
            if fills == 0 && lit_cursor == lits.len() {
                break;
            }
        }
        self.fills = 0;
    }

    fn push_fill(&mut self, bit: bool, n: u64) {
        if n == 0 {
            return;
        }
        if !self.lits.is_empty() || (self.fills > 0 && self.fill_bit != bit) {
            self.flush();
        }
        self.fill_bit = bit;
        self.fills += n;
    }

    fn push_literal(&mut self, w: u64) {
        if w == 0 {
            self.push_fill(false, 1);
        } else if w == u64::MAX {
            self.push_fill(true, 1);
        } else {
            self.lits.push(w);
        }
    }

    fn finish(mut self) -> Vec<u64> {
        self.flush();
        self.out
    }
}

/// One aligned run handed to the combiner.
enum Seg {
    /// Words of an identical fill.
    Fill(bool),
    /// A single literal word.
    Literal(u64),
}

/// Cursor over the decoded word runs of an EWAH stream.
struct EwahCursor<'a> {
    stream: &'a [u64],
    /// Index of the next unread stream word (past the current marker).
    i: usize,
    fill_bit: bool,
    fills_left: u64,
    lits_left: u64,
}

impl<'a> EwahCursor<'a> {
    fn new(stream: &'a [u64]) -> Self {
        let mut c = EwahCursor {
            stream,
            i: 0,
            fill_bit: false,
            fills_left: 0,
            lits_left: 0,
        };
        c.advance();
        c
    }

    /// Loads markers until the cursor has something to yield or the stream
    /// ends.
    fn advance(&mut self) {
        while self.fills_left == 0 && self.lits_left == 0 && self.i < self.stream.len() {
            let (bit, fills, lits) = unpack(self.stream[self.i]);
            self.i += 1;
            self.fill_bit = bit;
            self.fills_left = fills;
            self.lits_left = lits;
        }
    }

    /// Words remaining in the current segment, or `None` at end.
    fn remaining(&self) -> Option<u64> {
        if self.fills_left > 0 {
            Some(self.fills_left)
        } else if self.lits_left > 0 {
            Some(1)
        } else {
            None
        }
    }

    /// Consumes exactly `n` words (must not exceed `remaining`).
    fn take(&mut self, n: u64) -> Seg {
        let seg = if self.fills_left > 0 {
            self.fills_left -= n;
            Seg::Fill(self.fill_bit)
        } else {
            debug_assert_eq!(n, 1);
            let w = self.stream[self.i];
            self.i += 1;
            self.lits_left -= 1;
            Seg::Literal(w)
        };
        self.advance();
        seg
    }
}

/// Combines two EWAH word streams bitwise, producing a canonical EWAH word
/// stream. Both inputs must decode to the same word count.
///
/// # Panics
///
/// Panics if the streams decode to different word counts.
pub fn ewah_binary(a: &[u64], b: &[u64], op: BitOp) -> Vec<u64> {
    let mut ca = EwahCursor::new(a);
    let mut cb = EwahCursor::new(b);
    let mut enc = EwahEncoder::new();
    loop {
        match (ca.remaining(), cb.remaining()) {
            (None, None) => break,
            (Some(ra), Some(rb)) => {
                let n = ra.min(rb);
                match (ca.take(n), cb.take(n)) {
                    (Seg::Fill(x), Seg::Fill(y)) => enc.push_fill(op.apply_bit(x, y), n),
                    (Seg::Fill(x), Seg::Literal(w)) => {
                        let fx = if x { u64::MAX } else { 0 };
                        enc.push_literal(op.apply_u64(fx, w));
                    }
                    (Seg::Literal(w), Seg::Fill(y)) => {
                        let fy = if y { u64::MAX } else { 0 };
                        enc.push_literal(op.apply_u64(w, fy));
                    }
                    (Seg::Literal(wa), Seg::Literal(wb)) => {
                        enc.push_literal(op.apply_u64(wa, wb));
                    }
                }
            }
            _ => panic!("EWAH streams decode to different word counts"),
        }
    }
    enc.finish()
}

/// Byte-stream wrapper around [`ewah_binary`].
///
/// # Panics
///
/// Panics if either stream is not 8-byte aligned or the streams decode to
/// different word counts.
pub fn ewah_binary_bytes(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let wa = words_from_bytes(a).unwrap_or_else(|e| panic!("{e}"));
    let wb = words_from_bytes(b).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&ewah_binary(&wa, &wb, op))
}

/// Complements an EWAH word stream over `len_bits` bits: fills and literal
/// words flip, and bits past `len_bits` in the final (partial) word are
/// cleared so the result stays canonical.
///
/// # Panics
///
/// Panics if the stream does not decode to exactly the word count
/// `len_bits` requires.
pub fn ewah_not(stream: &[u64], len_bits: usize) -> Vec<u64> {
    let total_words = (len_bits.div_ceil(64)) as u64;
    let tail_bits = len_bits % 64;
    let tail_mask: u64 = if tail_bits == 0 {
        u64::MAX
    } else {
        (1u64 << tail_bits) - 1
    };
    let mut enc = EwahEncoder::new();
    let mut cursor = EwahCursor::new(stream);
    let mut produced = 0u64;
    while let Some(r) = cursor.remaining() {
        let covers_tail = produced + r == total_words && tail_mask != u64::MAX;
        match cursor.take(r) {
            Seg::Fill(bit) => {
                let body = if covers_tail { r - 1 } else { r };
                enc.push_fill(!bit, body);
                if covers_tail {
                    let last = if bit { u64::MAX } else { 0 };
                    enc.push_literal(!last & tail_mask);
                }
            }
            Seg::Literal(w) => {
                let mask = if covers_tail { tail_mask } else { u64::MAX };
                enc.push_literal(!w & mask);
            }
        }
        produced += r;
    }
    assert_eq!(
        produced, total_words,
        "EWAH stream decoded to wrong word count"
    );
    enc.finish()
}

/// Byte-stream wrapper around [`ewah_not`].
///
/// # Panics
///
/// Panics if the stream is not 8-byte aligned or decodes to the wrong
/// word count.
pub fn ewah_not_bytes(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let words = words_from_bytes(stream).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&ewah_not(&words, len_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapCodec, Ewah};
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 7, 63, 64, 128, 1000, 10_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Ewah.compress(&a);
            let cb = Ewah.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = ewah_binary_bytes(&ca, &cb, op);
                assert_eq!(
                    Ewah.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        let bits = 5_000;
        let a = sample(3, bits);
        let b = sample(4, bits);
        for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
            let direct = ewah_binary_bytes(&Ewah.compress(&a), &Ewah.compress(&b), op);
            let expect = match op {
                BitOp::And => a.and(&b),
                BitOp::Or => a.or(&b),
                BitOp::Xor => a.xor(&b),
                BitOp::AndNot => a.and_not(&b),
            };
            assert_eq!(direct, Ewah.compress(&expect), "{op:?}");
        }
    }

    #[test]
    fn fills_combine_without_word_loops() {
        let bits = 64 * 1_000_000;
        let zeros = Bitvec::zeros(bits);
        let c = Ewah.compress(&zeros);
        let combined = ewah_binary_bytes(&c, &c, BitOp::And);
        assert!(combined.len() <= 16);
        assert_eq!(Ewah.decompress(&combined, bits), zeros);
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 7, 63, 64, 65, 128, 1000, 4096, 10_001] {
            let a = sample(5, bits);
            let neg = ewah_not_bytes(&Ewah.compress(&a), bits);
            assert_eq!(Ewah.decompress(&neg, bits), a.not(), "bits={bits}");
            assert_eq!(neg, Ewah.compress(&a.not()), "canonical bits={bits}");
        }
    }

    #[test]
    fn not_of_all_zero_is_all_one() {
        let bits = 64 * 40 + 5;
        let c = Ewah.compress(&Bitvec::zeros(bits));
        assert_eq!(
            Ewah.decompress(&ewah_not_bytes(&c, bits), bits),
            Bitvec::ones_vec(bits)
        );
    }

    #[test]
    #[should_panic(expected = "different word counts")]
    fn mismatched_streams_panic() {
        let a = Ewah.compress(&Bitvec::zeros(64));
        let b = Ewah.compress(&Bitvec::zeros(128));
        let _ = ewah_binary_bytes(&a, &b, BitOp::And);
    }
}
