//! Compressed-domain bitwise operations on EWAH streams.
//!
//! The 64-bit word-aligned analogue of [`crate::bbc_binary`]: two
//! compressed EWAH streams are walked in lockstep at *run* granularity.
//! Aligned fill runs combine in O(1), a fill meeting a literal run either
//! absorbs it (And with a zero fill, Or with a ones fill) in O(1) or
//! copies / complements the whole literal slice in one pass, and only
//! literal-against-literal regions pay a word-by-word loop. Output is
//! canonical — byte-identical to compressing the bitwise result from
//! scratch.
//!
//! Inputs are assumed canonical (as produced by
//! [`crate::Ewah::compress_words`] or by these kernels); in particular a
//! canonical stream never stores an all-0 or all-1 word as a literal, so
//! the copy and complement fast paths can move whole slices without
//! re-checking each word for fill-folding. The storage layer validates
//! streams when it reads them for compressed-domain use.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{ewah_binary_bytes, BitOp, BitmapCodec, Ewah};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 50_000]);
//! let c = ewah_binary_bytes(&Ewah.compress(&a), &Ewah.compress(&b), BitOp::Or);
//! assert_eq!(Ewah.decompress(&c, 100_000), a.or(&b));
//! ```

use crate::bbc_ops::{fill_effect, FillEffect};
use crate::ewah::{marker, unpack, words_from_bytes, words_to_bytes};
use crate::ewah::{FILL_COUNT_MAX, LITERAL_COUNT_MAX};
use crate::BitOp;

/// Re-encodes words into canonical EWAH: fill runs merge maximally,
/// all-0 / all-1 literal words fold into fills, and each (fill run,
/// literal run) pair becomes one marker, split exactly as
/// [`crate::Ewah::compress_words`] splits oversized runs.
struct EwahEncoder {
    out: Vec<u64>,
    fill_bit: bool,
    fills: u64,
    lits: Vec<u64>,
}

impl EwahEncoder {
    fn new() -> Self {
        EwahEncoder {
            out: Vec::new(),
            fill_bit: false,
            fills: 0,
            lits: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.fills == 0 && self.lits.is_empty() {
            return;
        }
        // A marker with no fill run always encodes fill = false, matching
        // the block compressor.
        let bit = self.fills > 0 && self.fill_bit;
        let mut fills = self.fills;
        let lits = std::mem::take(&mut self.lits);
        let mut lit_cursor = 0usize;
        loop {
            let f = fills.min(FILL_COUNT_MAX);
            let l = ((lits.len() - lit_cursor) as u64).min(LITERAL_COUNT_MAX);
            self.out.push(marker(bit, f, l));
            self.out
                .extend_from_slice(&lits[lit_cursor..lit_cursor + l as usize]);
            fills -= f;
            lit_cursor += l as usize;
            if fills == 0 && lit_cursor == lits.len() {
                break;
            }
        }
        self.fills = 0;
    }

    fn push_fill(&mut self, bit: bool, n: u64) {
        if n == 0 {
            return;
        }
        if !self.lits.is_empty() || (self.fills > 0 && self.fill_bit != bit) {
            self.flush();
        }
        self.fill_bit = bit;
        self.fills += n;
    }

    fn push_literal(&mut self, w: u64) {
        if w == 0 {
            self.push_fill(false, 1);
        } else if w == u64::MAX {
            self.push_fill(true, 1);
        } else {
            self.lits.push(w);
        }
    }

    /// Appends literal words already known to be neither all-0 nor all-1
    /// (words copied verbatim from a canonical stream), skipping the
    /// per-word fill-folding check.
    fn push_lits_verbatim(&mut self, ws: &[u64]) {
        self.lits.extend_from_slice(ws);
    }

    /// Appends the complement of literal words from a canonical stream;
    /// `!w` of a word that is neither all-0 nor all-1 is itself neither,
    /// so no fill-folding check is needed.
    fn push_lits_complement(&mut self, ws: &[u64]) {
        self.lits.extend(ws.iter().map(|w| !w));
    }

    fn finish(mut self) -> Vec<u64> {
        self.flush();
        self.out
    }
}

/// The head run of a cursor: a maximal fill region or the number of
/// literal words contiguous in the stream.
#[derive(Clone, Copy)]
enum Head {
    Fill(bool, u64),
    Lits(u64),
}

/// Cursor over the decoded word runs of an EWAH stream.
struct EwahCursor<'a> {
    stream: &'a [u64],
    /// Index of the next unread stream word (past the current marker).
    i: usize,
    fill_bit: bool,
    fills_left: u64,
    lits_left: u64,
}

impl<'a> EwahCursor<'a> {
    fn new(stream: &'a [u64]) -> Self {
        let mut c = EwahCursor {
            stream,
            i: 0,
            fill_bit: false,
            fills_left: 0,
            lits_left: 0,
        };
        c.advance();
        c
    }

    /// Loads markers until the cursor has something to yield or the stream
    /// ends.
    fn advance(&mut self) {
        while self.fills_left == 0 && self.lits_left == 0 && self.i < self.stream.len() {
            let (bit, fills, lits) = unpack(self.stream[self.i]);
            self.i += 1;
            self.fill_bit = bit;
            self.fills_left = fills;
            self.lits_left = lits;
        }
    }

    /// The current run, or `None` at end of stream.
    fn head(&self) -> Option<Head> {
        if self.fills_left > 0 {
            Some(Head::Fill(self.fill_bit, self.fills_left))
        } else if self.lits_left > 0 {
            Some(Head::Lits(self.lits_left))
        } else {
            None
        }
    }

    /// Consumes `n` fill words (must not exceed the current fill run).
    fn take_fill(&mut self, n: u64) {
        debug_assert!(n <= self.fills_left);
        self.fills_left -= n;
        self.advance();
    }

    /// Consumes `n` literal words (must not exceed the current literal
    /// run), returning them as one contiguous slice.
    fn take_lits(&mut self, n: u64) -> &'a [u64] {
        debug_assert!(n <= self.lits_left);
        let s = &self.stream[self.i..self.i + n as usize];
        self.i += n as usize;
        self.lits_left -= n;
        self.advance();
        s
    }
}

/// Combines two EWAH word streams bitwise, producing a canonical EWAH word
/// stream. Both inputs must decode to the same word count.
///
/// # Panics
///
/// Panics if the streams decode to different word counts.
pub fn ewah_binary(a: &[u64], b: &[u64], op: BitOp) -> Vec<u64> {
    let mut ca = EwahCursor::new(a);
    let mut cb = EwahCursor::new(b);
    let mut enc = EwahEncoder::new();
    loop {
        match (ca.head(), cb.head()) {
            (None, None) => break,
            (Some(Head::Fill(x, na)), Some(Head::Fill(y, nb))) => {
                let n = na.min(nb);
                enc.push_fill(op.apply_bit(x, y), n);
                ca.take_fill(n);
                cb.take_fill(n);
            }
            (Some(Head::Fill(x, na)), Some(Head::Lits(nb))) => {
                let n = na.min(nb);
                ca.take_fill(n);
                let ws = cb.take_lits(n);
                match fill_effect(op, x, true) {
                    FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                    FillEffect::Copy => enc.push_lits_verbatim(ws),
                    FillEffect::Complement => enc.push_lits_complement(ws),
                }
            }
            (Some(Head::Lits(na)), Some(Head::Fill(y, nb))) => {
                let n = na.min(nb);
                let ws = ca.take_lits(n);
                cb.take_fill(n);
                match fill_effect(op, y, false) {
                    FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                    FillEffect::Copy => enc.push_lits_verbatim(ws),
                    FillEffect::Complement => enc.push_lits_complement(ws),
                }
            }
            (Some(Head::Lits(na)), Some(Head::Lits(nb))) => {
                let n = na.min(nb);
                let wa = ca.take_lits(n);
                let wb = cb.take_lits(n);
                for (x, y) in wa.iter().zip(wb) {
                    enc.push_literal(op.apply_u64(*x, *y));
                }
            }
            _ => panic!("EWAH streams decode to different word counts"),
        }
    }
    enc.finish()
}

/// Byte-stream wrapper around [`ewah_binary`].
///
/// # Panics
///
/// Panics if either stream is not 8-byte aligned or the streams decode to
/// different word counts.
pub fn ewah_binary_bytes(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let wa = words_from_bytes(a).unwrap_or_else(|e| panic!("{e}"));
    let wb = words_from_bytes(b).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&ewah_binary(&wa, &wb, op))
}

/// Complements an EWAH word stream over `len_bits` bits: fills and literal
/// words flip, and bits past `len_bits` in the final (partial) word are
/// cleared so the result stays canonical.
///
/// # Panics
///
/// Panics if the stream does not decode to exactly the word count
/// `len_bits` requires.
pub fn ewah_not(stream: &[u64], len_bits: usize) -> Vec<u64> {
    let total_words = (len_bits.div_ceil(64)) as u64;
    let tail_bits = len_bits % 64;
    let tail_mask: u64 = if tail_bits == 0 {
        u64::MAX
    } else {
        (1u64 << tail_bits) - 1
    };
    let mut enc = EwahEncoder::new();
    let mut cursor = EwahCursor::new(stream);
    let mut produced = 0u64;
    while let Some(head) = cursor.head() {
        match head {
            Head::Fill(bit, n) => {
                cursor.take_fill(n);
                let covers_tail = produced + n == total_words && tail_mask != u64::MAX;
                let body = if covers_tail { n - 1 } else { n };
                enc.push_fill(!bit, body);
                if covers_tail {
                    let last = if bit { u64::MAX } else { 0 };
                    enc.push_literal(!last & tail_mask);
                }
                produced += n;
            }
            Head::Lits(n) => {
                let ws = cursor.take_lits(n);
                let covers_tail = produced + n == total_words && tail_mask != u64::MAX;
                if covers_tail {
                    enc.push_lits_complement(&ws[..ws.len() - 1]);
                    enc.push_literal(!ws[ws.len() - 1] & tail_mask);
                } else {
                    enc.push_lits_complement(ws);
                }
                produced += n;
            }
        }
    }
    assert_eq!(
        produced, total_words,
        "EWAH stream decoded to wrong word count"
    );
    enc.finish()
}

/// Byte-stream wrapper around [`ewah_not`].
///
/// # Panics
///
/// Panics if the stream is not 8-byte aligned or decodes to the wrong
/// word count.
pub fn ewah_not_bytes(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let words = words_from_bytes(stream).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&ewah_not(&words, len_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapCodec, Ewah};
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 7, 63, 64, 128, 1000, 10_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Ewah.compress(&a);
            let cb = Ewah.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = ewah_binary_bytes(&ca, &cb, op);
                assert_eq!(
                    Ewah.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        let bits = 5_000;
        let a = sample(3, bits);
        let b = sample(4, bits);
        for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
            let direct = ewah_binary_bytes(&Ewah.compress(&a), &Ewah.compress(&b), op);
            let expect = match op {
                BitOp::And => a.and(&b),
                BitOp::Or => a.or(&b),
                BitOp::Xor => a.xor(&b),
                BitOp::AndNot => a.and_not(&b),
            };
            assert_eq!(direct, Ewah.compress(&expect), "{op:?}");
        }
    }

    /// Fill-against-literal fast paths (absorb / copy / complement) must
    /// stay canonical: pit a half-fill half-dense bitmap against a fully
    /// dense one so every path is exercised with multi-word slices.
    #[test]
    fn fill_against_literal_runs_stay_canonical() {
        let bits = 64 * 200;
        // a: first half all-one fill, second half all-zero fill.
        let mut a = Bitvec::zeros(bits);
        for i in 0..bits / 2 {
            a.set(i, true);
        }
        // b: dense irregular literals throughout.
        let b = {
            let positions: Vec<usize> = (0..bits).step_by(3).collect();
            Bitvec::from_positions(bits, &positions)
        };
        for (x, y) in [(&a, &b), (&b, &a)] {
            let cx = Ewah.compress(x);
            let cy = Ewah.compress(y);
            for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
                let expect = match op {
                    BitOp::And => x.and(y),
                    BitOp::Or => x.or(y),
                    BitOp::Xor => x.xor(y),
                    BitOp::AndNot => x.and_not(y),
                };
                assert_eq!(
                    ewah_binary_bytes(&cx, &cy, op),
                    Ewah.compress(&expect),
                    "{op:?}"
                );
            }
        }
    }

    #[test]
    fn fills_combine_without_word_loops() {
        let bits = 64 * 1_000_000;
        let zeros = Bitvec::zeros(bits);
        let c = Ewah.compress(&zeros);
        let combined = ewah_binary_bytes(&c, &c, BitOp::And);
        assert!(combined.len() <= 16);
        assert_eq!(Ewah.decompress(&combined, bits), zeros);
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 7, 63, 64, 65, 128, 1000, 4096, 10_001] {
            let a = sample(5, bits);
            let neg = ewah_not_bytes(&Ewah.compress(&a), bits);
            assert_eq!(Ewah.decompress(&neg, bits), a.not(), "bits={bits}");
            assert_eq!(neg, Ewah.compress(&a.not()), "canonical bits={bits}");
        }
    }

    #[test]
    fn not_of_all_zero_is_all_one() {
        let bits = 64 * 40 + 5;
        let c = Ewah.compress(&Bitvec::zeros(bits));
        assert_eq!(
            Ewah.decompress(&ewah_not_bytes(&c, bits), bits),
            Bitvec::ones_vec(bits)
        );
    }

    #[test]
    #[should_panic(expected = "different word counts")]
    fn mismatched_streams_panic() {
        let a = Ewah.compress(&Bitvec::zeros(64));
        let b = Ewah.compress(&Bitvec::zeros(128));
        let _ = ewah_binary_bytes(&a, &b, BitOp::And);
    }
}
