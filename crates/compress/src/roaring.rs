//! A Roaring-style hybrid container codec.
//!
//! Roaring bitmaps (Chambi, Lemire et al., 2016) postdate the paper by
//! almost two decades but are today's default bitmap representation —
//! notably, they *skip* interval encoding entirely (each bitmap is stored
//! independently), which makes them the natural modern baseline for the
//! codec ablation. This is a self-contained reimplementation of the core
//! idea: the bit space is split into 2^16-bit chunks, and each non-empty
//! chunk is stored as whichever container is smaller:
//!
//! * an **array container** — sorted `u16` offsets, for chunks with at
//!   most 4096 set bits;
//! * a **bitmap container** — the raw 8 KiB chunk image, otherwise.
//!
//! Serialized layout (little-endian):
//!
//! ```text
//! u32                     number of containers
//! per container:
//!   u16  chunk key (bit index >> 16)
//!   u8   type (0 = array, 1 = bitmap)
//!   u16  cardinality − 1        (array only)
//!   data: u16×cardinality (array) or 8192 bytes (bitmap)
//! ```

use bix_bitvec::Bitvec;

pub(crate) const CHUNK_BITS: usize = 1 << 16;
pub(crate) const CHUNK_BYTES: usize = CHUNK_BITS / 8;
pub(crate) const ARRAY_MAX: usize = 4096;

/// The Roaring-style codec. Stateless; see the module docs for the format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Roaring;

impl super::codec::BitmapCodec for Roaring {
    fn name(&self) -> &'static str {
        "roaring"
    }

    fn kind(&self) -> crate::CodecKind {
        crate::CodecKind::Roaring
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        // Gather per-chunk positions.
        let n_chunks = bv.len().div_ceil(CHUNK_BITS);
        let mut containers: Vec<(u16, Vec<u16>)> = Vec::new();
        let mut current: Option<(u16, Vec<u16>)> = None;
        for pos in bv.ones() {
            let key = (pos / CHUNK_BITS) as u16;
            let offset = (pos % CHUNK_BITS) as u16;
            match &mut current {
                Some((k, offsets)) if *k == key => offsets.push(offset),
                _ => {
                    if let Some(done) = current.take() {
                        containers.push(done);
                    }
                    current = Some((key, vec![offset]));
                }
            }
        }
        if let Some(done) = current.take() {
            containers.push(done);
        }
        let _ = n_chunks;

        let mut out = Vec::new();
        out.extend_from_slice(&(containers.len() as u32).to_le_bytes());
        for (key, offsets) in containers {
            out.extend_from_slice(&key.to_le_bytes());
            if offsets.len() <= ARRAY_MAX {
                out.push(0);
                out.extend_from_slice(&((offsets.len() - 1) as u16).to_le_bytes());
                for o in offsets {
                    out.extend_from_slice(&o.to_le_bytes());
                }
            } else {
                out.push(1);
                let mut chunk = [0u8; CHUNK_BYTES];
                for o in offsets {
                    chunk[o as usize / 8] |= 1 << (o % 8);
                }
                out.extend_from_slice(&chunk);
            }
        }
        out
    }

    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, crate::DecodeError> {
        use crate::DecodeError;
        let mut bv = Bitvec::zeros(len_bits);
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
            if n > bytes.len() - *pos {
                return Err(DecodeError::Truncated {
                    codec: "roaring",
                    offset: bytes.len(),
                });
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let n_containers =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        for _ in 0..n_containers {
            let key = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
            let kind_at = pos;
            let kind = take(&mut pos, 1)?[0];
            let base = key * CHUNK_BITS;
            match kind {
                0 => {
                    let card = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes"))
                        as usize
                        + 1;
                    for _ in 0..card {
                        let o = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes"))
                            as usize;
                        if base + o >= len_bits {
                            return Err(DecodeError::Overrun {
                                codec: "roaring",
                                declared_bits: len_bits,
                            });
                        }
                        bv.set(base + o, true);
                    }
                }
                1 => {
                    let chunk = take(&mut pos, CHUNK_BYTES)?;
                    for (byte_idx, &byte) in chunk.iter().enumerate() {
                        if byte == 0 {
                            continue;
                        }
                        let bit_base = base + byte_idx * 8;
                        let n = 8.min(len_bits.saturating_sub(bit_base));
                        if n < 8 && byte >> n != 0 {
                            return Err(DecodeError::Overrun {
                                codec: "roaring",
                                declared_bits: len_bits,
                            });
                        }
                        if n > 0 {
                            bv.set_bits(bit_base, n, u64::from(byte));
                        }
                    }
                }
                _ => {
                    return Err(DecodeError::BadAtom {
                        codec: "roaring",
                        offset: kind_at,
                        what: "bad container type byte",
                    });
                }
            }
        }
        if pos != bytes.len() {
            return Err(DecodeError::BadAtom {
                codec: "roaring",
                offset: pos,
                what: "trailing bytes after last container",
            });
        }
        Ok(bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapCodec;

    fn round_trip(bv: &Bitvec) {
        let c = Roaring.compress(bv);
        assert_eq!(&Roaring.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(&Bitvec::zeros(0));
        round_trip(&Bitvec::zeros(100));
        round_trip(&Bitvec::from_positions(1, &[0]));
    }

    #[test]
    fn sparse_uses_array_containers() {
        let bv = Bitvec::from_positions(1 << 20, &[3, 70_000, 1_000_000]);
        let c = Roaring.compress(&bv);
        // 3 containers, each: 2 key + 1 type + 2 card + 2 value = 7 bytes,
        // plus the 4-byte count.
        assert_eq!(c.len(), 4 + 3 * 7);
        round_trip(&bv);
    }

    #[test]
    fn dense_chunk_switches_to_bitmap_container() {
        let positions: Vec<usize> = (0..CHUNK_BITS).step_by(2).collect();
        let bv = Bitvec::from_positions(CHUNK_BITS, &positions);
        let c = Roaring.compress(&bv);
        // One bitmap container: 4 + 2 + 1 + 8192.
        assert_eq!(c.len(), 4 + 3 + CHUNK_BYTES);
        round_trip(&bv);
    }

    #[test]
    fn threshold_boundary() {
        // Exactly ARRAY_MAX stays array; one more becomes a bitmap.
        let at: Vec<usize> = (0..ARRAY_MAX).map(|i| i * 16).collect();
        let bv = Bitvec::from_positions(CHUNK_BITS, &at);
        let c = Roaring.compress(&bv);
        assert_eq!(c.len(), 4 + 2 + 1 + 2 + 2 * ARRAY_MAX);
        round_trip(&bv);

        let over: Vec<usize> = (0..=ARRAY_MAX).map(|i| i * 15).collect();
        let bv = Bitvec::from_positions(CHUNK_BITS, &over);
        let c = Roaring.compress(&bv);
        assert_eq!(c.len(), 4 + 3 + CHUNK_BYTES);
        round_trip(&bv);
    }

    #[test]
    fn multi_chunk_mixed_containers() {
        let mut positions: Vec<usize> = (0..CHUNK_BITS).step_by(3).collect(); // dense chunk 0
        positions.extend([CHUNK_BITS + 5, CHUNK_BITS + 99]); // sparse chunk 1
        positions.extend((3 * CHUNK_BITS..3 * CHUNK_BITS + 10_000).step_by(2)); // chunk 3
        let bv = Bitvec::from_positions(4 * CHUNK_BITS, &positions);
        round_trip(&bv);
    }

    #[test]
    fn tail_partial_chunk() {
        let len = CHUNK_BITS + 12_345;
        let positions: Vec<usize> = (CHUNK_BITS..len).step_by(2).collect();
        let bv = Bitvec::from_positions(len, &positions);
        round_trip(&bv);
    }
}
