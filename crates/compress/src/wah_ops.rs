//! Compressed-domain bitwise operations on WAH streams.
//!
//! The word-aligned analogue of [`crate::bbc_binary`]: two compressed WAH
//! streams are walked in lockstep at 31-bit-group granularity, aligned fill
//! runs combine in O(1) regardless of length, and only literal groups pay a
//! word operation. Output is canonical — byte-identical to compressing the
//! bitwise result from scratch — so compressed-domain and raw evaluation
//! are interchangeable anywhere in a query DAG.
//!
//! Inputs are assumed structurally valid (see [`crate::BitmapCodec::validate`]);
//! the storage layer validates streams when it reads them for
//! compressed-domain use, so corruption is caught before it reaches these
//! kernels.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{wah_binary_bytes, BitOp, BitmapCodec, Wah};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 50_000]);
//! let c = wah_binary_bytes(&Wah.compress(&a), &Wah.compress(&b), BitOp::And);
//! assert_eq!(Wah.decompress(&c, 100_000), a.and(&b));
//! ```

use crate::wah::{
    words_from_bytes, words_to_bytes, COUNT_MASK, FILL_BIT, FILL_FLAG, GROUP_BITS, LITERAL_MASK,
};
use crate::BitOp;

/// Re-encodes groups into canonical WAH: adjacent same-bit fills merge,
/// all-0 / all-1 literal groups fold into fills, and oversized runs split
/// exactly as [`crate::Wah::compress_words`] does.
struct WahEncoder {
    out: Vec<u32>,
    run_bit: bool,
    run_len: usize,
}

impl WahEncoder {
    fn new() -> Self {
        WahEncoder {
            out: Vec::new(),
            run_bit: false,
            run_len: 0,
        }
    }

    fn flush_run(&mut self) {
        let mut remaining = self.run_len;
        while remaining > 0 {
            let chunk = remaining.min(COUNT_MASK as usize);
            self.out
                .push(FILL_FLAG | (u32::from(self.run_bit) * FILL_BIT) | chunk as u32);
            remaining -= chunk;
        }
        self.run_len = 0;
    }

    fn push_fill(&mut self, bit: bool, count: usize) {
        if count == 0 {
            return;
        }
        if self.run_len > 0 && self.run_bit != bit {
            self.flush_run();
        }
        self.run_bit = bit;
        self.run_len += count;
    }

    fn push_group(&mut self, g: u32) {
        if g == 0 {
            self.push_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.push_fill(true, 1);
        } else {
            self.flush_run();
            self.out.push(g);
        }
    }

    fn finish(mut self) -> Vec<u32> {
        self.flush_run();
        self.out
    }
}

/// One aligned run handed to the combiner.
enum Seg {
    /// `count` groups of an identical fill.
    Fill(bool),
    /// A single literal group.
    Literal(u32),
}

/// Cursor over the decoded group runs of a WAH stream.
struct WahCursor<'a> {
    words: &'a [u32],
    i: usize,
    /// Groups left in the current fill word (0 when positioned on a literal).
    fill_left: usize,
    fill_bit: bool,
}

impl<'a> WahCursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        let mut c = WahCursor {
            words,
            i: 0,
            fill_left: 0,
            fill_bit: false,
        };
        c.load();
        c
    }

    /// Loads the word at `i` into the cursor state (no-op for literals).
    fn load(&mut self) {
        if let Some(&w) = self.words.get(self.i) {
            if w & FILL_FLAG != 0 {
                self.fill_bit = w & FILL_BIT != 0;
                self.fill_left = (w & COUNT_MASK) as usize;
            }
        }
    }

    /// Groups remaining in the current segment, or `None` at end.
    fn remaining(&self) -> Option<usize> {
        let &w = self.words.get(self.i)?;
        if w & FILL_FLAG != 0 {
            Some(self.fill_left)
        } else {
            Some(1)
        }
    }

    /// Consumes exactly `n` groups (must not exceed `remaining`).
    fn take(&mut self, n: usize) -> Seg {
        let w = self.words[self.i];
        if w & FILL_FLAG != 0 {
            let seg = Seg::Fill(self.fill_bit);
            self.fill_left -= n;
            if self.fill_left == 0 {
                self.i += 1;
                // Canonical streams never emit adjacent same-bit fill words
                // below the split threshold, but oversized runs do split —
                // merging here is the encoder's job, not the cursor's.
                self.load();
            }
            seg
        } else {
            debug_assert_eq!(n, 1);
            self.i += 1;
            self.load();
            Seg::Literal(w & LITERAL_MASK)
        }
    }
}

/// Combines two WAH word streams bitwise, producing a canonical WAH word
/// stream. Both inputs must decode to the same group count.
///
/// # Panics
///
/// Panics if the streams decode to different group counts.
pub fn wah_binary(a: &[u32], b: &[u32], op: BitOp) -> Vec<u32> {
    let mut ca = WahCursor::new(a);
    let mut cb = WahCursor::new(b);
    let mut enc = WahEncoder::new();
    loop {
        match (ca.remaining(), cb.remaining()) {
            (None, None) => break,
            (Some(ra), Some(rb)) => {
                let n = ra.min(rb);
                match (ca.take(n), cb.take(n)) {
                    (Seg::Fill(x), Seg::Fill(y)) => enc.push_fill(op.apply_bit(x, y), n),
                    (Seg::Fill(x), Seg::Literal(w)) => {
                        let fx = if x { LITERAL_MASK } else { 0 };
                        enc.push_group(op.apply_u32(fx, w) & LITERAL_MASK);
                    }
                    (Seg::Literal(w), Seg::Fill(y)) => {
                        let fy = if y { LITERAL_MASK } else { 0 };
                        enc.push_group(op.apply_u32(w, fy) & LITERAL_MASK);
                    }
                    (Seg::Literal(wa), Seg::Literal(wb)) => {
                        enc.push_group(op.apply_u32(wa, wb) & LITERAL_MASK);
                    }
                }
            }
            _ => panic!("WAH streams decode to different group counts"),
        }
    }
    enc.finish()
}

/// Byte-stream wrapper around [`wah_binary`].
///
/// # Panics
///
/// Panics if either stream is not 4-byte aligned or the streams decode to
/// different group counts.
pub fn wah_binary_bytes(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let wa = words_from_bytes(a).unwrap_or_else(|e| panic!("{e}"));
    let wb = words_from_bytes(b).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&wah_binary(&wa, &wb, op))
}

/// Complements a WAH word stream over `len_bits` bits: fills and literal
/// groups flip, and bits past `len_bits` in the final (partial) group are
/// cleared so the result stays canonical.
///
/// # Panics
///
/// Panics if the stream does not decode to exactly the group count
/// `len_bits` requires.
pub fn wah_not(stream: &[u32], len_bits: usize) -> Vec<u32> {
    let total_groups = len_bits.div_ceil(GROUP_BITS);
    let tail_bits = len_bits - (total_groups.saturating_sub(1)) * GROUP_BITS;
    let tail_mask: u32 = if tail_bits == GROUP_BITS {
        LITERAL_MASK
    } else {
        (1u32 << tail_bits) - 1
    };
    let mut enc = WahEncoder::new();
    let mut cursor = WahCursor::new(stream);
    let mut produced = 0usize;
    while let Some(r) = cursor.remaining() {
        // Split the final group off a run so its padding can be masked.
        let covers_tail = produced + r == total_groups && tail_mask != LITERAL_MASK;
        match cursor.take(r) {
            Seg::Fill(bit) => {
                let body = if covers_tail { r - 1 } else { r };
                enc.push_fill(!bit, body);
                if covers_tail {
                    let last = if bit { LITERAL_MASK } else { 0 };
                    enc.push_group(!last & tail_mask);
                }
            }
            Seg::Literal(w) => {
                let mask = if covers_tail { tail_mask } else { LITERAL_MASK };
                enc.push_group(!w & mask);
            }
        }
        produced += r;
    }
    assert_eq!(
        produced, total_groups,
        "WAH stream decoded to wrong group count"
    );
    enc.finish()
}

/// Byte-stream wrapper around [`wah_not`].
///
/// # Panics
///
/// Panics if the stream is not 4-byte aligned or decodes to the wrong
/// group count.
pub fn wah_not_bytes(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let words = words_from_bytes(stream).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&wah_not(&words, len_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapCodec, Wah};
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 7, 31, 62, 1000, 10_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Wah.compress(&a);
            let cb = Wah.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = wah_binary_bytes(&ca, &cb, op);
                assert_eq!(
                    Wah.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        let bits = 5_000;
        let a = sample(3, bits);
        let b = sample(4, bits);
        for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
            let direct = wah_binary_bytes(&Wah.compress(&a), &Wah.compress(&b), op);
            let expect = match op {
                BitOp::And => a.and(&b),
                BitOp::Or => a.or(&b),
                BitOp::Xor => a.xor(&b),
                BitOp::AndNot => a.and_not(&b),
            };
            assert_eq!(direct, Wah.compress(&expect), "{op:?}");
        }
    }

    #[test]
    fn fills_combine_without_group_loops() {
        let bits = 31 * 1_000_000;
        let zeros = Bitvec::zeros(bits);
        let c = Wah.compress(&zeros);
        let combined = wah_binary_bytes(&c, &c, BitOp::And);
        assert!(combined.len() <= 8);
        assert_eq!(Wah.decompress(&combined, bits), zeros);
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 7, 30, 31, 32, 62, 1000, 4096, 10_001] {
            let a = sample(5, bits);
            let neg = wah_not_bytes(&Wah.compress(&a), bits);
            assert_eq!(Wah.decompress(&neg, bits), a.not(), "bits={bits}");
            assert_eq!(neg, Wah.compress(&a.not()), "canonical bits={bits}");
        }
    }

    #[test]
    fn not_of_all_zero_is_all_one() {
        let bits = 31 * 40 + 5;
        let c = Wah.compress(&Bitvec::zeros(bits));
        assert_eq!(
            Wah.decompress(&wah_not_bytes(&c, bits), bits),
            Bitvec::ones_vec(bits)
        );
    }

    #[test]
    #[should_panic(expected = "different group counts")]
    fn mismatched_streams_panic() {
        let a = Wah.compress(&Bitvec::zeros(31));
        let b = Wah.compress(&Bitvec::zeros(62));
        let _ = wah_binary_bytes(&a, &b, BitOp::And);
    }
}
