//! Compressed-domain bitwise operations on WAH streams.
//!
//! The word-aligned analogue of [`crate::bbc_binary`]: two compressed WAH
//! streams are walked in lockstep at *run* granularity. Aligned fill runs
//! combine in O(1) regardless of length, a fill meeting a literal run
//! either absorbs it (And with a zero fill, Or with a ones fill) in O(1)
//! or copies / complements the whole literal slice in one pass, and only
//! literal-against-literal regions pay a word-by-word loop. Output is
//! canonical — byte-identical to compressing the bitwise result from
//! scratch — so compressed-domain and raw evaluation are interchangeable
//! anywhere in a query DAG.
//!
//! Inputs are assumed canonical (as produced by
//! [`crate::Wah::compress_words`] or by these kernels); in particular a
//! canonical stream never stores an all-0 or all-1 group as a literal
//! word, so the copy and complement fast paths can move whole slices
//! without re-checking each group for fill-folding. The storage layer
//! validates streams when it reads them for compressed-domain use, so
//! corruption is caught before it reaches these kernels.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{wah_binary_bytes, BitOp, BitmapCodec, Wah};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 50_000]);
//! let c = wah_binary_bytes(&Wah.compress(&a), &Wah.compress(&b), BitOp::And);
//! assert_eq!(Wah.decompress(&c, 100_000), a.and(&b));
//! ```

use crate::bbc_ops::{fill_effect, FillEffect};
use crate::wah::{
    words_from_bytes, words_to_bytes, COUNT_MASK, FILL_BIT, FILL_FLAG, GROUP_BITS, LITERAL_MASK,
};
use crate::BitOp;

/// Re-encodes groups into canonical WAH: adjacent same-bit fills merge,
/// all-0 / all-1 literal groups fold into fills, and oversized runs split
/// exactly as [`crate::Wah::compress_words`] does.
struct WahEncoder {
    out: Vec<u32>,
    run_bit: bool,
    run_len: usize,
}

impl WahEncoder {
    fn new() -> Self {
        WahEncoder {
            out: Vec::new(),
            run_bit: false,
            run_len: 0,
        }
    }

    fn flush_run(&mut self) {
        let mut remaining = self.run_len;
        while remaining > 0 {
            let chunk = remaining.min(COUNT_MASK as usize);
            self.out
                .push(FILL_FLAG | (u32::from(self.run_bit) * FILL_BIT) | chunk as u32);
            remaining -= chunk;
        }
        self.run_len = 0;
    }

    fn push_fill(&mut self, bit: bool, count: usize) {
        if count == 0 {
            return;
        }
        if self.run_len > 0 && self.run_bit != bit {
            self.flush_run();
        }
        self.run_bit = bit;
        self.run_len += count;
    }

    fn push_group(&mut self, g: u32) {
        if g == 0 {
            self.push_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.push_fill(true, 1);
        } else {
            self.flush_run();
            self.out.push(g);
        }
    }

    /// Appends literal groups already known to be neither all-0 nor all-1
    /// (words copied verbatim from a canonical stream, where a literal
    /// word equals its group value), skipping the per-group fold check.
    fn push_groups_verbatim(&mut self, gs: &[u32]) {
        if gs.is_empty() {
            return;
        }
        self.flush_run();
        self.out.extend_from_slice(gs);
    }

    /// Appends the complement of literal groups from a canonical stream;
    /// `!g & LITERAL_MASK` of a group that is neither all-0 nor all-1 is
    /// itself neither, so no fold check is needed.
    fn push_groups_complement(&mut self, gs: &[u32]) {
        if gs.is_empty() {
            return;
        }
        self.flush_run();
        self.out.extend(gs.iter().map(|g| !g & LITERAL_MASK));
    }

    fn finish(mut self) -> Vec<u32> {
        self.flush_run();
        self.out
    }
}

/// The head run of a cursor: a maximal fill region or the number of
/// literal words contiguous in the stream.
#[derive(Clone, Copy)]
enum Head {
    Fill(bool, usize),
    Lits(usize),
}

/// Cursor over the decoded group runs of a WAH stream.
struct WahCursor<'a> {
    words: &'a [u32],
    /// Start of the unread remainder; during a literal run, the first
    /// unconsumed literal word.
    i: usize,
    fill_bit: bool,
    /// Groups left in the current fill run (adjacent same-bit fill words —
    /// the split form of an oversized run — are merged on load).
    fills_left: usize,
    /// Literal words left in the current run, located at `words[i..]`.
    lits_left: usize,
}

impl<'a> WahCursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        let mut c = WahCursor {
            words,
            i: 0,
            fill_bit: false,
            fills_left: 0,
            lits_left: 0,
        };
        c.advance();
        c
    }

    /// Loads the next maximal run once the current one is exhausted.
    fn advance(&mut self) {
        if self.fills_left > 0 || self.lits_left > 0 || self.i >= self.words.len() {
            return;
        }
        let w = self.words[self.i];
        if w & FILL_FLAG != 0 {
            let bit = w & FILL_BIT != 0;
            self.fill_bit = bit;
            self.fills_left = (w & COUNT_MASK) as usize;
            self.i += 1;
            // Merge the continuation words of an oversized split run.
            while let Some(&next) = self.words.get(self.i) {
                if next & FILL_FLAG != 0 && (next & FILL_BIT != 0) == bit {
                    self.fills_left += (next & COUNT_MASK) as usize;
                    self.i += 1;
                } else {
                    break;
                }
            }
        } else {
            let mut j = self.i + 1;
            while j < self.words.len() && self.words[j] & FILL_FLAG == 0 {
                j += 1;
            }
            self.lits_left = j - self.i;
        }
    }

    /// The current run, or `None` at end of stream.
    fn head(&self) -> Option<Head> {
        if self.fills_left > 0 {
            Some(Head::Fill(self.fill_bit, self.fills_left))
        } else if self.lits_left > 0 {
            Some(Head::Lits(self.lits_left))
        } else {
            None
        }
    }

    /// Consumes `n` fill groups (must not exceed the current fill run).
    fn take_fill(&mut self, n: usize) {
        debug_assert!(n <= self.fills_left);
        self.fills_left -= n;
        self.advance();
    }

    /// Consumes `n` literal groups (must not exceed the current literal
    /// run), returning them as one contiguous slice.
    fn take_lits(&mut self, n: usize) -> &'a [u32] {
        debug_assert!(n <= self.lits_left);
        let s = &self.words[self.i..self.i + n];
        self.i += n;
        self.lits_left -= n;
        self.advance();
        s
    }
}

/// Combines two WAH word streams bitwise, producing a canonical WAH word
/// stream. Both inputs must decode to the same group count.
///
/// # Panics
///
/// Panics if the streams decode to different group counts.
pub fn wah_binary(a: &[u32], b: &[u32], op: BitOp) -> Vec<u32> {
    let mut ca = WahCursor::new(a);
    let mut cb = WahCursor::new(b);
    let mut enc = WahEncoder::new();
    loop {
        match (ca.head(), cb.head()) {
            (None, None) => break,
            (Some(Head::Fill(x, na)), Some(Head::Fill(y, nb))) => {
                let n = na.min(nb);
                enc.push_fill(op.apply_bit(x, y), n);
                ca.take_fill(n);
                cb.take_fill(n);
            }
            (Some(Head::Fill(x, na)), Some(Head::Lits(nb))) => {
                let n = na.min(nb);
                ca.take_fill(n);
                let gs = cb.take_lits(n);
                match fill_effect(op, x, true) {
                    FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                    FillEffect::Copy => enc.push_groups_verbatim(gs),
                    FillEffect::Complement => enc.push_groups_complement(gs),
                }
            }
            (Some(Head::Lits(na)), Some(Head::Fill(y, nb))) => {
                let n = na.min(nb);
                let gs = ca.take_lits(n);
                cb.take_fill(n);
                match fill_effect(op, y, false) {
                    FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                    FillEffect::Copy => enc.push_groups_verbatim(gs),
                    FillEffect::Complement => enc.push_groups_complement(gs),
                }
            }
            (Some(Head::Lits(na)), Some(Head::Lits(nb))) => {
                let n = na.min(nb);
                let ga = ca.take_lits(n);
                let gb = cb.take_lits(n);
                for (x, y) in ga.iter().zip(gb) {
                    enc.push_group(op.apply_u32(*x, *y) & LITERAL_MASK);
                }
            }
            _ => panic!("WAH streams decode to different group counts"),
        }
    }
    enc.finish()
}

/// Byte-stream wrapper around [`wah_binary`].
///
/// # Panics
///
/// Panics if either stream is not 4-byte aligned or the streams decode to
/// different group counts.
pub fn wah_binary_bytes(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let wa = words_from_bytes(a).unwrap_or_else(|e| panic!("{e}"));
    let wb = words_from_bytes(b).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&wah_binary(&wa, &wb, op))
}

/// Complements a WAH word stream over `len_bits` bits: fills and literal
/// groups flip, and bits past `len_bits` in the final (partial) group are
/// cleared so the result stays canonical.
///
/// # Panics
///
/// Panics if the stream does not decode to exactly the group count
/// `len_bits` requires.
pub fn wah_not(stream: &[u32], len_bits: usize) -> Vec<u32> {
    let total_groups = len_bits.div_ceil(GROUP_BITS);
    let tail_bits = len_bits - (total_groups.saturating_sub(1)) * GROUP_BITS;
    let tail_mask: u32 = if tail_bits == GROUP_BITS {
        LITERAL_MASK
    } else {
        (1u32 << tail_bits) - 1
    };
    let mut enc = WahEncoder::new();
    let mut cursor = WahCursor::new(stream);
    let mut produced = 0usize;
    while let Some(head) = cursor.head() {
        match head {
            Head::Fill(bit, n) => {
                cursor.take_fill(n);
                // Split the final group off a run so its padding can be
                // masked.
                let covers_tail = produced + n == total_groups && tail_mask != LITERAL_MASK;
                let body = if covers_tail { n - 1 } else { n };
                enc.push_fill(!bit, body);
                if covers_tail {
                    let last = if bit { LITERAL_MASK } else { 0 };
                    enc.push_group(!last & tail_mask);
                }
                produced += n;
            }
            Head::Lits(n) => {
                let gs = cursor.take_lits(n);
                let covers_tail = produced + n == total_groups && tail_mask != LITERAL_MASK;
                if covers_tail {
                    enc.push_groups_complement(&gs[..gs.len() - 1]);
                    enc.push_group(!gs[gs.len() - 1] & tail_mask);
                } else {
                    enc.push_groups_complement(gs);
                }
                produced += n;
            }
        }
    }
    assert_eq!(
        produced, total_groups,
        "WAH stream decoded to wrong group count"
    );
    enc.finish()
}

/// Byte-stream wrapper around [`wah_not`].
///
/// # Panics
///
/// Panics if the stream is not 4-byte aligned or decodes to the wrong
/// group count.
pub fn wah_not_bytes(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let words = words_from_bytes(stream).unwrap_or_else(|e| panic!("{e}"));
    words_to_bytes(&wah_not(&words, len_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapCodec, Wah};
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 7, 31, 62, 1000, 10_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Wah.compress(&a);
            let cb = Wah.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = wah_binary_bytes(&ca, &cb, op);
                assert_eq!(
                    Wah.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        let bits = 5_000;
        let a = sample(3, bits);
        let b = sample(4, bits);
        for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
            let direct = wah_binary_bytes(&Wah.compress(&a), &Wah.compress(&b), op);
            let expect = match op {
                BitOp::And => a.and(&b),
                BitOp::Or => a.or(&b),
                BitOp::Xor => a.xor(&b),
                BitOp::AndNot => a.and_not(&b),
            };
            assert_eq!(direct, Wah.compress(&expect), "{op:?}");
        }
    }

    /// Fill-against-literal fast paths (absorb / copy / complement) must
    /// stay canonical: pit a half-fill half-dense bitmap against a fully
    /// dense one so every path is exercised with multi-group slices.
    #[test]
    fn fill_against_literal_runs_stay_canonical() {
        let bits = 31 * 200;
        let mut a = Bitvec::zeros(bits);
        for i in 0..bits / 2 {
            a.set(i, true);
        }
        let b = {
            let positions: Vec<usize> = (0..bits).step_by(3).collect();
            Bitvec::from_positions(bits, &positions)
        };
        for (x, y) in [(&a, &b), (&b, &a)] {
            let cx = Wah.compress(x);
            let cy = Wah.compress(y);
            for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
                let expect = match op {
                    BitOp::And => x.and(y),
                    BitOp::Or => x.or(y),
                    BitOp::Xor => x.xor(y),
                    BitOp::AndNot => x.and_not(y),
                };
                assert_eq!(
                    wah_binary_bytes(&cx, &cy, op),
                    Wah.compress(&expect),
                    "{op:?}"
                );
            }
        }
    }

    #[test]
    fn fills_combine_without_group_loops() {
        let bits = 31 * 1_000_000;
        let zeros = Bitvec::zeros(bits);
        let c = Wah.compress(&zeros);
        let combined = wah_binary_bytes(&c, &c, BitOp::And);
        assert!(combined.len() <= 8);
        assert_eq!(Wah.decompress(&combined, bits), zeros);
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 7, 30, 31, 32, 62, 1000, 4096, 10_001] {
            let a = sample(5, bits);
            let neg = wah_not_bytes(&Wah.compress(&a), bits);
            assert_eq!(Wah.decompress(&neg, bits), a.not(), "bits={bits}");
            assert_eq!(neg, Wah.compress(&a.not()), "canonical bits={bits}");
        }
    }

    #[test]
    fn not_of_all_zero_is_all_one() {
        let bits = 31 * 40 + 5;
        let c = Wah.compress(&Bitvec::zeros(bits));
        assert_eq!(
            Wah.decompress(&wah_not_bytes(&c, bits), bits),
            Bitvec::ones_vec(bits)
        );
    }

    #[test]
    #[should_panic(expected = "different group counts")]
    fn mismatched_streams_panic() {
        let a = Wah.compress(&Bitvec::zeros(31));
        let b = Wah.compress(&Bitvec::zeros(62));
        let _ = wah_binary_bytes(&a, &b, BitOp::And);
    }
}
