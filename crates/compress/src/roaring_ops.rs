//! Compressed-domain bitwise operations on Roaring streams.
//!
//! Roaring's pitch (Chambi, Kaser, Lemire & Godin) is that set operations
//! run directly over the hybrid containers: two sorted `u16` arrays
//! intersect by galloping search, an array probes a bitmap container bit
//! by bit, and two bitmap containers combine in a plain 64-bit word loop.
//! Chunks absent from one side are zero chunks, so AND skips them without
//! touching the other operand's bytes and OR copies containers verbatim.
//! Output is canonical — byte-identical to compressing the bitwise result
//! from scratch: containers appear in ascending key order, empty chunks
//! are omitted, and each result container is re-typed by its cardinality
//! (array at ≤ 4096 bits set, bitmap above).
//!
//! Inputs are assumed structurally valid (see
//! [`crate::BitmapCodec::try_decompress`]); the storage layer validates
//! streams when it reads them for compressed-domain use.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{roaring_binary, BitOp, BitmapCodec, Roaring};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 90_000]);
//! let c = roaring_binary(&Roaring.compress(&a), &Roaring.compress(&b), BitOp::And);
//! assert_eq!(Roaring.decompress(&c, 100_000), a.and(&b));
//! ```

use crate::roaring::{ARRAY_MAX, CHUNK_BITS, CHUNK_BYTES};
use crate::BitOp;

const CHUNK_WORDS: usize = CHUNK_BYTES / 8;

/// One parsed container, borrowing the stream's payload bytes.
#[derive(Clone, Copy)]
enum Container<'a> {
    /// `2 × cardinality` bytes of sorted little-endian `u16` offsets.
    Array(&'a [u8]),
    /// The raw 8 KiB chunk image.
    Bitmap(&'a [u8]),
}

/// Parses a Roaring stream into (key, container) pairs in stream order.
///
/// # Panics
///
/// Panics on malformed streams; callers validate first.
fn parse(stream: &[u8]) -> Vec<(u16, Container<'_>)> {
    let n = u32::from_le_bytes(stream[..4].try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 4usize;
    for _ in 0..n {
        let key = u16::from_le_bytes([stream[pos], stream[pos + 1]]);
        let kind = stream[pos + 2];
        pos += 3;
        let c = match kind {
            0 => {
                let card = u16::from_le_bytes([stream[pos], stream[pos + 1]]) as usize + 1;
                pos += 2;
                let s = &stream[pos..pos + 2 * card];
                pos += 2 * card;
                Container::Array(s)
            }
            1 => {
                let s = &stream[pos..pos + CHUNK_BYTES];
                pos += CHUNK_BYTES;
                Container::Bitmap(s)
            }
            _ => panic!("roaring stream has bad container type byte"),
        };
        out.push((key, c));
    }
    assert_eq!(pos, stream.len(), "roaring stream has trailing bytes");
    out
}

/// Reads the `i`-th offset of an array container payload.
#[inline]
fn at(vals: &[u8], i: usize) -> u16 {
    u16::from_le_bytes([vals[2 * i], vals[2 * i + 1]])
}

#[inline]
fn bitmap_get(chunk: &[u8], v: u16) -> bool {
    chunk[v as usize / 8] & (1 << (v % 8)) != 0
}

/// An 8 KiB chunk materialized as words for bulk ops.
struct Chunk([u64; CHUNK_WORDS]);

impl Chunk {
    fn zero() -> Self {
        Chunk([0u64; CHUNK_WORDS])
    }

    fn from_bytes(s: &[u8]) -> Self {
        let mut w = [0u64; CHUNK_WORDS];
        for (i, c) in s.chunks_exact(8).enumerate() {
            w[i] = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        }
        Chunk(w)
    }

    #[inline]
    fn set(&mut self, v: u16) {
        self.0[v as usize / 64] |= 1 << (v % 64);
    }

    #[inline]
    fn clear(&mut self, v: u16) {
        self.0[v as usize / 64] &= !(1 << (v % 64));
    }

    #[inline]
    fn flip(&mut self, v: u16) {
        self.0[v as usize / 64] ^= 1 << (v % 64);
    }

    fn cardinality(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Builds a canonical Roaring stream: ascending keys, empty containers
/// dropped, container type chosen by cardinality exactly as
/// [`crate::Roaring`]'s compressor does.
struct RoaringBuilder {
    out: Vec<u8>,
    n: u32,
}

impl RoaringBuilder {
    fn new() -> Self {
        RoaringBuilder {
            out: vec![0u8; 4],
            n: 0,
        }
    }

    fn header(&mut self, key: u16, kind: u8) {
        self.out.extend_from_slice(&key.to_le_bytes());
        self.out.push(kind);
        self.n += 1;
    }

    /// Copies a parsed container verbatim; its bytes are already canonical.
    fn push_verbatim(&mut self, key: u16, c: Container<'_>) {
        match c {
            Container::Array(vals) => {
                self.header(key, 0);
                let card = vals.len() / 2;
                self.out
                    .extend_from_slice(&((card - 1) as u16).to_le_bytes());
                self.out.extend_from_slice(vals);
            }
            Container::Bitmap(chunk) => {
                self.header(key, 1);
                self.out.extend_from_slice(chunk);
            }
        }
    }

    /// Emits sorted offsets, converting to a bitmap container past the
    /// array threshold. Skips empty sets.
    fn push_sorted_vals(&mut self, key: u16, vals: &[u16]) {
        if vals.is_empty() {
            return;
        }
        if vals.len() <= ARRAY_MAX {
            self.header(key, 0);
            self.out
                .extend_from_slice(&((vals.len() - 1) as u16).to_le_bytes());
            for v in vals {
                self.out.extend_from_slice(&v.to_le_bytes());
            }
        } else {
            let mut chunk = Chunk::zero();
            for &v in vals {
                chunk.set(v);
            }
            self.header(key, 1);
            for w in &chunk.0 {
                self.out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Emits a materialized chunk, re-typing by cardinality. Skips empty
    /// chunks.
    fn push_chunk(&mut self, key: u16, chunk: &Chunk) {
        let card = chunk.cardinality();
        if card == 0 {
            return;
        }
        if card <= ARRAY_MAX {
            self.header(key, 0);
            self.out
                .extend_from_slice(&((card - 1) as u16).to_le_bytes());
            for (i, &w) in chunk.0.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let v = (i * 64) as u16 + w.trailing_zeros() as u16;
                    self.out.extend_from_slice(&v.to_le_bytes());
                    w &= w - 1;
                }
            }
        } else {
            self.header(key, 1);
            for w in &chunk.0 {
                self.out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.out[..4].copy_from_slice(&self.n.to_le_bytes());
        self.out
    }
}

/// Intersects two sorted array payloads. When the sizes are badly skewed
/// the larger side is traversed by galloping (exponential then binary)
/// search; otherwise a linear merge wins on branch predictability.
fn array_and(a: &[u8], b: &[u8]) -> Vec<u16> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let ns = small.len() / 2;
    let nl = large.len() / 2;
    let mut out = Vec::with_capacity(ns);
    if nl / 32 > ns {
        // Galloping probe of the large side for each small value.
        let mut lo = 0usize;
        for i in 0..ns {
            let v = at(small, i);
            // Exponential search for the first index with value >= v.
            let mut step = 1usize;
            let mut hi = lo;
            while hi < nl && at(large, hi) < v {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            let mut left = lo;
            let mut right = hi.min(nl);
            while left < right {
                let mid = (left + right) / 2;
                if at(large, mid) < v {
                    left = mid + 1;
                } else {
                    right = mid;
                }
            }
            lo = left;
            if lo < nl && at(large, lo) == v {
                out.push(v);
                lo += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < ns && j < nl {
            let (x, y) = (at(small, i), at(large, j));
            match x.cmp(&y) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Linear-merge union / symmetric difference / difference of two sorted
/// array payloads. `a` and `b` keep their operand roles (AndNot is
/// `a \ b`).
fn array_merge(a: &[u8], b: &[u8], op: BitOp) -> Vec<u16> {
    let na = a.len() / 2;
    let nb = b.len() / 2;
    let mut out = Vec::with_capacity(na.max(nb));
    let (mut i, mut j) = (0usize, 0usize);
    while i < na && j < nb {
        let (x, y) = (at(a, i), at(b, j));
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                if matches!(op, BitOp::Or | BitOp::Xor | BitOp::AndNot) {
                    out.push(x);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if matches!(op, BitOp::Or | BitOp::Xor) {
                    out.push(y);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if matches!(op, BitOp::Or) {
                    out.push(x);
                }
                i += 1;
                j += 1;
            }
        }
    }
    if matches!(op, BitOp::Or | BitOp::Xor | BitOp::AndNot) {
        while i < na {
            out.push(at(a, i));
            i += 1;
        }
    }
    if matches!(op, BitOp::Or | BitOp::Xor) {
        while j < nb {
            out.push(at(b, j));
            j += 1;
        }
    }
    out
}

/// Combines two present containers under `op` into the builder.
fn combine(builder: &mut RoaringBuilder, key: u16, a: Container<'_>, b: Container<'_>, op: BitOp) {
    match (a, b) {
        (Container::Array(va), Container::Array(vb)) => {
            let vals = match op {
                BitOp::And => array_and(va, vb),
                _ => array_merge(va, vb, op),
            };
            builder.push_sorted_vals(key, &vals);
        }
        (Container::Array(va), Container::Bitmap(cb)) => match op {
            // array ∧ bitmap: probe each array value against the bitmap.
            BitOp::And | BitOp::AndNot => {
                let want = op == BitOp::And;
                let vals: Vec<u16> = (0..va.len() / 2)
                    .map(|i| at(va, i))
                    .filter(|&v| bitmap_get(cb, v) == want)
                    .collect();
                builder.push_sorted_vals(key, &vals);
            }
            BitOp::Or | BitOp::Xor => {
                let mut chunk = Chunk::from_bytes(cb);
                for i in 0..va.len() / 2 {
                    match op {
                        BitOp::Or => chunk.set(at(va, i)),
                        _ => chunk.flip(at(va, i)),
                    }
                }
                builder.push_chunk(key, &chunk);
            }
        },
        (Container::Bitmap(ca), Container::Array(vb)) => match op {
            BitOp::And => {
                let vals: Vec<u16> = (0..vb.len() / 2)
                    .map(|i| at(vb, i))
                    .filter(|&v| bitmap_get(ca, v))
                    .collect();
                builder.push_sorted_vals(key, &vals);
            }
            BitOp::Or | BitOp::Xor | BitOp::AndNot => {
                let mut chunk = Chunk::from_bytes(ca);
                for i in 0..vb.len() / 2 {
                    match op {
                        BitOp::Or => chunk.set(at(vb, i)),
                        BitOp::Xor => chunk.flip(at(vb, i)),
                        _ => chunk.clear(at(vb, i)),
                    }
                }
                builder.push_chunk(key, &chunk);
            }
        },
        (Container::Bitmap(ca), Container::Bitmap(cb)) => {
            // bitmap ∧ bitmap: straight word loop.
            let wa = Chunk::from_bytes(ca);
            let wb = Chunk::from_bytes(cb);
            let mut out = Chunk::zero();
            for i in 0..CHUNK_WORDS {
                out.0[i] = op.apply_u64(wa.0[i], wb.0[i]);
            }
            builder.push_chunk(key, &out);
        }
    }
}

/// Combines two Roaring streams bitwise, producing a canonical Roaring
/// stream. Both inputs must come from bitmaps of the same bit length (the
/// format does not store the length; the caller tracks it).
pub fn roaring_binary(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let ca = parse(a);
    let cb = parse(b);
    let mut builder = RoaringBuilder::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ca.len() || j < cb.len() {
        let ka = ca.get(i).map(|&(k, _)| k);
        let kb = cb.get(j).map(|&(k, _)| k);
        match (ka, kb) {
            (Some(k), Some(kk)) if k == kk => {
                combine(&mut builder, k, ca[i].1, cb[j].1, op);
                i += 1;
                j += 1;
            }
            // Chunk present only on the left: the right side is zero here.
            (Some(k), other) if other.is_none() || k < other.unwrap() => {
                // op(x, 0): And → 0, Or/Xor/AndNot → x.
                if !matches!(op, BitOp::And) {
                    builder.push_verbatim(k, ca[i].1);
                }
                i += 1;
            }
            // Chunk present only on the right: the left side is zero here.
            (_, Some(k)) => {
                // op(0, y): Or/Xor → y, And/AndNot → 0.
                if matches!(op, BitOp::Or | BitOp::Xor) {
                    builder.push_verbatim(k, cb[j].1);
                }
                j += 1;
            }
            _ => unreachable!("loop condition guarantees one side remains"),
        }
    }
    builder.finish()
}

/// Complements a Roaring stream over `len_bits` bits. Absent chunks
/// become full chunks, present containers flip within the chunk, and the
/// final partial chunk is masked to `len_bits`.
pub fn roaring_not(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let containers = parse(stream);
    let n_chunks = len_bits.div_ceil(CHUNK_BITS);
    let mut builder = RoaringBuilder::new();
    let mut next = 0usize;
    for key in 0..n_chunks {
        let chunk_bits = CHUNK_BITS.min(len_bits - key * CHUNK_BITS);
        let present = containers
            .get(next)
            .filter(|&&(k, _)| k as usize == key)
            .map(|&(_, c)| c);
        let chunk = match present {
            Some(Container::Array(vals)) => {
                next += 1;
                let mut c = ones_chunk(chunk_bits);
                for i in 0..vals.len() / 2 {
                    c.clear(at(vals, i));
                }
                c
            }
            Some(Container::Bitmap(bytes)) => {
                next += 1;
                let mut c = Chunk::from_bytes(bytes);
                let ones = ones_chunk(chunk_bits);
                for i in 0..CHUNK_WORDS {
                    c.0[i] = !c.0[i] & ones.0[i];
                }
                c
            }
            None => ones_chunk(chunk_bits),
        };
        // Sparse complements re-type to arrays inside push_chunk.
        builder.push_chunk(key as u16, &chunk);
    }
    assert_eq!(
        next,
        containers.len(),
        "roaring stream has containers past the declared length"
    );
    builder.finish()
}

/// A chunk with the first `n` bits set.
fn ones_chunk(n: usize) -> Chunk {
    let mut c = Chunk::zero();
    let full = n / 64;
    for w in &mut c.0[..full] {
        *w = u64::MAX;
    }
    if !n.is_multiple_of(64) {
        c.0[full] = (1u64 << (n % 64)) - 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitmapCodec, Roaring};
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    /// Sparse bitmap staying in array containers.
    fn sparse(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        let mut pos = 0usize;
        loop {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pos += (x % 211) as usize + 17;
            if pos >= bits {
                return bv;
            }
            bv.set(pos, true);
        }
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 100, 65_536, 65_537, 200_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Roaring.compress(&a);
            let cb = Roaring.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = roaring_binary(&ca, &cb, op);
                assert_eq!(
                    Roaring.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical_across_container_mixes() {
        let bits = 3 * 65_536 + 12_345;
        // dense (bitmap containers), sparse (array containers), and a
        // mixed bitmap with empty middle chunks.
        let dense = sample(3, bits);
        let sparse_bv = sparse(4, bits);
        let gappy = {
            let mut bv = Bitvec::zeros(bits);
            for i in 0..30_000 {
                bv.set(i * 2, true);
            }
            bv.set(bits - 1, true);
            bv
        };
        let inputs = [&dense, &sparse_bv, &gappy];
        for x in inputs {
            for y in inputs {
                let cx = Roaring.compress(x);
                let cy = Roaring.compress(y);
                for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
                    let expect = match op {
                        BitOp::And => x.and(y),
                        BitOp::Or => x.or(y),
                        BitOp::Xor => x.xor(y),
                        BitOp::AndNot => x.and_not(y),
                    };
                    assert_eq!(
                        roaring_binary(&cx, &cy, op),
                        Roaring.compress(&expect),
                        "{op:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn and_skips_absent_chunks_without_touching_bytes() {
        // A spans chunks 0..16, B only chunk 15: And output is one
        // container and the result is tiny.
        let bits = 16 * 65_536;
        let a = sample(5, bits);
        let b = Bitvec::from_positions(bits, &[15 * 65_536 + 7]);
        let c = roaring_binary(&Roaring.compress(&a), &Roaring.compress(&b), BitOp::And);
        assert!(c.len() <= 4 + 7);
        assert_eq!(Roaring.decompress(&c, bits), a.and(&b));
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 100, 4096, 65_536, 65_537, 200_000] {
            for bv in [sample(6, bits), sparse(7, bits), Bitvec::zeros(bits)] {
                let neg = roaring_not(&Roaring.compress(&bv), bits);
                assert_eq!(Roaring.decompress(&neg, bits), bv.not(), "bits={bits}");
                assert_eq!(neg, Roaring.compress(&bv.not()), "canonical bits={bits}");
            }
        }
    }

    #[test]
    fn array_intersection_gallops_on_skewed_sizes() {
        // One value against a full array container: the galloping path.
        let bits = 65_536;
        let big: Vec<usize> = (0..4096).map(|i| i * 16).collect();
        let a = Bitvec::from_positions(bits, &big);
        let b = Bitvec::from_positions(bits, &[32 * 16]);
        let c = roaring_binary(&Roaring.compress(&a), &Roaring.compress(&b), BitOp::And);
        assert_eq!(Roaring.decompress(&c, bits), a.and(&b));
        assert_eq!(c, Roaring.compress(&a.and(&b)));
    }
}
