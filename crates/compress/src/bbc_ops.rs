//! Compressed-domain bitwise operations on BBC streams.
//!
//! Oracle 8's BBC implementation (and the bitmap-index literature since)
//! performs AND/OR directly on the compressed representation: aligned
//! fill runs combine in O(1) regardless of their length, and only literal
//! regions pay a byte loop. This module implements that for our BBC
//! format — two compressed streams in, one compressed stream out, no full
//! decompression in between.
//!
//! Complement is also closed over the format: flip fill bits and literal
//! bytes atom by atom.
//!
//! ```
//! use bix_bitvec::Bitvec;
//! use bix_compress::{bbc_binary, Bbc, BitOp, BitmapCodec};
//!
//! let a = Bitvec::from_positions(100_000, &[1, 2, 3]);
//! let b = Bitvec::from_positions(100_000, &[3, 4, 50_000]);
//! let ca = Bbc.compress(&a);
//! let cb = Bbc.compress(&b);
//! let c_and = bbc_binary(&ca, &cb, BitOp::And);
//! assert_eq!(Bbc.decompress(&c_and, 100_000), a.and(&b));
//! ```

use crate::bbc::{BbcEncoder, BbcPiece};
use crate::Bbc;

/// The binary bitwise operations supported in the compressed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOp {
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a ^ b`
    Xor,
    /// `a & !b`
    AndNot,
}

impl BitOp {
    #[inline]
    fn apply(self, a: u8, b: u8) -> u8 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
            BitOp::AndNot => a & !b,
        }
    }

    #[inline]
    pub(crate) fn apply_u32(self, a: u32, b: u32) -> u32 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
            BitOp::AndNot => a & !b,
        }
    }

    #[inline]
    pub(crate) fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
            BitOp::AndNot => a & !b,
        }
    }

    #[inline]
    pub(crate) fn apply_bit(self, a: bool, b: bool) -> bool {
        match self {
            BitOp::And => a && b,
            BitOp::Or => a || b,
            BitOp::Xor => a != b,
            BitOp::AndNot => a && !b,
        }
    }
}

/// What a fill region on one side does to literal data on the other, for
/// a given op. Shared by the BBC, WAH, and EWAH kernels.
pub(crate) enum FillEffect {
    /// The fill forces the result to a constant: emit a fill of this bit
    /// and skip the literal data entirely.
    Absorb(bool),
    /// The fill is the identity: the literal data passes through verbatim.
    Copy,
    /// The fill complements: emit the bitwise NOT of the literal data.
    Complement,
}

/// Effect of a fill of value `fill` on the *other* operand's literals.
/// `fill_is_left` distinguishes the two operand orders of the one
/// non-commutative op (AndNot: `a & !b`).
pub(crate) fn fill_effect(op: BitOp, fill: bool, fill_is_left: bool) -> FillEffect {
    match (op, fill) {
        (BitOp::And, false) => FillEffect::Absorb(false),
        (BitOp::And, true) => FillEffect::Copy,
        (BitOp::Or, true) => FillEffect::Absorb(true),
        (BitOp::Or, false) => FillEffect::Copy,
        (BitOp::Xor, false) => FillEffect::Copy,
        (BitOp::Xor, true) => FillEffect::Complement,
        (BitOp::AndNot, fill) => {
            if fill_is_left {
                // fill & !w
                if fill {
                    FillEffect::Complement
                } else {
                    FillEffect::Absorb(false)
                }
            } else if fill {
                // w & !1 == 0
                FillEffect::Absorb(false)
            } else {
                // w & !0 == w
                FillEffect::Copy
            }
        }
    }
}

/// A cursor over the decoded segments of a BBC stream, supporting partial
/// consumption so two streams can be walked in lockstep.
struct SegCursor<'a> {
    atoms: crate::bbc::BbcAtoms<'a>,
    current: Option<BbcPiece<'a>>,
    /// Bytes of `current` already consumed.
    offset: usize,
}

/// One aligned chunk handed to the combiner.
enum Seg<'a> {
    Fill(bool),
    Literal(&'a [u8]),
}

impl<'a> SegCursor<'a> {
    fn new(stream: &'a [u8]) -> Self {
        let mut atoms = Bbc::atoms(stream);
        let current = atoms.next();
        SegCursor {
            atoms,
            current,
            offset: 0,
        }
    }

    /// Decoded bytes remaining in the current piece, or `None` at end.
    fn remaining(&self) -> Option<usize> {
        self.current.as_ref().map(|p| match p {
            BbcPiece::Fill { len, .. } => len - self.offset,
            BbcPiece::Literal(s) => s.len() - self.offset,
        })
    }

    /// Consumes exactly `n` decoded bytes (must not exceed `remaining`).
    fn take(&mut self, n: usize) -> Seg<'a> {
        let piece = self.current.as_ref().expect("take past end of stream");
        let seg = match piece {
            BbcPiece::Fill { bit, .. } => Seg::Fill(*bit),
            BbcPiece::Literal(s) => Seg::Literal(&s[self.offset..self.offset + n]),
        };
        self.offset += n;
        let exhausted = match piece {
            BbcPiece::Fill { len, .. } => self.offset == *len,
            BbcPiece::Literal(s) => self.offset == s.len(),
        };
        if exhausted {
            self.current = self.atoms.next();
            self.offset = 0;
        }
        seg
    }
}

/// Combines two BBC streams bitwise, producing a BBC stream. Both inputs
/// must decode to the same byte length.
///
/// # Panics
///
/// Panics if the streams decode to different lengths.
pub fn bbc_binary(a: &[u8], b: &[u8], op: BitOp) -> Vec<u8> {
    let mut ca = SegCursor::new(a);
    let mut cb = SegCursor::new(b);
    let mut enc = BbcEncoder::new();
    let mut scratch = Vec::new();

    loop {
        match (ca.remaining(), cb.remaining()) {
            (None, None) => break,
            (Some(ra), Some(rb)) => {
                let n = ra.min(rb);
                match (ca.take(n), cb.take(n)) {
                    (Seg::Fill(x), Seg::Fill(y)) => enc.push_fill(op.apply_bit(x, y), n),
                    (Seg::Fill(x), Seg::Literal(s)) => match fill_effect(op, x, true) {
                        FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                        FillEffect::Copy => enc.push_literals(s),
                        FillEffect::Complement => {
                            scratch.clear();
                            scratch.extend(s.iter().map(|&byte| !byte));
                            enc.push_literals(&scratch);
                        }
                    },
                    (Seg::Literal(s), Seg::Fill(y)) => match fill_effect(op, y, false) {
                        FillEffect::Absorb(bit) => enc.push_fill(bit, n),
                        FillEffect::Copy => enc.push_literals(s),
                        FillEffect::Complement => {
                            scratch.clear();
                            scratch.extend(s.iter().map(|&byte| !byte));
                            enc.push_literals(&scratch);
                        }
                    },
                    (Seg::Literal(sa), Seg::Literal(sb)) => {
                        scratch.clear();
                        scratch.extend(sa.iter().zip(sb).map(|(&x, &y)| op.apply(x, y)));
                        enc.push_literals(&scratch);
                    }
                }
            }
            _ => panic!("BBC streams decode to different lengths"),
        }
    }
    enc.finish()
}

/// Complements a BBC stream over `len_bits` bits: fill bits and literal
/// bytes flip atom by atom; bits past `len_bits` in the final byte are
/// cleared so the result stays a canonical bitmap image.
pub fn bbc_not(stream: &[u8], len_bits: usize) -> Vec<u8> {
    let mut enc = BbcEncoder::new();
    let n_bytes = len_bits.div_ceil(8);
    let mut produced = 0usize;
    let tail_bits = len_bits % 8;
    let mut scratch = Vec::new();
    for piece in Bbc::atoms(stream) {
        match piece {
            BbcPiece::Fill { bit, len } => {
                // If the final (partial) byte falls inside this run, split
                // it off so its stray bits can be masked.
                let covers_tail = tail_bits != 0 && produced + len == n_bytes;
                let body = if covers_tail { len - 1 } else { len };
                enc.push_fill(!bit, body);
                if covers_tail {
                    let last = if bit { 0xFFu8 } else { 0x00 };
                    enc.push_literals(&[!last & ((1u8 << tail_bits) - 1)]);
                }
                produced += len;
            }
            BbcPiece::Literal(s) => {
                scratch.clear();
                scratch.extend(s.iter().map(|&b| !b));
                produced += s.len();
                if tail_bits != 0 && produced == n_bytes {
                    let last = scratch.last_mut().expect("non-empty literal");
                    *last &= (1u8 << tail_bits) - 1;
                }
                enc.push_literals(&scratch);
            }
        }
    }
    assert_eq!(produced, n_bytes, "BBC stream shorter than len_bits");
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapCodec;
    use bix_bitvec::Bitvec;

    fn sample(seed: u64, bits: usize) -> Bitvec {
        let mut bv = Bitvec::zeros(bits);
        let mut x = seed | 1;
        // Mix of long runs and scattered bits.
        let mut pos = 0usize;
        while pos < bits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = (x % 97) as usize + 1;
            if x.is_multiple_of(3) {
                for i in 0..run.min(bits - pos) {
                    bv.set(pos + i, true);
                }
            }
            pos += run;
        }
        bv
    }

    #[test]
    fn binary_ops_match_uncompressed_reference() {
        for bits in [1usize, 7, 64, 1000, 10_000] {
            let a = sample(1, bits);
            let b = sample(2, bits);
            let ca = Bbc.compress(&a);
            let cb = Bbc.compress(&b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = bbc_binary(&ca, &cb, op);
                assert_eq!(
                    Bbc.decompress(&combined, bits),
                    expect,
                    "{op:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        // The compressed-domain result must equal compress(decompress op).
        let bits = 5_000;
        let a = sample(3, bits);
        let b = sample(4, bits);
        let ca = Bbc.compress(&a);
        let cb = Bbc.compress(&b);
        let direct = bbc_binary(&ca, &cb, BitOp::Or);
        let reference = Bbc.compress(&a.or(&b));
        assert_eq!(direct, reference);
    }

    #[test]
    fn fills_combine_without_byte_loops() {
        // Two all-zero megabyte bitmaps AND to a tiny stream.
        let bits = 8 * (1 << 20);
        let zeros = Bitvec::zeros(bits);
        let c = Bbc.compress(&zeros);
        let combined = bbc_binary(&c, &c, BitOp::And);
        assert!(combined.len() <= 8);
        assert_eq!(Bbc.decompress(&combined, bits), zeros);
    }

    #[test]
    fn not_matches_uncompressed_reference() {
        for bits in [1usize, 7, 8, 63, 64, 1000, 4096, 10_001] {
            let a = sample(5, bits);
            let ca = Bbc.compress(&a);
            let neg = bbc_not(&ca, bits);
            assert_eq!(Bbc.decompress(&neg, bits), a.not(), "bits={bits}");
        }
    }

    #[test]
    fn not_of_all_zero_is_all_one() {
        let bits = 100;
        let c = Bbc.compress(&Bitvec::zeros(bits));
        assert_eq!(
            Bbc.decompress(&bbc_not(&c, bits), bits),
            Bitvec::ones_vec(bits)
        );
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn mismatched_streams_panic() {
        let a = Bbc.compress(&Bitvec::zeros(100));
        let b = Bbc.compress(&Bitvec::zeros(200));
        let _ = bbc_binary(&a, &b, BitOp::And);
    }

    #[test]
    fn encoder_matches_block_compressor() {
        // Pushing the decoded runs through the streaming encoder must
        // reproduce compress_bytes exactly.
        let bits = 20_000;
        let a = sample(6, bits);
        let bytes = a.to_bytes();
        let mut enc = BbcEncoder::new();
        enc.push_literals(&bytes);
        assert_eq!(enc.finish(), Bbc::compress_bytes(&bytes));
    }
}
