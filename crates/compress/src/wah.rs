//! Word-Aligned Hybrid (WAH) bitmap compression.
//!
//! The classic 32-bit WAH scheme (Wu, Otoo & Shoshani): the bitmap is cut
//! into 31-bit groups; each compressed word is either
//!
//! * a **literal word** — MSB 0, low 31 bits verbatim, or
//! * a **fill word** — MSB 1, bit 30 the fill bit, low 30 bits counting how
//!   many consecutive 31-bit groups share that fill.
//!
//! WAH postdates the paper but became the dominant bitmap code (FastBit);
//! it is included as an ablation baseline against BBC: word alignment
//! trades ~1 bit per 32 of extra space for faster decode.

use crate::DecodeError;
use bix_bitvec::Bitvec;

pub(crate) const GROUP_BITS: usize = 31;
pub(crate) const FILL_FLAG: u32 = 1 << 31;
pub(crate) const FILL_BIT: u32 = 1 << 30;
pub(crate) const COUNT_MASK: u32 = FILL_BIT - 1;
pub(crate) const LITERAL_MASK: u32 = (1 << GROUP_BITS) - 1;

/// The WAH codec. Stateless; see the module docs for the format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Wah;

/// Extracts the `i`-th 31-bit group from a bitmap, zero-padded at the tail.
#[inline]
fn group(bv: &Bitvec, i: usize) -> u32 {
    let start = i * GROUP_BITS;
    let n = GROUP_BITS.min(bv.len().saturating_sub(start));
    bv.get_bits(start, n) as u32
}

impl Wah {
    /// Compresses to a sequence of 32-bit words, serialized little-endian.
    pub fn compress_words(bv: &Bitvec) -> Vec<u32> {
        let n_groups = bv.len().div_ceil(GROUP_BITS);
        let mut out: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < n_groups {
            let g = group(bv, i);
            if g == 0 || g == LITERAL_MASK {
                let fill = g == LITERAL_MASK;
                let mut count = 1usize;
                while i + count < n_groups && group(bv, i + count) == g {
                    count += 1;
                }
                let mut remaining = count;
                while remaining > 0 {
                    let chunk = remaining.min(COUNT_MASK as usize);
                    out.push(FILL_FLAG | (u32::from(fill) * FILL_BIT) | chunk as u32);
                    remaining -= chunk;
                }
                i += count;
            } else {
                out.push(g);
                i += 1;
            }
        }
        out
    }

    /// Decompresses a word sequence back into a bitmap of `len_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed; see
    /// [`try_decompress_words`](Self::try_decompress_words).
    pub fn decompress_words(words: &[u32], len_bits: usize) -> Bitvec {
        Wah::try_decompress_words(words, len_bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Decompresses a word sequence, rejecting malformed streams instead of
    /// panicking: zero-count fill words, runs overstepping `len_bits`, a
    /// partial tail group carrying bits past the declared length, and
    /// streams decoding to the wrong group count are all [`DecodeError`]s.
    pub fn try_decompress_words(words: &[u32], len_bits: usize) -> Result<Bitvec, DecodeError> {
        let expected_groups = len_bits.div_ceil(GROUP_BITS);
        let mut bv = Bitvec::zeros(len_bits);
        let mut groups = 0usize; // groups decoded so far
        for (w_idx, &w) in words.iter().enumerate() {
            if w & FILL_FLAG != 0 {
                let fill = w & FILL_BIT != 0;
                let count = (w & COUNT_MASK) as usize;
                if count == 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "wah",
                        offset: w_idx * 4,
                        what: "zero-count fill word",
                    });
                }
                if count > expected_groups - groups {
                    return Err(DecodeError::Overrun {
                        codec: "wah",
                        declared_bits: len_bits,
                    });
                }
                if fill {
                    // A run of ones may not cover a partial tail group:
                    // the encoder zero-pads the tail, so such a group is
                    // never all-ones in a canonical stream.
                    if (groups + count) * GROUP_BITS > len_bits {
                        return Err(DecodeError::BadAtom {
                            codec: "wah",
                            offset: w_idx * 4,
                            what: "set bits past the declared length",
                        });
                    }
                    let mut p = groups * GROUP_BITS;
                    let end = p + count * GROUP_BITS;
                    while p < end {
                        let chunk = (end - p).min(64);
                        bv.set_bits(p, chunk, u64::MAX);
                        p += chunk;
                    }
                }
                groups += count;
            } else {
                if groups == expected_groups {
                    return Err(DecodeError::Overrun {
                        codec: "wah",
                        declared_bits: len_bits,
                    });
                }
                let pos = groups * GROUP_BITS;
                let n = GROUP_BITS.min(len_bits - pos);
                if n < GROUP_BITS && w >> n != 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "wah",
                        offset: w_idx * 4,
                        what: "set bits past the declared length",
                    });
                }
                if n > 0 {
                    bv.set_bits(pos, n, u64::from(w & LITERAL_MASK));
                }
                groups += 1;
            }
        }
        if groups != expected_groups {
            return Err(DecodeError::WrongLength {
                codec: "wah",
                decoded: groups,
                declared: expected_groups,
            });
        }
        Ok(bv)
    }
}

impl super::codec::BitmapCodec for Wah {
    fn name(&self) -> &'static str {
        "wah"
    }

    fn kind(&self) -> crate::CodecKind {
        crate::CodecKind::Wah
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        let words = Wah::compress_words(bv);
        let mut out = Vec::with_capacity(words.len() * 4);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, crate::DecodeError> {
        let words = words_from_bytes(bytes)?;
        Wah::try_decompress_words(&words, len_bits)
    }

    fn validate(&self, bytes: &[u8], len_bits: usize) -> Result<(), crate::DecodeError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(DecodeError::Misaligned {
                codec: "wah",
                align: 4,
                len: bytes.len(),
            });
        }
        let expected_groups = len_bits.div_ceil(GROUP_BITS);
        let mut groups = 0usize;
        for (w_idx, c) in bytes.chunks_exact(4).enumerate() {
            let w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            if w & FILL_FLAG != 0 {
                let count = (w & COUNT_MASK) as usize;
                if count == 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "wah",
                        offset: w_idx * 4,
                        what: "zero-count fill word",
                    });
                }
                if count > expected_groups - groups {
                    return Err(DecodeError::Overrun {
                        codec: "wah",
                        declared_bits: len_bits,
                    });
                }
                if w & FILL_BIT != 0 && (groups + count) * GROUP_BITS > len_bits {
                    return Err(DecodeError::BadAtom {
                        codec: "wah",
                        offset: w_idx * 4,
                        what: "set bits past the declared length",
                    });
                }
                groups += count;
            } else {
                if groups == expected_groups {
                    return Err(DecodeError::Overrun {
                        codec: "wah",
                        declared_bits: len_bits,
                    });
                }
                let n = GROUP_BITS.min(len_bits - groups * GROUP_BITS);
                if n < GROUP_BITS && w >> n != 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "wah",
                        offset: w_idx * 4,
                        what: "set bits past the declared length",
                    });
                }
                groups += 1;
            }
        }
        if groups != expected_groups {
            return Err(DecodeError::WrongLength {
                codec: "wah",
                decoded: groups,
                declared: expected_groups,
            });
        }
        Ok(())
    }
}

/// Reinterprets a byte stream as little-endian 32-bit WAH words.
pub(crate) fn words_from_bytes(bytes: &[u8]) -> Result<Vec<u32>, DecodeError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeError::Misaligned {
            codec: "wah",
            align: 4,
            len: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Serializes WAH words back to little-endian bytes.
pub(crate) fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapCodec;

    fn round_trip(bv: &Bitvec) {
        let codec = Wah;
        let c = codec.compress(bv);
        assert_eq!(&codec.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn empty_bitmap() {
        round_trip(&Bitvec::zeros(0));
    }

    #[test]
    fn all_zero_is_one_fill_word() {
        let bv = Bitvec::zeros(31 * 1000);
        let words = Wah::compress_words(&bv);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0], FILL_FLAG | 1000);
        round_trip(&bv);
    }

    #[test]
    fn all_one_is_one_fill_word() {
        let bv = Bitvec::ones_vec(31 * 10);
        let words = Wah::compress_words(&bv);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0], FILL_FLAG | FILL_BIT | 10);
        round_trip(&bv);
    }

    #[test]
    fn tail_groups_are_zero_padded() {
        // Length not a multiple of 31.
        let bv = Bitvec::from_positions(100, &[0, 50, 99]);
        round_trip(&bv);
    }

    #[test]
    fn mixed_fills_and_literals() {
        let mut positions = Vec::new();
        positions.extend(0..31); // one full group
        positions.push(31 * 5 + 3); // sparse literal later
        positions.extend(31 * 10..31 * 12); // two full groups
        let bv = Bitvec::from_positions(31 * 20, &positions);
        round_trip(&bv);
    }

    #[test]
    fn sparse_bitmap_compresses_well() {
        let bv = Bitvec::from_positions(1_000_000, &[12, 500_000, 999_999]);
        let c = Wah.compress(&bv);
        assert!(c.len() < 64, "sparse WAH stream was {} bytes", c.len());
        round_trip(&bv);
    }

    #[test]
    fn dense_irregular_bitmap_costs_about_one_word_per_group() {
        let positions: Vec<usize> = (0..10_000).filter(|i| i % 2 == 0).collect();
        let bv = Bitvec::from_positions(10_000, &positions);
        let words = Wah::compress_words(&bv);
        assert_eq!(words.len(), 10_000usize.div_ceil(31));
        round_trip(&bv);
    }
}
