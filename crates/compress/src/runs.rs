//! Byte-run scanning shared by the codecs.

/// A maximal run of bytes classified as fill or literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteRun<'a> {
    /// `len` consecutive bytes, all `0x00` (`bit = false`) or all `0xFF`
    /// (`bit = true`).
    Fill {
        /// The fill bit.
        bit: bool,
        /// Run length in bytes.
        len: usize,
    },
    /// A maximal stretch of bytes that are neither `0x00` nor `0xFF`.
    Literal(&'a [u8]),
}

impl ByteRun<'_> {
    /// Decoded length of the run in bytes.
    pub fn len(&self) -> usize {
        match self {
            ByteRun::Fill { len, .. } => *len,
            ByteRun::Literal(s) => s.len(),
        }
    }

    /// True for a zero-length run (never produced by [`ByteRunIter`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits a byte slice into maximal [`ByteRun`]s.
///
/// Fill runs are maximal stretches of identical `0x00` or `0xFF` bytes
/// (even a single such byte is reported as a fill run of length 1 — the
/// *encoder* decides whether a short run is worth a gap atom).
pub struct ByteRunIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteRunIter<'a> {
    /// Creates a run iterator over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteRunIter { bytes, pos: 0 }
    }
}

impl<'a> Iterator for ByteRunIter<'a> {
    type Item = ByteRun<'a>;

    fn next(&mut self) -> Option<ByteRun<'a>> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let start = self.pos;
        let first = self.bytes[start];
        if first == 0x00 || first == 0xFF {
            let mut end = start + 1;
            while end < self.bytes.len() && self.bytes[end] == first {
                end += 1;
            }
            self.pos = end;
            Some(ByteRun::Fill {
                bit: first == 0xFF,
                len: end - start,
            })
        } else {
            let mut end = start + 1;
            while end < self.bytes.len() && self.bytes[end] != 0x00 && self.bytes[end] != 0xFF {
                end += 1;
            }
            self.pos = end;
            Some(ByteRun::Literal(&self.bytes[start..end]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_fill_and_literal_runs() {
        let bytes = [0x00, 0x00, 0xAB, 0xCD, 0xFF, 0xFF, 0xFF, 0x01];
        let runs: Vec<ByteRun> = ByteRunIter::new(&bytes).collect();
        assert_eq!(
            runs,
            vec![
                ByteRun::Fill { bit: false, len: 2 },
                ByteRun::Literal(&[0xAB, 0xCD]),
                ByteRun::Fill { bit: true, len: 3 },
                ByteRun::Literal(&[0x01]),
            ]
        );
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(ByteRunIter::new(&[]).count(), 0);
    }

    #[test]
    fn single_fill_byte_is_a_run_of_one() {
        let runs: Vec<ByteRun> = ByteRunIter::new(&[0xFF]).collect();
        assert_eq!(runs, vec![ByteRun::Fill { bit: true, len: 1 }]);
    }

    #[test]
    fn runs_cover_input_exactly() {
        let bytes: Vec<u8> = (0..=255u8).chain(std::iter::repeat_n(0, 100)).collect();
        let total: usize = ByteRunIter::new(&bytes).map(|r| r.len()).sum();
        assert_eq!(total, bytes.len());
    }

    #[test]
    fn adjacent_opposite_fills_are_separate_runs() {
        let bytes = [0x00, 0xFF];
        let runs: Vec<ByteRun> = ByteRunIter::new(&bytes).collect();
        assert_eq!(runs.len(), 2);
    }
}
