//! EWAH — Enhanced Word-Aligned Hybrid compression (64-bit).
//!
//! The scheme used by Git's bitmap indexes and the `ewah`/`javaewah`
//! libraries, successor to WAH: the stream alternates *marker words* and
//! literal words. Each 64-bit marker encodes
//!
//! ```text
//! bit  0      fill bit of the run that follows
//! bits 1..33  number of fill words (64-bit words of all-0 or all-1)
//! bits 33..64 number of verbatim literal words following the marker
//! ```
//!
//! Compared to WAH, EWAH never splits a word into 31-bit groups (decode
//! is pure `memcpy`-style word moves) and spends one marker per
//! fill+literal pair instead of one header bit per word. Included as a
//! second ablation codec: it trades slightly worse compression on
//! pathological alternating data for the fastest decode of the three.

use crate::DecodeError;
use bix_bitvec::Bitvec;

const FILL_COUNT_BITS: u64 = 32;
pub(crate) const FILL_COUNT_MAX: u64 = (1 << FILL_COUNT_BITS) - 1;
const LITERAL_COUNT_BITS: u64 = 31;
pub(crate) const LITERAL_COUNT_MAX: u64 = (1 << LITERAL_COUNT_BITS) - 1;

/// The EWAH codec. Stateless; see the module docs for the format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ewah;

pub(crate) fn marker(fill: bool, fill_words: u64, literal_words: u64) -> u64 {
    debug_assert!(fill_words <= FILL_COUNT_MAX);
    debug_assert!(literal_words <= LITERAL_COUNT_MAX);
    u64::from(fill) | (fill_words << 1) | (literal_words << (1 + FILL_COUNT_BITS))
}

pub(crate) fn unpack(m: u64) -> (bool, u64, u64) {
    (
        m & 1 == 1,
        (m >> 1) & FILL_COUNT_MAX,
        m >> (1 + FILL_COUNT_BITS),
    )
}

impl Ewah {
    /// Compresses to a sequence of 64-bit words.
    pub fn compress_words(bv: &Bitvec) -> Vec<u64> {
        let words = bv.words();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < words.len() {
            // Count the fill run (identical all-0/all-1 words).
            let first = words[i];
            let (fill, mut fills) = if first == 0 || first == u64::MAX {
                let bit = first == u64::MAX;
                let mut n = 1usize;
                while i + n < words.len() && words[i + n] == first {
                    n += 1;
                }
                i += n;
                (bit, n as u64)
            } else {
                (false, 0)
            };
            // Count the literal run (words that are neither fill).
            let lit_start = i;
            while i < words.len() && words[i] != 0 && words[i] != u64::MAX {
                i += 1;
            }
            let mut lits = (i - lit_start) as u64;

            // Emit markers, splitting oversized runs.
            let mut lit_cursor = lit_start;
            loop {
                let f = fills.min(FILL_COUNT_MAX);
                let l = lits.min(LITERAL_COUNT_MAX);
                out.push(marker(fill, f, l));
                out.extend_from_slice(&words[lit_cursor..lit_cursor + l as usize]);
                fills -= f;
                lits -= l;
                lit_cursor += l as usize;
                if fills == 0 && lits == 0 {
                    break;
                }
            }
        }
        out
    }

    /// Decompresses a word sequence back into a bitmap of `len_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed; see
    /// [`try_decompress_words`](Self::try_decompress_words).
    pub fn decompress_words(stream: &[u64], len_bits: usize) -> Bitvec {
        Ewah::try_decompress_words(stream, len_bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Decompresses a word sequence, rejecting malformed streams instead of
    /// panicking: empty markers (no fills, no literals — never emitted by
    /// the compressor), truncated literal runs, runs overstepping
    /// `len_bits`, and stray bits past the declared length are all
    /// [`DecodeError`]s. The output buffer never grows past what `len_bits`
    /// requires, so a hostile fill count cannot force a huge allocation.
    pub fn try_decompress_words(stream: &[u64], len_bits: usize) -> Result<Bitvec, DecodeError> {
        let total_words = len_bits.div_ceil(64);
        // One zeroed allocation up front, then a cursor: a zero fill is a
        // pure cursor skip, a one fill is a slice fill, and a literal run
        // is one bulk copy. Sparse streams — mostly zero fills with a
        // literal word here and there — decode without per-word pushes or
        // growth checks, and the word buffer becomes the bitmap directly
        // instead of round-tripping through a byte stream.
        let mut words = vec![0u64; total_words];
        let mut filled = 0usize;
        let mut i = 0usize;
        while i < stream.len() {
            let (fill, fills, lits) = unpack(stream[i]);
            if fills == 0 && lits == 0 {
                return Err(DecodeError::BadAtom {
                    codec: "ewah",
                    offset: i * 8,
                    what: "empty marker word",
                });
            }
            i += 1;
            let (fills, lits) = (fills as usize, lits as usize);
            if fills > total_words - filled {
                return Err(DecodeError::Overrun {
                    codec: "ewah",
                    declared_bits: len_bits,
                });
            }
            if fill {
                words[filled..filled + fills].fill(u64::MAX);
            }
            filled += fills;
            if lits > stream.len() - i {
                return Err(DecodeError::Truncated {
                    codec: "ewah",
                    offset: stream.len() * 8,
                });
            }
            if lits > total_words - filled {
                return Err(DecodeError::Overrun {
                    codec: "ewah",
                    declared_bits: len_bits,
                });
            }
            words[filled..filled + lits].copy_from_slice(&stream[i..i + lits]);
            filled += lits;
            i += lits;
        }
        if filled != total_words {
            return Err(DecodeError::WrongLength {
                codec: "ewah",
                decoded: filled,
                declared: total_words,
            });
        }
        // Bits past len_bits in the final word must be zero (the encoder
        // zero-pads the tail), otherwise the stream is non-canonical.
        let tail_bits = len_bits % 64;
        if tail_bits != 0 {
            if let Some(&last) = words.last() {
                if last >> tail_bits != 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "ewah",
                        offset: (stream.len().saturating_sub(1)) * 8,
                        what: "set bits past the declared length",
                    });
                }
            }
        }
        Ok(Bitvec::from_words(len_bits, words))
    }
}

impl super::codec::BitmapCodec for Ewah {
    fn name(&self) -> &'static str {
        "ewah"
    }

    fn kind(&self) -> crate::CodecKind {
        crate::CodecKind::Ewah
    }

    fn compress(&self, bv: &Bitvec) -> Vec<u8> {
        let words = Ewah::compress_words(bv);
        let mut out = Vec::with_capacity(words.len() * 8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn try_decompress(&self, bytes: &[u8], len_bits: usize) -> Result<Bitvec, crate::DecodeError> {
        let words = words_from_bytes(bytes)?;
        Ewah::try_decompress_words(&words, len_bits)
    }

    fn validate(&self, bytes: &[u8], len_bits: usize) -> Result<(), crate::DecodeError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(DecodeError::Misaligned {
                codec: "ewah",
                align: 8,
                len: bytes.len(),
            });
        }
        let stream: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        let total_words = len_bits.div_ceil(64);
        let tail_bits = len_bits % 64;
        let mut decoded = 0usize;
        let mut i = 0usize;
        while i < stream.len() {
            let (fill, fills, lits) = unpack(stream[i]);
            if fills == 0 && lits == 0 {
                return Err(DecodeError::BadAtom {
                    codec: "ewah",
                    offset: i * 8,
                    what: "empty marker word",
                });
            }
            i += 1;
            if fills as usize > total_words - decoded {
                return Err(DecodeError::Overrun {
                    codec: "ewah",
                    declared_bits: len_bits,
                });
            }
            decoded += fills as usize;
            if fill && tail_bits != 0 && decoded == total_words {
                return Err(DecodeError::BadAtom {
                    codec: "ewah",
                    offset: (i - 1) * 8,
                    what: "set bits past the declared length",
                });
            }
            if lits as usize > stream.len() - i {
                return Err(DecodeError::Truncated {
                    codec: "ewah",
                    offset: stream.len() * 8,
                });
            }
            if lits as usize > total_words - decoded {
                return Err(DecodeError::Overrun {
                    codec: "ewah",
                    declared_bits: len_bits,
                });
            }
            decoded += lits as usize;
            if lits > 0 && tail_bits != 0 && decoded == total_words {
                let last = stream[i + lits as usize - 1];
                if last >> tail_bits != 0 {
                    return Err(DecodeError::BadAtom {
                        codec: "ewah",
                        offset: (i + lits as usize - 1) * 8,
                        what: "set bits past the declared length",
                    });
                }
            }
            i += lits as usize;
        }
        if decoded != total_words {
            return Err(DecodeError::WrongLength {
                codec: "ewah",
                decoded,
                declared: total_words,
            });
        }
        Ok(())
    }
}

/// Reinterprets a byte stream as little-endian 64-bit EWAH words.
pub(crate) fn words_from_bytes(bytes: &[u8]) -> Result<Vec<u64>, DecodeError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(DecodeError::Misaligned {
            codec: "ewah",
            align: 8,
            len: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Serializes EWAH words back to little-endian bytes.
pub(crate) fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapCodec;

    fn round_trip(bv: &Bitvec) {
        let c = Ewah.compress(bv);
        assert_eq!(&Ewah.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn empty_and_tiny_bitmaps() {
        round_trip(&Bitvec::zeros(0));
        round_trip(&Bitvec::zeros(1));
        round_trip(&Bitvec::ones_vec(63));
        round_trip(&Bitvec::ones_vec(64));
        round_trip(&Bitvec::from_positions(65, &[64]));
    }

    #[test]
    fn all_zero_is_one_marker() {
        let bv = Bitvec::zeros(64 * 1000);
        let words = Ewah::compress_words(&bv);
        assert_eq!(words.len(), 1);
        assert_eq!(unpack(words[0]), (false, 1000, 0));
        round_trip(&bv);
    }

    #[test]
    fn all_one_is_one_marker() {
        let bv = Bitvec::ones_vec(64 * 10);
        let words = Ewah::compress_words(&bv);
        assert_eq!(words.len(), 1);
        assert_eq!(unpack(words[0]), (true, 10, 0));
        round_trip(&bv);
    }

    #[test]
    fn dense_irregular_costs_one_marker_plus_literals() {
        let positions: Vec<usize> = (0..64 * 100).step_by(2).collect();
        let bv = Bitvec::from_positions(64 * 100, &positions);
        let words = Ewah::compress_words(&bv);
        assert_eq!(words.len(), 101, "1 marker + 100 literal words");
        round_trip(&bv);
    }

    #[test]
    fn mixed_runs_round_trip() {
        let mut builder = bix_bitvec::BitvecBuilder::new();
        for k in 0..30 {
            builder.push_run(false, 64 * (k % 5) + 3);
            builder.push_run(true, 64 * (k % 3) + 17);
            builder.push(k % 2 == 0);
        }
        round_trip(&builder.finish());
    }

    #[test]
    fn sparse_bitmap_compresses_well() {
        let bv = Bitvec::from_positions(1 << 20, &[5, 1 << 19, (1 << 20) - 1]);
        let c = Ewah.compress(&bv);
        assert!(c.len() < 80, "sparse EWAH stream was {} bytes", c.len());
        round_trip(&bv);
    }

    #[test]
    fn marker_pack_unpack_inverse() {
        for (fill, fills, lits) in [
            (false, 0, 0),
            (true, 1, 0),
            (false, 12345, 678),
            (true, FILL_COUNT_MAX, LITERAL_COUNT_MAX),
        ] {
            assert_eq!(unpack(marker(fill, fills, lits)), (fill, fills, lits));
        }
    }
}
