//! Property tests: every codec round-trips every bitmap exactly.

use bix_bitvec::Bitvec;
use bix_compress::{
    bbc_binary, bbc_not, Bbc, BitOp, BitmapCodec, CodecKind, CompressedBitmap, Raw, Wah,
};
use proptest::prelude::*;

/// Bitmaps with realistic index structure: runs plus noise.
fn arb_bitmap() -> impl Strategy<Value = Bitvec> {
    let dense = prop::collection::vec(any::<bool>(), 0..2000).prop_map(|b| Bitvec::from_bools(&b));
    let runny = (
        1usize..2000,
        prop::collection::vec((any::<bool>(), 1usize..200), 0..30),
    )
        .prop_map(|(pad, runs)| {
            let mut builder = bix_bitvec::BitvecBuilder::new();
            for (bit, n) in runs {
                builder.push_run(bit, n);
            }
            builder.push_run(false, pad);
            builder.finish()
        });
    let sparse =
        (100usize..5000, prop::collection::vec(0usize..5000, 0..10)).prop_map(|(len, mut pos)| {
            pos.retain(|&p| p < len);
            Bitvec::from_positions(len, &pos)
        });
    prop_oneof![dense, runny, sparse]
}

proptest! {
    #[test]
    fn bbc_round_trips(bv in arb_bitmap()) {
        let c = Bbc.compress(&bv);
        prop_assert_eq!(Bbc.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn wah_round_trips(bv in arb_bitmap()) {
        let c = Wah.compress(&bv);
        prop_assert_eq!(Wah.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn raw_round_trips(bv in arb_bitmap()) {
        let c = Raw.compress(&bv);
        prop_assert_eq!(Raw.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn ewah_round_trips(bv in arb_bitmap()) {
        use bix_compress::Ewah;
        let c = Ewah.compress(&bv);
        prop_assert_eq!(Ewah.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn roaring_round_trips(bv in arb_bitmap()) {
        use bix_compress::Roaring;
        let c = Roaring.compress(&bv);
        prop_assert_eq!(Roaring.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn compressed_bitmap_sizes_are_consistent(bv in arb_bitmap()) {
        for kind in [CodecKind::Raw, CodecKind::Bbc, CodecKind::Wah, CodecKind::Ewah, CodecKind::Roaring] {
            let cb = CompressedBitmap::encode(kind, &bv);
            prop_assert_eq!(cb.raw_size(), bv.byte_size());
            prop_assert_eq!(cb.decode().len(), bv.len());
        }
    }

    /// BBC never exceeds raw size by more than the worst-case header
    /// overhead (one header + varint per 14-byte literal tail ≈ 15%).
    #[test]
    fn bbc_overhead_is_bounded(bv in arb_bitmap()) {
        let c = Bbc.compress(&bv);
        prop_assert!(c.len() <= bv.byte_size() + bv.byte_size() / 6 + 4);
    }

    /// Compressed-domain BBC operations equal decompress-then-operate,
    /// and their output streams are canonical (identical to compressing
    /// the operated bitmap).
    #[test]
    fn bbc_compressed_domain_ops_are_exact((a, b) in (arb_bitmap(), arb_bitmap())) {
        let len = a.len().min(b.len());
        prop_assume!(len > 0);
        let a = Bitvec::from_bools(&(0..len).map(|i| a.get(i)).collect::<Vec<_>>());
        let b = Bitvec::from_bools(&(0..len).map(|i| b.get(i)).collect::<Vec<_>>());
        let ca = Bbc.compress(&a);
        let cb = Bbc.compress(&b);
        for (op, expect) in [
            (BitOp::And, a.and(&b)),
            (BitOp::Or, a.or(&b)),
            (BitOp::Xor, a.xor(&b)),
            (BitOp::AndNot, a.and_not(&b)),
        ] {
            let combined = bbc_binary(&ca, &cb, op);
            prop_assert_eq!(Bbc.decompress(&combined, len), expect.clone(), "{:?}", op);
            prop_assert_eq!(combined, Bbc.compress(&expect), "canonical {:?}", op);
        }
        let negated = bbc_not(&ca, len);
        prop_assert_eq!(Bbc.decompress(&negated, len), a.not());
        prop_assert_eq!(negated, Bbc.compress(&a.not()));
    }

    /// Ops on decompressed bitmaps agree with ops on originals.
    #[test]
    fn decompress_then_op_matches((a, b) in (arb_bitmap(), arb_bitmap())) {
        // Force equal lengths by truncating to the shorter model.
        let len = a.len().min(b.len());
        let a = Bitvec::from_bools(&(0..len).map(|i| a.get(i)).collect::<Vec<_>>());
        let b = Bitvec::from_bools(&(0..len).map(|i| b.get(i)).collect::<Vec<_>>());
        let ca = CompressedBitmap::encode(CodecKind::Bbc, &a);
        let cb = CompressedBitmap::encode(CodecKind::Wah, &b);
        prop_assert_eq!(ca.decode().and(&cb.decode()), a.and(&b));
        prop_assert_eq!(ca.decode().or(&cb.decode()), a.or(&b));
    }
}
