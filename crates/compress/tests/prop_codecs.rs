//! Property tests: every codec round-trips every bitmap exactly.

use bix_bitvec::Bitvec;
use bix_compress::{
    bbc_binary, bbc_not, Bbc, BitOp, BitmapCodec, CodecKind, CompressedBitmap, Raw, Wah,
};
use proptest::prelude::*;

/// Bitmaps with realistic index structure: runs plus noise.
fn arb_bitmap() -> impl Strategy<Value = Bitvec> {
    let dense = prop::collection::vec(any::<bool>(), 0..2000).prop_map(|b| Bitvec::from_bools(&b));
    let runny = (
        1usize..2000,
        prop::collection::vec((any::<bool>(), 1usize..200), 0..30),
    )
        .prop_map(|(pad, runs)| {
            let mut builder = bix_bitvec::BitvecBuilder::new();
            for (bit, n) in runs {
                builder.push_run(bit, n);
            }
            builder.push_run(false, pad);
            builder.finish()
        });
    let sparse =
        (100usize..5000, prop::collection::vec(0usize..5000, 0..10)).prop_map(|(len, mut pos)| {
            pos.retain(|&p| p < len);
            Bitvec::from_positions(len, &pos)
        });
    prop_oneof![dense, runny, sparse]
}

proptest! {
    #[test]
    fn bbc_round_trips(bv in arb_bitmap()) {
        let c = Bbc.compress(&bv);
        prop_assert_eq!(Bbc.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn wah_round_trips(bv in arb_bitmap()) {
        let c = Wah.compress(&bv);
        prop_assert_eq!(Wah.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn raw_round_trips(bv in arb_bitmap()) {
        let c = Raw.compress(&bv);
        prop_assert_eq!(Raw.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn ewah_round_trips(bv in arb_bitmap()) {
        use bix_compress::Ewah;
        let c = Ewah.compress(&bv);
        prop_assert_eq!(Ewah.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn roaring_round_trips(bv in arb_bitmap()) {
        use bix_compress::Roaring;
        let c = Roaring.compress(&bv);
        prop_assert_eq!(Roaring.decompress(&c, bv.len()), bv);
    }

    #[test]
    fn compressed_bitmap_sizes_are_consistent(bv in arb_bitmap()) {
        for kind in [CodecKind::Raw, CodecKind::Bbc, CodecKind::Wah, CodecKind::Ewah, CodecKind::Roaring] {
            let cb = CompressedBitmap::encode(kind, &bv);
            prop_assert_eq!(cb.raw_size(), bv.byte_size());
            prop_assert_eq!(cb.decode().len(), bv.len());
        }
    }

    /// BBC never exceeds raw size by more than the worst-case header
    /// overhead (one header + varint per 14-byte literal tail ≈ 15%).
    #[test]
    fn bbc_overhead_is_bounded(bv in arb_bitmap()) {
        let c = Bbc.compress(&bv);
        prop_assert!(c.len() <= bv.byte_size() + bv.byte_size() / 6 + 4);
    }

    /// Compressed-domain BBC operations equal decompress-then-operate,
    /// and their output streams are canonical (identical to compressing
    /// the operated bitmap).
    #[test]
    fn bbc_compressed_domain_ops_are_exact((a, b) in (arb_bitmap(), arb_bitmap())) {
        let len = a.len().min(b.len());
        prop_assume!(len > 0);
        let a = Bitvec::from_bools(&(0..len).map(|i| a.get(i)).collect::<Vec<_>>());
        let b = Bitvec::from_bools(&(0..len).map(|i| b.get(i)).collect::<Vec<_>>());
        let ca = Bbc.compress(&a);
        let cb = Bbc.compress(&b);
        for (op, expect) in [
            (BitOp::And, a.and(&b)),
            (BitOp::Or, a.or(&b)),
            (BitOp::Xor, a.xor(&b)),
            (BitOp::AndNot, a.and_not(&b)),
        ] {
            let combined = bbc_binary(&ca, &cb, op);
            prop_assert_eq!(Bbc.decompress(&combined, len), expect.clone(), "{:?}", op);
            prop_assert_eq!(combined, Bbc.compress(&expect), "canonical {:?}", op);
        }
        let negated = bbc_not(&ca, len);
        prop_assert_eq!(Bbc.decompress(&negated, len), a.not());
        prop_assert_eq!(negated, Bbc.compress(&a.not()));
    }

    /// Ops on decompressed bitmaps agree with ops on originals.
    #[test]
    fn decompress_then_op_matches((a, b) in (arb_bitmap(), arb_bitmap())) {
        // Force equal lengths by truncating to the shorter model.
        let len = a.len().min(b.len());
        let a = Bitvec::from_bools(&(0..len).map(|i| a.get(i)).collect::<Vec<_>>());
        let b = Bitvec::from_bools(&(0..len).map(|i| b.get(i)).collect::<Vec<_>>());
        let ca = CompressedBitmap::encode(CodecKind::Bbc, &a);
        let cb = CompressedBitmap::encode(CodecKind::Wah, &b);
        prop_assert_eq!(ca.decode().and(&cb.decode()), a.and(&b));
        prop_assert_eq!(ca.decode().or(&cb.decode()), a.or(&b));
    }

    /// The full compressed-domain operator matrix: for every codec with
    /// compressed-domain kernels and every binary operator,
    /// `op(compress(a), compress(b))` decodes to `a op b` and the output
    /// stream is canonical. NOT is checked the same way.
    #[test]
    fn compressed_domain_op_matrix((a, b) in (arb_bitmap(), arb_bitmap())) {
        let len = a.len().min(b.len());
        prop_assume!(len > 0);
        let a = Bitvec::from_bools(&(0..len).map(|i| a.get(i)).collect::<Vec<_>>());
        let b = Bitvec::from_bools(&(0..len).map(|i| b.get(i)).collect::<Vec<_>>());
        for kind in [
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            prop_assert!(kind.supports_compressed_ops());
            let ca = CompressedBitmap::encode(kind, &a);
            let cb = CompressedBitmap::encode(kind, &b);
            for (op, expect) in [
                (BitOp::And, a.and(&b)),
                (BitOp::Or, a.or(&b)),
                (BitOp::Xor, a.xor(&b)),
                (BitOp::AndNot, a.and_not(&b)),
            ] {
                let combined = ca.binary_op(&cb, op).expect("kernel exists");
                prop_assert_eq!(
                    combined.try_decode().expect("kernel output decodes"),
                    expect.clone(),
                    "{:?} {:?}", kind, op
                );
                prop_assert_eq!(
                    combined.bytes(),
                    CompressedBitmap::encode(kind, &expect).bytes(),
                    "canonical {:?} {:?}", kind, op
                );
            }
            let negated = ca.not_op().expect("kernel exists");
            prop_assert_eq!(
                negated.try_decode().expect("kernel output decodes"),
                a.not(),
                "{:?} not", kind
            );
            prop_assert_eq!(
                negated.bytes(),
                CompressedBitmap::encode(kind, &a.not()).bytes(),
                "canonical {:?} not", kind
            );
        }
    }

    /// Operands that cannot be combined in the compressed domain are
    /// declined, never mangled: mismatched codecs, mismatched lengths, and
    /// codecs without kernels all return `None`.
    #[test]
    fn compressed_domain_op_declines_mismatches(bv in arb_bitmap()) {
        prop_assume!(bv.len() > 1);
        let bbc = CompressedBitmap::encode(CodecKind::Bbc, &bv);
        let wah = CompressedBitmap::encode(CodecKind::Wah, &bv);
        prop_assert!(bbc.binary_op(&wah, BitOp::And).is_none(), "codec mismatch");

        let shorter = Bitvec::from_bools(&(0..bv.len() - 1).map(|i| bv.get(i)).collect::<Vec<_>>());
        let cs = CompressedBitmap::encode(CodecKind::Bbc, &shorter);
        prop_assert!(bbc.binary_op(&cs, BitOp::Or).is_none(), "length mismatch");

        let raw = CompressedBitmap::encode(CodecKind::Raw, &bv);
        prop_assert!(raw.binary_op(&raw, BitOp::And).is_none(), "Raw has no kernel");
        prop_assert!(raw.not_op().is_none(), "Raw has no kernel");
    }

    /// Hostile bytes through every fallible decoder: `try_decompress` must
    /// return `Ok` or `Err`, never panic, and any `Ok` bitmap must have the
    /// declared length.
    #[test]
    fn corrupt_streams_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        len_bits in 0usize..4096,
    ) {
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            let codec = kind.codec();
            if let Ok(bv) = codec.try_decompress(&bytes, len_bits) {
                prop_assert_eq!(bv.len(), len_bits, "{:?}", kind);
            }
            // validate() agrees with try_decompress() on stream health.
            prop_assert_eq!(
                codec.validate(&bytes, len_bits).is_ok(),
                codec.try_decompress(&bytes, len_bits).is_ok(),
                "{:?}", kind
            );
        }
    }

    /// Truncating or bit-flipping a well-formed stream must also never
    /// panic — corruption of real streams is the case verify/repair hits.
    #[test]
    fn mutated_valid_streams_never_panic(
        bv in arb_bitmap(),
        cut in 0usize..64,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            let codec = kind.codec();
            let good = codec.compress(&bv);

            let truncated = &good[..good.len().saturating_sub(cut)];
            let _ = codec.try_decompress(truncated, bv.len());

            if !good.is_empty() {
                let mut flipped = good.clone();
                let i = flip_at % flipped.len();
                flipped[i] ^= 1 << flip_bit;
                if let Ok(out) = codec.try_decompress(&flipped, bv.len()) {
                    prop_assert_eq!(out.len(), bv.len(), "{:?}", kind);
                }
            }
        }
    }
}

/// Deterministic edge cases the random generator may not hit: odd tail
/// lengths around word/group boundaries, and all-fill / all-literal
/// extremes, through the full operator matrix.
#[test]
fn op_matrix_edge_lengths_and_extremes() {
    let lengths = [1usize, 7, 8, 31, 32, 33, 63, 64, 65, 217, 313, 448];
    for &len in &lengths {
        let all_zero = Bitvec::zeros(len);
        let all_one = all_zero.not();
        let alternating = Bitvec::from_bools(&(0..len).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let shapes = [
            (&all_zero, &all_one),
            (&all_one, &all_zero),
            (&all_zero, &all_zero),
            (&all_one, &all_one),
            (&alternating, &all_one),
            (&alternating, &all_zero),
        ];
        for (a, b) in shapes {
            for kind in [
                CodecKind::Bbc,
                CodecKind::Wah,
                CodecKind::Ewah,
                CodecKind::Roaring,
            ] {
                let ca = CompressedBitmap::encode(kind, a);
                let cb = CompressedBitmap::encode(kind, b);
                for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
                    let combined = ca.binary_op(&cb, op).expect("kernel exists");
                    let expect = match op {
                        BitOp::And => a.and(b),
                        BitOp::Or => a.or(b),
                        BitOp::Xor => a.xor(b),
                        BitOp::AndNot => a.and_not(b),
                    };
                    assert_eq!(
                        combined.try_decode().expect("kernel output decodes"),
                        expect,
                        "{kind:?} {op:?} len={len}"
                    );
                }
                assert_eq!(
                    ca.not_op().expect("kernel exists").try_decode().unwrap(),
                    a.not(),
                    "{kind:?} not len={len}"
                );
            }
        }
    }
}

proptest! {
    /// Roaring op-matrix against the `Bitvec` oracle on bitmaps that
    /// straddle the array↔bitmap container boundary, leave middle chunks
    /// empty, and end in a partial final chunk. Results must decode to the
    /// oracle's answer and the streams must be canonical.
    #[test]
    fn roaring_ops_across_container_boundaries(
        card_a in 4090usize..4104,
        card_b in 4090usize..4104,
        stride_a in 1usize..=15,
        stride_b in 1usize..=15,
        tail in 1usize..65_536,
    ) {
        const CHUNK: usize = 1 << 16;
        let len = 2 * CHUNK + tail; // chunk 1 stays empty on one side
        let mut pos_a: Vec<usize> = (0..card_a).map(|i| i * stride_a).collect();
        pos_a.dedup();
        pos_a.extend((0..tail.min(64)).map(|j| 2 * CHUNK + j));
        let mut pos_b: Vec<usize> = (0..card_b).map(|i| i * stride_b + 1).collect();
        pos_b.dedup();
        pos_b.extend((0..card_b.min(CHUNK)).map(|i| CHUNK + i * 15)); // chunk 1 set only in b
        let a = Bitvec::from_positions(len, &pos_a);
        let b = Bitvec::from_positions(len, &pos_b);
        let ca = CompressedBitmap::encode(CodecKind::Roaring, &a);
        let cb = CompressedBitmap::encode(CodecKind::Roaring, &b);
        for (op, expect) in [
            (BitOp::And, a.and(&b)),
            (BitOp::Or, a.or(&b)),
            (BitOp::Xor, a.xor(&b)),
            (BitOp::AndNot, a.and_not(&b)),
        ] {
            let combined = ca.binary_op(&cb, op).expect("roaring kernel exists");
            prop_assert_eq!(
                combined.try_decode().expect("kernel output decodes"),
                expect.clone(),
                "{:?}", op
            );
            prop_assert_eq!(
                combined.bytes(),
                CompressedBitmap::encode(CodecKind::Roaring, &expect).bytes(),
                "canonical {:?}", op
            );
        }
        let negated = ca.not_op().expect("roaring kernel exists");
        prop_assert_eq!(negated.try_decode().expect("decodes"), a.not());
        prop_assert_eq!(
            negated.bytes(),
            CompressedBitmap::encode(CodecKind::Roaring, &a.not()).bytes(),
            "canonical not"
        );
    }
}

/// The exact array↔bitmap threshold: cardinalities 4095..=4098 in one
/// chunk, an empty middle chunk, and a partial final chunk, through the
/// full op matrix with canonical outputs.
#[test]
fn roaring_op_matrix_at_container_threshold() {
    const CHUNK: usize = 1 << 16;
    let len = 3 * CHUNK + 12_345;
    for card in [4095usize, 4096, 4097, 4098] {
        let mut pos_a: Vec<usize> = (0..card).map(|i| i * 15).collect();
        pos_a.push(3 * CHUNK + 12_344); // last bit of the partial chunk
        let mut pos_b: Vec<usize> = (0..card).map(|i| i * 13 + 2).collect();
        pos_b.extend((0..200).map(|i| 2 * CHUNK + i * 64)); // chunk 2 set only in b
        let a = Bitvec::from_positions(len, &pos_a);
        let b = Bitvec::from_positions(len, &pos_b);
        let ca = CompressedBitmap::encode(CodecKind::Roaring, &a);
        let cb = CompressedBitmap::encode(CodecKind::Roaring, &b);
        for op in [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::AndNot] {
            let expect = match op {
                BitOp::And => a.and(&b),
                BitOp::Or => a.or(&b),
                BitOp::Xor => a.xor(&b),
                BitOp::AndNot => a.and_not(&b),
            };
            let combined = ca.binary_op(&cb, op).expect("roaring kernel exists");
            assert_eq!(
                combined.try_decode().expect("decodes"),
                expect,
                "card={card} {op:?}"
            );
            assert_eq!(
                combined.bytes(),
                CompressedBitmap::encode(CodecKind::Roaring, &expect).bytes(),
                "canonical card={card} {op:?}"
            );
        }
        let negated = ca.not_op().expect("roaring kernel exists");
        assert_eq!(
            negated.try_decode().expect("decodes"),
            a.not(),
            "card={card}"
        );
        assert_eq!(
            negated.bytes(),
            CompressedBitmap::encode(CodecKind::Roaring, &a.not()).bytes(),
            "canonical not card={card}"
        );
    }
}

/// Crafted hostile streams: fill counts that claim far more data than
/// `len_bits` allows must be rejected without huge allocations or panics.
#[test]
fn oversized_fill_claims_are_rejected() {
    // Maximal varint bytes / fill headers for each format.
    let hostile: &[&[u8]] = &[
        &[0x70, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F], // BBC: gap=7 + huge varint
        &[0xFF; 16],                           // saturated everything
        &[0x80, 0x00, 0x00, 0x00],             // WAH word: fill of zero groups
        &[0xFF, 0xFF, 0xFF, 0xFF],             // WAH: max one-fill
        &[0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF], // EWAH-ish marker
    ];
    for &bytes in hostile {
        for kind in [
            CodecKind::Raw,
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            for len_bits in [0usize, 1, 64, 1 << 20] {
                // Must return, not panic or OOM; Ok is fine if the stream
                // happens to be valid for this codec and length.
                if let Ok(bv) = kind.codec().try_decompress(bytes, len_bits) {
                    assert_eq!(bv.len(), len_bits, "{kind:?}");
                }
            }
        }
    }
}
