//! Shard health tracking: a per-shard circuit breaker.
//!
//! The [`Supervisor`] is a pure state machine — it owns no sockets and
//! spawns no threads. The router feeds it observations (ping results,
//! request successes and failures) and asks it which shards are worth
//! dialling; keeping it side-effect free makes every transition unit
//! testable without a network.
//!
//! Per shard the classic three states:
//!
//! ```text
//!            N consecutive failures
//!     Up ───────────────────────────▶ Down
//!      ▲                               │ cooldown elapses
//!      │ probe succeeds                ▼
//!      └──────────────────────────  HalfOpen
//!                 (a failed probe goes straight back to Down)
//! ```
//!
//! `Down` shards are not dialled at all — requests route around them
//! immediately instead of burning their deadline budget on a dead
//! socket. After [`SupervisorConfig::cooldown`] the shard *half-opens*:
//! the next caller is allowed one probe, and its outcome decides
//! between recovery and another cooldown. The supervisor also remembers
//! each shard's last observed reload epoch and row count, which is the
//! routing table the scatter-gather merge is built from.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Circuit-breaker state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Healthy: requests flow normally.
    Up,
    /// Tripped: not dialled until the cooldown elapses.
    Down,
    /// Cooldown elapsed: one probe in flight decides Up vs Down.
    HalfOpen,
}

impl ShardState {
    /// Stable numeric encoding for the breaker-state gauge
    /// (0 = up, 1 = half-open, 2 = down).
    pub fn as_gauge(self) -> f64 {
        match self {
            ShardState::Up => 0.0,
            ShardState::HalfOpen => 1.0,
            ShardState::Down => 2.0,
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Consecutive failures that trip a shard to `Down`.
    pub failure_threshold: u32,
    /// How long a tripped shard rests before half-opening.
    pub cooldown: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

#[derive(Debug)]
struct ShardHealth {
    state: ShardState,
    consecutive_failures: u32,
    tripped_at: Option<Instant>,
    /// A half-open probe has been handed out and not yet resolved.
    probe_inflight: bool,
    /// Last reload epoch observed in a reply from this shard.
    epoch: u64,
    /// Rows this shard reported serving (its slice of the corpus).
    rows: u64,
}

impl ShardHealth {
    fn new() -> ShardHealth {
        ShardHealth {
            state: ShardState::Up,
            consecutive_failures: 0,
            tripped_at: None,
            probe_inflight: false,
            epoch: 0,
            rows: 0,
        }
    }
}

/// Health and shape tracking for a fixed set of shards.
pub struct Supervisor {
    shards: Vec<Mutex<ShardHealth>>,
    config: SupervisorConfig,
}

impl Supervisor {
    /// Tracks `n` shards, all initially `Up` with unknown shape.
    pub fn new(n: usize, config: SupervisorConfig) -> Supervisor {
        Supervisor {
            shards: (0..n).map(|_| Mutex::new(ShardHealth::new())).collect(),
            config,
        }
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the supervisor tracks no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard's current state, applying the `Down → HalfOpen`
    /// transition if its cooldown has elapsed.
    pub fn state(&self, shard: usize) -> ShardState {
        let mut h = self.shards[shard].lock().unwrap();
        self.maybe_half_open(&mut h);
        h.state
    }

    fn maybe_half_open(&self, h: &mut ShardHealth) {
        if h.state == ShardState::Down {
            if let Some(t) = h.tripped_at {
                if t.elapsed() >= self.config.cooldown {
                    h.state = ShardState::HalfOpen;
                    h.probe_inflight = false;
                }
            }
        }
    }

    /// Whether a request may be sent to this shard right now. `Up`
    /// always admits; `HalfOpen` admits exactly one probe at a time;
    /// `Down` admits nothing (callers should treat the shard as missing
    /// without spending any deadline budget on it).
    pub fn admit(&self, shard: usize) -> bool {
        let mut h = self.shards[shard].lock().unwrap();
        self.maybe_half_open(&mut h);
        match h.state {
            ShardState::Up => true,
            ShardState::Down => false,
            ShardState::HalfOpen => {
                if h.probe_inflight {
                    false
                } else {
                    h.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Records a successful exchange with the shard, closing the
    /// breaker and refreshing the remembered shape.
    pub fn record_success(&self, shard: usize, epoch: u64, rows: u64) {
        let mut h = self.shards[shard].lock().unwrap();
        h.state = ShardState::Up;
        h.consecutive_failures = 0;
        h.tripped_at = None;
        h.probe_inflight = false;
        if epoch != 0 {
            h.epoch = epoch;
        }
        if rows != 0 {
            h.rows = rows;
        }
    }

    /// Records a failed exchange. A half-open probe failure re-trips
    /// immediately; otherwise the shard trips once it accumulates
    /// [`SupervisorConfig::failure_threshold`] consecutive failures.
    pub fn record_failure(&self, shard: usize) {
        let mut h = self.shards[shard].lock().unwrap();
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        let tripped = h.state == ShardState::HalfOpen
            || h.consecutive_failures >= self.config.failure_threshold;
        if tripped {
            h.state = ShardState::Down;
            h.tripped_at = Some(Instant::now());
            h.probe_inflight = false;
        }
    }

    /// Last reload epoch observed from this shard (0 = never heard).
    pub fn epoch(&self, shard: usize) -> u64 {
        self.shards[shard].lock().unwrap().epoch
    }

    /// Rows this shard reported serving (0 = unknown).
    pub fn rows(&self, shard: usize) -> u64 {
        self.shards[shard].lock().unwrap().rows
    }

    /// Updates the remembered shape without touching breaker state
    /// (used when shape is learned out-of-band, e.g. at startup).
    pub fn set_shape(&self, shard: usize, epoch: u64, rows: u64) {
        let mut h = self.shards[shard].lock().unwrap();
        h.epoch = epoch;
        h.rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> SupervisorConfig {
        SupervisorConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let s = Supervisor::new(1, fast());
        s.record_failure(0);
        s.record_failure(0);
        assert_eq!(s.state(0), ShardState::Up, "2 < threshold stays up");
        s.record_success(0, 1, 100);
        s.record_failure(0);
        s.record_failure(0);
        assert_eq!(s.state(0), ShardState::Up, "success resets the streak");
        s.record_failure(0);
        assert_eq!(s.state(0), ShardState::Down);
        assert!(!s.admit(0), "down shards are not dialled");
    }

    #[test]
    fn half_opens_after_cooldown_and_single_probe() {
        let s = Supervisor::new(1, fast());
        for _ in 0..3 {
            s.record_failure(0);
        }
        assert!(!s.admit(0));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(s.state(0), ShardState::HalfOpen);
        assert!(s.admit(0), "first caller gets the probe");
        assert!(!s.admit(0), "only one probe at a time");
        s.record_success(0, 2, 100);
        assert_eq!(s.state(0), ShardState::Up);
        assert!(s.admit(0));
    }

    #[test]
    fn failed_probe_re_trips_immediately() {
        let s = Supervisor::new(1, fast());
        for _ in 0..3 {
            s.record_failure(0);
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(s.admit(0));
        s.record_failure(0);
        assert_eq!(s.state(0), ShardState::Down, "one probe failure re-trips");
        assert!(!s.admit(0));
    }

    #[test]
    fn shape_tracks_latest_epoch_and_rows() {
        let s = Supervisor::new(2, fast());
        s.set_shape(0, 1, 500);
        s.record_success(0, 2, 500);
        assert_eq!(s.epoch(0), 2);
        assert_eq!(s.rows(0), 500);
        // Zero epoch/rows in a success (e.g. a bare ping) keep the
        // remembered shape.
        s.record_success(0, 0, 0);
        assert_eq!(s.epoch(0), 2);
        assert_eq!(s.rows(0), 500);
        assert_eq!(s.epoch(1), 0, "untouched shard stays unknown");
    }
}
