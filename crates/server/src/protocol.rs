//! The `bix` wire protocol: length-prefixed, CRC-checked binary frames.
//!
//! Every frame is laid out as
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"bX"
//! 2       1     protocol version (1 or 2)
//! 3       1     frame kind
//! 4       8     request id (little endian)
//! 12      4     payload length in bytes (little endian)
//! 16      n     payload
//! 16+n    4     CRC-32 (IEEE) over the payload, little endian
//! ```
//!
//! Version 2 frames carry a fixed-size routing extension between the
//! base header and the payload:
//!
//! ```text
//! offset  size  field
//! 16      1     extension length (must be 11)
//! 17      1     flags (bit 0: ALLOW_DEGRADED)
//! 18      2     shard id (little endian)
//! 20      8     shard epoch (little endian)
//! 28      n     payload
//! 28+n    4     CRC-32 over extension bytes + payload
//! ```
//!
//! Traced frames grow the extension to carry a distributed-trace
//! context ([`EXT_LEN_TRACE`] = 36 bytes):
//!
//! ```text
//! offset  size  field
//! 16      1     extension length (36)
//! 17      1     flags (bit 0: ALLOW_DEGRADED)
//! 18      2     shard id (little endian)
//! 20      8     shard epoch (little endian)
//! 28      16    trace id (little endian)
//! 44      8     parent span id (little endian)
//! 52      1     trace flags (bit 0: SAMPLED, bit 1: HAS_SPANS)
//! 53      n     [spans section]? + payload
//! 53+n    4     CRC-32 over extension bytes + payload
//! ```
//!
//! When trace-flag bit 1 (`HAS_SPANS`) is set, the payload begins with
//! a length-prefixed section of [`SpanRecord`]s — a sampled shard
//! shipping its span forest back to the router — followed by the normal
//! message body. Parent links are raw indices into the section itself
//! and must point backwards; the router grafts the forest into its own
//! tracer, remapping the indices.
//!
//! The extension exists for sharded serving: a shard stamps every reply
//! with its id and its reload epoch so a router can detect replies
//! computed against a stale index generation (a hot reload mid-stream)
//! and retry them instead of merging them. Frames with all-zero routing
//! fields encode as version 1, so single-node deployments and old peers
//! see exactly the v1 byte stream; frames with routing state but no
//! trace keep the 11-byte extension byte-for-byte. A v2 extension whose
//! length is not one of the known layouts (11 or 36) is rejected with a
//! typed error — trailing bytes are never silently skipped. For v2
//! frames the CRC covers the extension as well as the payload, so a
//! bit-flipped epoch or trace id can never route a reply into the wrong
//! merge or splice spans into the wrong trace.
//!
//! The codec in this module is pure — it maps between byte slices and
//! typed [`Frame`] values without touching sockets — so every decode
//! path is testable (and fuzzable) in isolation. [`read_frame`] /
//! [`write_frame`] adapt the codec to any `Read`/`Write` transport.
//!
//! Decoding is hardened against untrusted peers: magic, version, frame
//! kind, payload length, interior counts, and the CRC are all validated
//! before any allocation proportional to the claimed size, and no input
//! — truncated, oversized, or bit-flipped — can cause a panic.

use std::fmt;
use std::io::{self, Read, Write};

use bix_core::EvalDomain;
use bix_storage::crc32;
use bix_telemetry::{SpanId, SpanRecord, TraceContext};

/// Two-byte frame preamble.
pub const MAGIC: [u8; 2] = *b"bX";
/// Wire protocol version of frames without routing metadata.
pub const VERSION: u8 = 1;
/// Wire protocol version of frames carrying the routing extension
/// (flags + shard id + epoch).
pub const VERSION_EXT: u8 = 2;
/// Fixed byte length of the base frame header (everything before the
/// extension/payload).
pub const HEADER_LEN: usize = 16;
/// Byte length of the v2 routing extension body (flags + shard id +
/// epoch), excluding its own length byte.
pub const EXT_LEN: u8 = 11;
/// Byte length of the extension body when it also carries a trace
/// context (routing fields + trace id + parent span + trace flags).
pub const EXT_LEN_TRACE: u8 = 36;
/// Trace flag (in the extension's trace-flags byte): the request is
/// sampled — record spans and ship them back in the reply.
pub const TRACE_FLAG_SAMPLED: u8 = 0x01;
/// Trace flag: the payload begins with a spans section.
pub const TRACE_FLAG_SPANS: u8 = 0x02;
/// Upper bound on spans a single frame may carry.
pub const MAX_SPANS: u32 = 16_384;
/// Upper bound on attributes per shipped span.
pub const MAX_SPAN_ATTRS: u16 = 64;
/// Request flag: the client accepts a [`Response::Degraded`] partial
/// result when some shards are unreachable. Without it a router answers
/// all-or-typed-error.
pub const FLAG_ALLOW_DEGRADED: u8 = 0x01;
/// Upper bound on a frame payload; larger claims are rejected before
/// any allocation happens.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Upper bound on the number of predicates a single batch may carry.
pub const MAX_BATCH: u32 = 4096;
/// Upper bound on shards named by a [`Response::Degraded`] frame.
pub const MAX_SHARDS: u32 = 1024;
/// Upper bound on values a single [`Request::Ingest`] frame may carry
/// (8 MiB of payload). Clients split larger batches into multiple
/// frames; each frame is acknowledged independently.
pub const MAX_INGEST: u32 = 1 << 20;

/// Error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame could not be decoded.
    Malformed = 1,
    /// The predicate text failed to parse against the index domain.
    BadQuery = 2,
    /// The admission queue was full; retry later.
    Overloaded = 3,
    /// The request deadline elapsed before evaluation finished.
    DeadlineExceeded = 4,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 5,
    /// An unexpected server-side failure (e.g. a failed reload).
    Internal = 6,
    /// One or more shards behind a router were unreachable and the
    /// request did not opt into degraded results.
    Unavailable = 7,
}

impl ErrorCode {
    /// Decodes a wire value, mapping unknown codes to `Internal`.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadQuery,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Unavailable,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::BadQuery => "bad query",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal error",
            ErrorCode::Unavailable => "shard unavailable",
        };
        f.write_str(s)
    }
}

/// Requested exposition format for a [`Request::Stats`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition.
    Prometheus,
    /// The registry's JSON snapshot.
    Json,
}

/// Per-query summary inside a [`Response::Rows`] / [`Response::BatchRows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowsReply {
    /// Bitmap scans charged to the query (the paper's cost metric).
    pub scans: u64,
    /// Compressed bitmaps materialised during evaluation.
    pub decompressions: u64,
    /// Matching row ids, ascending.
    pub rows: Vec<u64>,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Evaluate one selection predicate.
    Query {
        /// Evaluation domain to use.
        domain: EvalDomain,
        /// Per-request deadline in milliseconds; 0 uses the server default.
        deadline_ms: u32,
        /// Predicate text, `Query::parse` syntax.
        predicate: String,
    },
    /// Evaluate a batch of predicates through the parallel executor.
    Batch {
        /// Evaluation domain to use.
        domain: EvalDomain,
        /// Per-request deadline in milliseconds; 0 uses the server default.
        deadline_ms: u32,
        /// Predicate texts, evaluated in order.
        predicates: Vec<String>,
    },
    /// Fetch the server's metrics registry.
    Stats(StatsFormat),
    /// Fetch the server's slow-query log as a JSON [`Response::Stats`]
    /// (a router aggregates its own log with every shard's).
    SlowLog,
    /// Atomically swap in a freshly verified index from this path.
    Reload {
        /// Server-side filesystem path of the index to load.
        path: String,
    },
    /// Ask the server to drain and exit.
    Shutdown,
    /// Append a batch of attribute values to the served index's
    /// in-memory delta. Not idempotent: a client must never blindly
    /// retry an ingest whose reply was lost.
    Ingest {
        /// Attribute values in row order; each becomes one new row.
        values: Vec<u64>,
    },
    /// Evaluate one multi-attribute boolean expression against a served
    /// catalog. Only catalog servers answer it; index servers reply
    /// with a typed [`ErrorCode::BadQuery`]. The frame kind is new in
    /// this revision, so peers that never send it interoperate with v1
    /// byte streams unchanged.
    TableQuery {
        /// Evaluation domain to use.
        domain: EvalDomain,
        /// Per-request deadline in milliseconds; 0 uses the server default.
        deadline_ms: u32,
        /// When set, the server replies with [`Response::Count`] — a
        /// popcount of the result bitmap — and never materialises or
        /// ships the matching row ids.
        count_only: bool,
        /// Expression text, `TableQuery::parse` grammar over the
        /// catalog's attribute names.
        text: String,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Query`].
    Rows(RowsReply),
    /// Reply to [`Request::Batch`]; one entry per predicate, in order.
    BatchRows(Vec<RowsReply>),
    /// Reply to [`Request::Stats`].
    Stats {
        /// Rendered metrics text in the requested format.
        text: String,
    },
    /// Untyped success acknowledgement (reload, shutdown).
    Ok,
    /// Partial result from a router: the shards in `missing_shards`
    /// were unreachable, every other shard's rows are merged in
    /// `replies` (one entry per predicate, in request order). Only sent
    /// when the request carried [`FLAG_ALLOW_DEGRADED`] — a degraded
    /// answer is always explicitly typed, never a silently short
    /// [`Response::Rows`].
    Degraded {
        /// Shard ids whose rows are absent from the merge.
        missing_shards: Vec<u16>,
        /// Per-predicate merged replies from the shards that answered.
        replies: Vec<RowsReply>,
    },
    /// Reply to [`Request::Ingest`]: the batch was absorbed into the
    /// delta (all-or-nothing).
    Ingested {
        /// Rows appended by this request.
        appended: u64,
        /// Rows currently buffered in the delta (after this request).
        delta_rows: u64,
        /// Total queryable rows, main index plus delta.
        total_rows: u64,
    },
    /// Reply to a count-only [`Request::TableQuery`]: the popcount of
    /// the result bitmap, with the same evaluation-cost summary a
    /// [`RowsReply`] carries but no row ids.
    Count {
        /// Number of rows matching the expression.
        count: u64,
        /// Bitmap scans charged to the query (the paper's cost metric).
        scans: u64,
        /// Compressed bitmaps materialised during evaluation.
        decompressions: u64,
    },
    /// Typed failure.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail, bounded by the server.
        message: String,
    },
}

/// Either direction of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A client-to-server frame body.
    Request(Request),
    /// A server-to-client frame body.
    Response(Response),
}

/// One decoded wire frame: a request id plus its message body, with the
/// v2 routing extension (zero for v1 frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id echoed back on the matching response.
    pub request_id: u64,
    /// Request flags ([`FLAG_ALLOW_DEGRADED`]); 0 on v1 frames.
    pub flags: u8,
    /// Originating shard id on replies; 0 on v1 frames and requests.
    pub shard_id: u16,
    /// The shard's index reload generation on replies; 0 on v1 frames.
    /// A router refuses to merge a reply whose epoch does not match its
    /// routing table and retries it instead.
    pub epoch: u64,
    /// Distributed-trace context; all-zero when the request is not
    /// traced (the common case — encodes to nothing on the wire).
    pub trace: TraceContext,
    /// Span forest shipped with a sampled reply, in the sender's
    /// creation order (parents always precede children). Empty on
    /// requests and unsampled replies.
    pub spans: Vec<SpanRecord>,
    /// The frame body.
    pub msg: Message,
}

impl Frame {
    /// A frame with no routing metadata (encodes as protocol v1).
    pub fn new(request_id: u64, msg: Message) -> Frame {
        Frame {
            request_id,
            flags: 0,
            shard_id: 0,
            epoch: 0,
            trace: TraceContext::default(),
            spans: Vec::new(),
            msg,
        }
    }

    /// Whether this frame needs the v2 routing extension on the wire.
    fn extended(&self) -> bool {
        self.flags != 0 || self.shard_id != 0 || self.epoch != 0 || self.trace_extended()
    }

    /// Whether this frame needs the longer trace-carrying extension.
    fn trace_extended(&self) -> bool {
        !self.trace.is_zero() || !self.spans.is_empty()
    }
}

/// Everything that can go wrong while decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// Transport-level failure.
    Io(io::Error),
    /// The first two bytes were not [`MAGIC`].
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// A v2 routing extension whose length is not the known layout.
    /// Unknown trailing extension bytes are rejected, never skipped.
    BadExtension(u8),
    /// Unrecognised frame-kind byte.
    UnknownKind(u8),
    /// Claimed payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The CRC-32 trailer did not match the payload.
    CrcMismatch,
    /// The buffer ended before the frame did.
    Truncated,
    /// The payload decoded but violated the frame's grammar.
    Malformed(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::BadMagic => f.write_str("bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadExtension(n) => {
                write!(
                    f,
                    "unknown routing-extension length {n} (expected {EXT_LEN} or {EXT_LEN_TRACE})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversize(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::CrcMismatch => f.write_str("payload CRC mismatch"),
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
            WireError::BadUtf8 => f.write_str("string field is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

// Frame-kind bytes. Responses set the high bit.
const KIND_PING: u8 = 0x01;
const KIND_QUERY: u8 = 0x02;
const KIND_BATCH: u8 = 0x03;
const KIND_STATS: u8 = 0x04;
const KIND_RELOAD: u8 = 0x05;
const KIND_SHUTDOWN: u8 = 0x06;
const KIND_SLOWLOG: u8 = 0x07;
const KIND_INGEST: u8 = 0x08;
const KIND_TABLE_QUERY: u8 = 0x09;
const KIND_PONG: u8 = 0x81;
const KIND_ROWS: u8 = 0x82;
const KIND_BATCH_ROWS: u8 = 0x83;
const KIND_STATS_REPLY: u8 = 0x84;
const KIND_OK: u8 = 0x85;
const KIND_DEGRADED: u8 = 0x86;
const KIND_INGESTED: u8 = 0x87;
const KIND_COUNT: u8 = 0x88;
const KIND_ERROR: u8 = 0xff;

fn domain_to_u8(d: EvalDomain) -> u8 {
    match d {
        EvalDomain::Auto => 0,
        EvalDomain::Compressed => 1,
        EvalDomain::Raw => 2,
    }
}

fn domain_from_u8(v: u8) -> Result<EvalDomain, WireError> {
    match v {
        0 => Ok(EvalDomain::Auto),
        1 => Ok(EvalDomain::Compressed),
        2 => Ok(EvalDomain::Raw),
        _ => Err(WireError::Malformed("unknown eval domain")),
    }
}

/// Bounded little-endian reader over a payload slice. Every accessor
/// checks remaining length, so a lying count can never over-read.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn rest_utf8(&mut self) -> Result<String, WireError> {
        let s = self.bytes(self.remaining())?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn sized_utf8(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.bytes(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_rows(out: &mut Vec<u8>, r: &RowsReply) {
    put_u64(out, r.scans);
    put_u64(out, r.decompressions);
    put_u64(out, r.rows.len() as u64);
    for &row in &r.rows {
        put_u64(out, row);
    }
}

fn decode_rows(r: &mut Reader<'_>) -> Result<RowsReply, WireError> {
    let scans = r.u64()?;
    let decompressions = r.u64()?;
    let count = r.u64()?;
    // Each row id occupies 8 payload bytes; bound the allocation by
    // what the frame can actually hold before trusting the count.
    if count > (r.remaining() / 8) as u64 {
        return Err(WireError::Malformed("row count exceeds payload"));
    }
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push(r.u64()?);
    }
    Ok(RowsReply {
        scans,
        decompressions,
        rows,
    })
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Request(Request::Ping) => KIND_PING,
            Message::Request(Request::Query { .. }) => KIND_QUERY,
            Message::Request(Request::Batch { .. }) => KIND_BATCH,
            Message::Request(Request::Stats(_)) => KIND_STATS,
            Message::Request(Request::SlowLog) => KIND_SLOWLOG,
            Message::Request(Request::Reload { .. }) => KIND_RELOAD,
            Message::Request(Request::Shutdown) => KIND_SHUTDOWN,
            Message::Request(Request::Ingest { .. }) => KIND_INGEST,
            Message::Request(Request::TableQuery { .. }) => KIND_TABLE_QUERY,
            Message::Response(Response::Pong) => KIND_PONG,
            Message::Response(Response::Rows(_)) => KIND_ROWS,
            Message::Response(Response::BatchRows(_)) => KIND_BATCH_ROWS,
            Message::Response(Response::Stats { .. }) => KIND_STATS_REPLY,
            Message::Response(Response::Ok) => KIND_OK,
            Message::Response(Response::Degraded { .. }) => KIND_DEGRADED,
            Message::Response(Response::Ingested { .. }) => KIND_INGESTED,
            Message::Response(Response::Count { .. }) => KIND_COUNT,
            Message::Response(Response::Error { .. }) => KIND_ERROR,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Request(Request::Ping)
            | Message::Request(Request::Shutdown)
            | Message::Request(Request::SlowLog)
            | Message::Response(Response::Pong)
            | Message::Response(Response::Ok) => {}
            Message::Request(Request::Query {
                domain,
                deadline_ms,
                predicate,
            }) => {
                out.push(domain_to_u8(*domain));
                put_u32(out, *deadline_ms);
                out.extend_from_slice(predicate.as_bytes());
            }
            Message::Request(Request::Batch {
                domain,
                deadline_ms,
                predicates,
            }) => {
                out.push(domain_to_u8(*domain));
                put_u32(out, *deadline_ms);
                put_u32(out, predicates.len() as u32);
                for p in predicates {
                    put_u32(out, p.len() as u32);
                    out.extend_from_slice(p.as_bytes());
                }
            }
            Message::Request(Request::Stats(format)) => {
                out.push(match format {
                    StatsFormat::Prometheus => 0,
                    StatsFormat::Json => 1,
                });
            }
            Message::Request(Request::Reload { path }) => {
                out.extend_from_slice(path.as_bytes());
            }
            Message::Request(Request::Ingest { values }) => {
                put_u32(out, values.len() as u32);
                for &v in values {
                    put_u64(out, v);
                }
            }
            Message::Request(Request::TableQuery {
                domain,
                deadline_ms,
                count_only,
                text,
            }) => {
                out.push(domain_to_u8(*domain));
                put_u32(out, *deadline_ms);
                out.push(u8::from(*count_only));
                out.extend_from_slice(text.as_bytes());
            }
            Message::Response(Response::Rows(rows)) => encode_rows(out, rows),
            Message::Response(Response::BatchRows(all)) => {
                put_u32(out, all.len() as u32);
                for rows in all {
                    encode_rows(out, rows);
                }
            }
            Message::Response(Response::Stats { text }) => {
                out.extend_from_slice(text.as_bytes());
            }
            Message::Response(Response::Degraded {
                missing_shards,
                replies,
            }) => {
                put_u32(out, missing_shards.len() as u32);
                for &shard in missing_shards {
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                put_u32(out, replies.len() as u32);
                for rows in replies {
                    encode_rows(out, rows);
                }
            }
            Message::Response(Response::Ingested {
                appended,
                delta_rows,
                total_rows,
            }) => {
                put_u64(out, *appended);
                put_u64(out, *delta_rows);
                put_u64(out, *total_rows);
            }
            Message::Response(Response::Count {
                count,
                scans,
                decompressions,
            }) => {
                put_u64(out, *count);
                put_u64(out, *scans);
                put_u64(out, *decompressions);
            }
            Message::Response(Response::Error { code, message }) => {
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
        }
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            KIND_PING => Message::Request(Request::Ping),
            KIND_SHUTDOWN => Message::Request(Request::Shutdown),
            KIND_SLOWLOG => Message::Request(Request::SlowLog),
            KIND_PONG => Message::Response(Response::Pong),
            KIND_OK => Message::Response(Response::Ok),
            KIND_QUERY => {
                let domain = domain_from_u8(r.u8()?)?;
                let deadline_ms = r.u32()?;
                let predicate = r.rest_utf8()?;
                Message::Request(Request::Query {
                    domain,
                    deadline_ms,
                    predicate,
                })
            }
            KIND_BATCH => {
                let domain = domain_from_u8(r.u8()?)?;
                let deadline_ms = r.u32()?;
                let count = r.u32()?;
                if count > MAX_BATCH {
                    return Err(WireError::Malformed("batch count exceeds cap"));
                }
                let mut predicates = Vec::with_capacity(count.min(64) as usize);
                for _ in 0..count {
                    predicates.push(r.sized_utf8()?);
                }
                Message::Request(Request::Batch {
                    domain,
                    deadline_ms,
                    predicates,
                })
            }
            KIND_STATS => {
                let format = match r.u8()? {
                    0 => StatsFormat::Prometheus,
                    1 => StatsFormat::Json,
                    _ => return Err(WireError::Malformed("unknown stats format")),
                };
                Message::Request(Request::Stats(format))
            }
            KIND_RELOAD => Message::Request(Request::Reload {
                path: r.rest_utf8()?,
            }),
            KIND_INGEST => {
                let count = r.u32()?;
                if count > MAX_INGEST {
                    return Err(WireError::Malformed("ingest count exceeds cap"));
                }
                // Each value occupies 8 payload bytes; bound the
                // allocation by the bytes actually present.
                if count as usize > r.remaining() / 8 {
                    return Err(WireError::Malformed("ingest count exceeds payload"));
                }
                let mut values = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    values.push(r.u64()?);
                }
                Message::Request(Request::Ingest { values })
            }
            KIND_TABLE_QUERY => {
                let domain = domain_from_u8(r.u8()?)?;
                let deadline_ms = r.u32()?;
                let count_only = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("unknown count-only flag")),
                };
                let text = r.rest_utf8()?;
                Message::Request(Request::TableQuery {
                    domain,
                    deadline_ms,
                    count_only,
                    text,
                })
            }
            KIND_ROWS => Message::Response(Response::Rows(decode_rows(&mut r)?)),
            KIND_BATCH_ROWS => {
                let count = r.u32()?;
                if count > MAX_BATCH {
                    return Err(WireError::Malformed("batch count exceeds cap"));
                }
                let mut all = Vec::with_capacity(count.min(64) as usize);
                for _ in 0..count {
                    all.push(decode_rows(&mut r)?);
                }
                Message::Response(Response::BatchRows(all))
            }
            KIND_STATS_REPLY => Message::Response(Response::Stats {
                text: r.rest_utf8()?,
            }),
            KIND_DEGRADED => {
                let n_missing = r.u32()?;
                if n_missing > MAX_SHARDS {
                    return Err(WireError::Malformed("missing-shard count exceeds cap"));
                }
                if n_missing as usize > r.remaining() / 2 {
                    return Err(WireError::Malformed("missing-shard count exceeds payload"));
                }
                let mut missing_shards = Vec::with_capacity(n_missing as usize);
                for _ in 0..n_missing {
                    missing_shards.push(r.u16()?);
                }
                let count = r.u32()?;
                if count > MAX_BATCH {
                    return Err(WireError::Malformed("batch count exceeds cap"));
                }
                let mut replies = Vec::with_capacity(count.min(64) as usize);
                for _ in 0..count {
                    replies.push(decode_rows(&mut r)?);
                }
                Message::Response(Response::Degraded {
                    missing_shards,
                    replies,
                })
            }
            KIND_INGESTED => {
                let appended = r.u64()?;
                let delta_rows = r.u64()?;
                let total_rows = r.u64()?;
                Message::Response(Response::Ingested {
                    appended,
                    delta_rows,
                    total_rows,
                })
            }
            KIND_COUNT => {
                let count = r.u64()?;
                let scans = r.u64()?;
                let decompressions = r.u64()?;
                Message::Response(Response::Count {
                    count,
                    scans,
                    decompressions,
                })
            }
            KIND_ERROR => {
                let code = ErrorCode::from_u16(r.u16()?);
                let message = r.rest_utf8()?;
                Message::Response(Response::Error { code, message })
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        r.done()?;
        Ok(msg)
    }
}

/// Streaming CRC-32 over a sequence of slices (extension + payload on
/// v2 frames) without concatenating them.
fn crc32_over(parts: &[&[u8]]) -> u32 {
    let mut h = bix_storage::Crc32::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

/// Serialises the v2 extension (length byte + body): the 11-byte
/// routing layout, or the 36-byte trace-carrying layout when the frame
/// has a trace context or ships spans.
fn encode_extension(frame: &Frame) -> Vec<u8> {
    let traced = frame.trace_extended();
    let mut ext = Vec::with_capacity(1 + EXT_LEN_TRACE as usize);
    ext.push(if traced { EXT_LEN_TRACE } else { EXT_LEN });
    ext.push(frame.flags);
    ext.extend_from_slice(&frame.shard_id.to_le_bytes());
    ext.extend_from_slice(&frame.epoch.to_le_bytes());
    if traced {
        ext.extend_from_slice(&frame.trace.trace_id.to_le_bytes());
        ext.extend_from_slice(&frame.trace.parent_span.to_le_bytes());
        let mut trace_flags = 0u8;
        if frame.trace.sampled {
            trace_flags |= TRACE_FLAG_SAMPLED;
        }
        if !frame.spans.is_empty() {
            trace_flags |= TRACE_FLAG_SPANS;
        }
        ext.push(trace_flags);
    }
    ext
}

/// Decodes a v2 extension body (its length byte already validated as
/// one of the known layouts) into `frame`'s routing and trace fields.
/// Returns whether the payload begins with a spans section.
fn apply_extension(frame: &mut Frame, body: &[u8]) -> bool {
    debug_assert!(body.len() == EXT_LEN as usize || body.len() == EXT_LEN_TRACE as usize);
    frame.flags = body[0];
    frame.shard_id = u16::from_le_bytes(body[1..3].try_into().unwrap());
    frame.epoch = u64::from_le_bytes(body[3..11].try_into().unwrap());
    if body.len() == EXT_LEN_TRACE as usize {
        frame.trace.trace_id = u128::from_le_bytes(body[11..27].try_into().unwrap());
        frame.trace.parent_span = u64::from_le_bytes(body[27..35].try_into().unwrap());
        let trace_flags = body[35];
        frame.trace.sampled = trace_flags & TRACE_FLAG_SAMPLED != 0;
        trace_flags & TRACE_FLAG_SPANS != 0
    } else {
        false
    }
}

/// Smallest possible encoded span: parent + start + end + empty name
/// length + attr count. Bounds the span-count allocation.
const SPAN_MIN_BYTES: usize = 4 + 8 + 8 + 4 + 2;

/// Serialises a span forest (creation order; parents precede children)
/// as the frame's spans section. Spans past [`MAX_SPANS`] and
/// attributes past [`MAX_SPAN_ATTRS`] are dropped from the tail —
/// truncation is safe because parent links only ever point backwards.
fn encode_spans(out: &mut Vec<u8>, spans: &[SpanRecord]) {
    let spans = &spans[..spans.len().min(MAX_SPANS as usize)];
    put_u32(out, spans.len() as u32);
    for s in spans {
        put_u32(out, s.parent.map_or(u32::MAX, SpanId::raw));
        put_u64(out, s.start_ns);
        put_u64(out, s.end_ns);
        put_u32(out, s.name.len() as u32);
        out.extend_from_slice(s.name.as_bytes());
        let attrs = &s.attrs[..s.attrs.len().min(MAX_SPAN_ATTRS as usize)];
        out.extend_from_slice(&(attrs.len() as u16).to_le_bytes());
        for (k, v) in attrs {
            put_u32(out, k.len() as u32);
            out.extend_from_slice(k.as_bytes());
            put_u32(out, v.len() as u32);
            out.extend_from_slice(v.as_bytes());
        }
    }
}

/// Parses the spans section off the front of `payload`, returning the
/// spans and the remaining message body. Counts are bounded by the
/// bytes actually present before any allocation, and every parent link
/// must point at an earlier span — a forest that cannot cycle.
fn decode_spans(payload: &[u8]) -> Result<(Vec<SpanRecord>, &[u8]), WireError> {
    let mut r = Reader::new(payload);
    let count = r.u32()?;
    if count > MAX_SPANS {
        return Err(WireError::Malformed("span count exceeds cap"));
    }
    if count as usize > r.remaining() / SPAN_MIN_BYTES {
        return Err(WireError::Malformed("span count exceeds payload"));
    }
    let mut spans = Vec::with_capacity(count as usize);
    for i in 0..count {
        let parent_raw = r.u32()?;
        let parent = if parent_raw == u32::MAX {
            None
        } else if parent_raw < i {
            Some(SpanId::from_raw(parent_raw))
        } else {
            return Err(WireError::Malformed("span parent must precede child"));
        };
        let start_ns = r.u64()?;
        let end_ns = r.u64()?;
        let name = r.sized_utf8()?;
        let n_attrs = r.u16()?;
        if n_attrs > MAX_SPAN_ATTRS {
            return Err(WireError::Malformed("span attr count exceeds cap"));
        }
        if n_attrs as usize > r.remaining() / 8 {
            return Err(WireError::Malformed("span attr count exceeds payload"));
        }
        let mut attrs = Vec::with_capacity(n_attrs as usize);
        for _ in 0..n_attrs {
            let k = r.sized_utf8()?;
            let v = r.sized_utf8()?;
            attrs.push((k, v));
        }
        spans.push(SpanRecord {
            name,
            parent,
            start_ns,
            end_ns,
            attrs,
        });
    }
    Ok((spans, &payload[r.pos..]))
}

/// Encodes a frame into a fresh byte buffer (header [+ extension] +
/// payload + CRC). Frames with zero routing metadata encode as v1.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    if !frame.spans.is_empty() {
        encode_spans(&mut payload, &frame.spans);
    }
    frame.msg.encode_payload(&mut payload);
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload exceeds wire cap"
    );
    let extended = frame.extended();
    let ext = encode_extension(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + ext.len() + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(if extended { VERSION_EXT } else { VERSION });
    out.push(frame.msg.kind());
    put_u64(&mut out, frame.request_id);
    put_u32(&mut out, payload.len() as u32);
    let crc = if extended {
        out.extend_from_slice(&ext);
        crc32_over(&[&ext, &payload])
    } else {
        crc32(&payload)
    };
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc);
    out
}

/// Decodes one frame from the front of `buf`, returning it with the
/// number of bytes consumed. Fails with [`WireError::Truncated`] if the
/// buffer ends early; never panics on any input.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf[2];
    if version != VERSION && version != VERSION_EXT {
        return Err(WireError::BadVersion(version));
    }
    let kind = buf[3];
    let request_id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload_len = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize(payload_len));
    }
    // V2 frames interpose the routing extension between header and
    // payload; its length byte is validated before any offset math.
    let ext_bytes = if version == VERSION_EXT {
        let &ext_len = buf.get(HEADER_LEN).ok_or(WireError::Truncated)?;
        if ext_len != EXT_LEN && ext_len != EXT_LEN_TRACE {
            return Err(WireError::BadExtension(ext_len));
        }
        1 + ext_len as usize
    } else {
        0
    };
    let payload_at = HEADER_LEN + ext_bytes;
    let total = payload_at + payload_len as usize + 4;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &buf[payload_at..payload_at + payload_len as usize];
    let crc = u32::from_le_bytes(buf[total - 4..total].try_into().unwrap());
    let want = if version == VERSION_EXT {
        crc32_over(&[&buf[HEADER_LEN..payload_at], payload])
    } else {
        crc32(payload)
    };
    if crc != want {
        return Err(WireError::CrcMismatch);
    }
    let mut frame = Frame::new(request_id, Message::Request(Request::Ping));
    let has_spans = if version == VERSION_EXT {
        apply_extension(&mut frame, &buf[HEADER_LEN + 1..payload_at])
    } else {
        false
    };
    let (spans, body) = if has_spans {
        decode_spans(payload)?
    } else {
        (Vec::new(), payload)
    };
    frame.spans = spans;
    frame.msg = Message::decode_payload(kind, body)?;
    Ok((frame, total))
}

/// Writes one frame to a transport, returning the bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one frame from a transport, returning it with the bytes read.
///
/// Header fields are validated before the payload allocation, so a
/// hostile peer cannot force an oversized buffer; a CRC mismatch or
/// grammar violation surfaces as a typed [`WireError`].
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = header[2];
    if version != VERSION && version != VERSION_EXT {
        return Err(WireError::BadVersion(version));
    }
    let kind = header[3];
    let request_id = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize(payload_len));
    }
    let mut ext = [0u8; 1 + EXT_LEN_TRACE as usize];
    let ext_bytes = if version == VERSION_EXT {
        r.read_exact(&mut ext[..1])?;
        if ext[0] != EXT_LEN && ext[0] != EXT_LEN_TRACE {
            return Err(WireError::BadExtension(ext[0]));
        }
        let n = 1 + ext[0] as usize;
        r.read_exact(&mut ext[1..n])?;
        n
    } else {
        0
    };
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = if version == VERSION_EXT {
        crc32_over(&[&ext[..ext_bytes], &payload])
    } else {
        crc32(&payload)
    };
    if u32::from_le_bytes(trailer) != want {
        return Err(WireError::CrcMismatch);
    }
    let total = HEADER_LEN + ext_bytes + payload_len as usize + 4;
    let mut frame = Frame::new(request_id, Message::Request(Request::Ping));
    let has_spans = if version == VERSION_EXT {
        apply_extension(&mut frame, &ext[1..ext_bytes])
    } else {
        false
    };
    let (spans, body) = if has_spans {
        decode_spans(&payload)?
    } else {
        (Vec::new(), payload.as_slice())
    };
    frame.spans = spans;
    frame.msg = Message::decode_payload(kind, body)?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::new(0, Message::Request(Request::Ping)),
            Frame::new(
                7,
                Message::Request(Request::Query {
                    domain: EvalDomain::Compressed,
                    deadline_ms: 250,
                    predicate: "3..17".into(),
                }),
            ),
            Frame::new(
                8,
                Message::Request(Request::Batch {
                    domain: EvalDomain::Auto,
                    deadline_ms: 0,
                    predicates: vec!["=4".into(), "in:1,2,3".into(), "!0..9".into()],
                }),
            ),
            Frame::new(9, Message::Request(Request::Stats(StatsFormat::Json))),
            Frame::new(
                10,
                Message::Request(Request::Reload {
                    path: "/tmp/x.bix".into(),
                }),
            ),
            Frame::new(11, Message::Request(Request::Shutdown)),
            Frame::new(18, Message::Request(Request::SlowLog)),
            Frame::new(
                19,
                Message::Request(Request::Ingest {
                    values: vec![0, 7, 7, 199, 3],
                }),
            ),
            Frame::new(
                21,
                Message::Request(Request::TableQuery {
                    domain: EvalDomain::Auto,
                    deadline_ms: 500,
                    count_only: false,
                    text: "region in {0, 1} and (discount >= 7 or not store = 12)".into(),
                }),
            ),
            Frame::new(
                22,
                Message::Request(Request::TableQuery {
                    domain: EvalDomain::Compressed,
                    deadline_ms: 0,
                    count_only: true,
                    text: "store = 3".into(),
                }),
            ),
            Frame::new(12, Message::Response(Response::Pong)),
            Frame::new(
                13,
                Message::Response(Response::Rows(RowsReply {
                    scans: 2,
                    decompressions: 1,
                    rows: vec![0, 5, 1_000_000],
                })),
            ),
            Frame::new(
                14,
                Message::Response(Response::BatchRows(vec![
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![],
                    },
                    RowsReply {
                        scans: 4,
                        decompressions: 2,
                        rows: vec![9, 10],
                    },
                ])),
            ),
            Frame::new(
                15,
                Message::Response(Response::Stats {
                    text: "# HELP x\n".into(),
                }),
            ),
            Frame::new(16, Message::Response(Response::Ok)),
            Frame::new(
                20,
                Message::Response(Response::Ingested {
                    appended: 5,
                    delta_rows: 4096,
                    total_rows: 1_000_000,
                }),
            ),
            Frame::new(
                23,
                Message::Response(Response::Count {
                    count: 12_345,
                    scans: 9,
                    decompressions: 4,
                }),
            ),
            Frame::new(
                17,
                Message::Response(Response::Error {
                    code: ErrorCode::Overloaded,
                    message: "queue full".into(),
                }),
            ),
        ]
    }

    #[test]
    fn round_trip_every_frame_kind() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (got, used) = decode_frame(&bytes).expect("round trip");
            assert_eq!(used, bytes.len());
            assert_eq!(got, frame);
            // Stream decode agrees with slice decode.
            let (got2, n) = read_frame(&mut &bytes[..]).expect("stream decode");
            assert_eq!(n, bytes.len());
            assert_eq!(got2, frame);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn payload_bit_flips_fail_crc() {
        let frame = Frame::new(
            42,
            Message::Request(Request::Query {
                domain: EvalDomain::Auto,
                deadline_ms: 0,
                predicate: "0..10".into(),
            }),
        );
        let bytes = encode_frame(&frame);
        for bit in 0..8 {
            for pos in HEADER_LEN..bytes.len() - 4 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                match decode_frame(&corrupt) {
                    Err(WireError::CrcMismatch) => {}
                    other => panic!("flip at {pos}.{bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversize_claim_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(1, Message::Request(Request::Ping)));
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Oversize(u32::MAX))
        ));
    }

    #[test]
    fn lying_interior_counts_cannot_over_allocate() {
        // A Rows frame claiming u64::MAX rows in an 8-byte payload.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // scans
        put_u64(&mut payload, 0); // decompressions
        put_u64(&mut payload, u64::MAX); // row count lie
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(KIND_ROWS);
        put_u64(&mut bytes, 5);
        put_u32(&mut bytes, payload.len() as u32);
        let crc = crc32(&payload);
        bytes.extend_from_slice(&payload);
        put_u32(&mut bytes, crc);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    /// A frame with non-zero routing metadata, exercising the v2 path.
    fn routed_frame() -> Frame {
        Frame {
            flags: FLAG_ALLOW_DEGRADED,
            shard_id: 3,
            epoch: 41,
            ..Frame::new(
                77,
                Message::Response(Response::Rows(RowsReply {
                    scans: 2,
                    decompressions: 1,
                    rows: vec![5, 9],
                })),
            )
        }
    }

    #[test]
    fn routing_metadata_round_trips_as_version_2() {
        for (flags, shard_id, epoch) in [
            (FLAG_ALLOW_DEGRADED, 0u16, 0u64),
            (0, 7, 0),
            (0, 0, 1),
            (FLAG_ALLOW_DEGRADED, u16::MAX, u64::MAX),
        ] {
            let frame = Frame {
                flags,
                shard_id,
                epoch,
                ..Frame::new(9, Message::Request(Request::Ping))
            };
            let bytes = encode_frame(&frame);
            assert_eq!(bytes[2], VERSION_EXT);
            assert_eq!(bytes[HEADER_LEN], EXT_LEN);
            let (got, used) = decode_frame(&bytes).expect("v2 round trip");
            assert_eq!(used, bytes.len());
            assert_eq!(got, frame);
            let (got2, n) = read_frame(&mut &bytes[..]).expect("v2 stream decode");
            assert_eq!(n, bytes.len());
            assert_eq!(got2, frame);
        }
    }

    #[test]
    fn zero_routing_metadata_still_encodes_as_version_1() {
        let bytes = encode_frame(&Frame::new(5, Message::Request(Request::Ping)));
        assert_eq!(bytes[2], VERSION);
        let (got, _) = decode_frame(&bytes).expect("v1 decode");
        assert_eq!((got.flags, got.shard_id, got.epoch), (0, 0, 0));
    }

    #[test]
    fn degraded_reply_round_trips() {
        let frame = Frame::new(
            4,
            Message::Response(Response::Degraded {
                missing_shards: vec![1, 3],
                replies: vec![
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![2, 4, 1000],
                    },
                    RowsReply {
                        scans: 0,
                        decompressions: 0,
                        rows: vec![],
                    },
                ],
            }),
        );
        let bytes = encode_frame(&frame);
        let (got, _) = decode_frame(&bytes).expect("degraded round trip");
        assert_eq!(got, frame);
    }

    #[test]
    fn extension_bit_flips_fail_crc() {
        let bytes = encode_frame(&routed_frame());
        // Every byte of the extension body (flags, shard id, epoch) is
        // CRC-covered; flipping any of them must be caught.
        for pos in HEADER_LEN + 1..HEADER_LEN + 1 + EXT_LEN as usize {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    matches!(decode_frame(&corrupt), Err(WireError::CrcMismatch)),
                    "ext flip at {pos}.{bit} must fail the CRC"
                );
            }
        }
    }

    #[test]
    fn unknown_extension_length_is_a_typed_error_not_a_skip() {
        let good = encode_frame(&routed_frame());
        for bad_len in [0u8, 1, EXT_LEN - 1, EXT_LEN + 1, 64, u8::MAX] {
            let mut bytes = good.clone();
            bytes[HEADER_LEN] = bad_len;
            assert!(
                matches!(
                    decode_frame(&bytes),
                    Err(WireError::BadExtension(n)) if n == bad_len
                ),
                "ext_len {bad_len} must be rejected"
            );
            assert!(
                matches!(
                    read_frame(&mut &bytes[..]),
                    Err(WireError::BadExtension(n)) if n == bad_len
                ),
                "stream decode must reject ext_len {bad_len} too"
            );
        }
    }

    #[test]
    fn v2_truncations_are_typed_errors() {
        let bytes = encode_frame(&routed_frame());
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// A sampled reply frame carrying a trace context and a span
    /// forest, exercising the 36-byte extension and the spans section.
    fn traced_frame() -> Frame {
        let mut frame = Frame::new(
            91,
            Message::Response(Response::Rows(RowsReply {
                scans: 1,
                decompressions: 0,
                rows: vec![3, 8],
            })),
        );
        frame.shard_id = 2;
        frame.epoch = 7;
        frame.trace = TraceContext {
            trace_id: 0xfeed_f00d_dead_beef_0123_4567_89ab_cdef,
            parent_span: 42,
            sampled: true,
        };
        frame.spans = vec![
            SpanRecord {
                name: "serve shard=2".into(),
                parent: None,
                start_ns: 10,
                end_ns: 900,
                attrs: vec![("queue_wait_ns".into(), "5".into())],
            },
            SpanRecord {
                name: "batch".into(),
                parent: Some(SpanId::from_raw(0)),
                start_ns: 20,
                end_ns: 800,
                attrs: Vec::new(),
            },
            SpanRecord {
                name: "query 0".into(),
                parent: Some(SpanId::from_raw(1)),
                start_ns: 30,
                end_ns: 700,
                attrs: vec![("scans".into(), "1".into())],
            },
        ];
        frame
    }

    #[test]
    fn trace_context_round_trips_on_the_36_byte_extension() {
        for (trace_id, parent_span, sampled) in [
            (1u128, 0u64, false),
            (u128::MAX, u64::MAX, true),
            (0x0123_4567_89ab_cdef_u128 << 64 | 0xff, 9, true),
        ] {
            let mut frame = Frame::new(21, Message::Request(Request::Ping));
            frame.trace = TraceContext {
                trace_id,
                parent_span,
                sampled,
            };
            let bytes = encode_frame(&frame);
            assert_eq!(bytes[2], VERSION_EXT);
            assert_eq!(bytes[HEADER_LEN], EXT_LEN_TRACE);
            let (got, used) = decode_frame(&bytes).expect("traced round trip");
            assert_eq!(used, bytes.len());
            assert_eq!(got, frame);
            let (got2, n) = read_frame(&mut &bytes[..]).expect("traced stream decode");
            assert_eq!(n, bytes.len());
            assert_eq!(got2, frame);
        }
    }

    #[test]
    fn span_forest_round_trips_through_the_spans_section() {
        let frame = traced_frame();
        let bytes = encode_frame(&frame);
        assert_eq!(bytes[HEADER_LEN], EXT_LEN_TRACE);
        let (got, used) = decode_frame(&bytes).expect("span round trip");
        assert_eq!(used, bytes.len());
        assert_eq!(got.spans, frame.spans);
        assert_eq!(got, frame);
        let (got2, _) = read_frame(&mut &bytes[..]).expect("span stream decode");
        assert_eq!(got2, frame);
    }

    #[test]
    fn routing_only_frames_keep_the_short_extension() {
        // A trace-free routed frame must stay on the 11-byte layout —
        // pre-trace peers keep decoding it unchanged.
        let bytes = encode_frame(&routed_frame());
        assert_eq!(bytes[HEADER_LEN], EXT_LEN);
        let payload_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        assert_eq!(
            bytes.len(),
            HEADER_LEN + 1 + EXT_LEN as usize + payload_len + 4
        );
    }

    #[test]
    fn trace_extension_bit_flips_fail_crc() {
        // All 36 extension bytes — routing, trace id, parent span, and
        // the trace-flags byte — are CRC-covered.
        let bytes = encode_frame(&traced_frame());
        for pos in HEADER_LEN + 1..HEADER_LEN + 1 + EXT_LEN_TRACE as usize {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    matches!(decode_frame(&corrupt), Err(WireError::CrcMismatch)),
                    "trace ext flip at {pos}.{bit} must fail the CRC"
                );
            }
        }
    }

    #[test]
    fn traced_truncations_are_typed_errors() {
        let bytes = encode_frame(&traced_frame());
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn forward_span_parents_are_rejected_typed() {
        // Parents must precede children on the wire; a forward link is
        // hostile input (a real tracer cannot produce one) and must be
        // rejected, not grafted into a cycle.
        let mut frame = traced_frame();
        frame.spans[1].parent = Some(SpanId::from_raw(9));
        let bytes = encode_frame(&frame);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Malformed(m)) if m.contains("precede")
        ));
    }

    #[test]
    fn span_tail_truncates_at_the_cap() {
        // Encoding more than MAX_SPANS drops the tail (safe: parents
        // only point backwards) and the result still decodes.
        let mut frame = traced_frame();
        frame.spans = (0..MAX_SPANS + 10)
            .map(|i| SpanRecord {
                name: "s".into(),
                parent: if i == 0 {
                    None
                } else {
                    Some(SpanId::from_raw(i - 1))
                },
                start_ns: u64::from(i),
                end_ns: u64::from(i) + 1,
                attrs: Vec::new(),
            })
            .collect();
        let bytes = encode_frame(&frame);
        let (got, _) = decode_frame(&bytes).expect("capped forest decodes");
        assert_eq!(got.spans.len(), MAX_SPANS as usize);
        assert_eq!(got.spans, frame.spans[..MAX_SPANS as usize]);
    }

    #[test]
    fn wrong_magic_version_and_kind_are_typed() {
        let good = encode_frame(&Frame::new(2, Message::Request(Request::Ping)));
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic)));
        let mut bad = good.clone();
        bad[2] = 9;
        assert!(matches!(decode_frame(&bad), Err(WireError::BadVersion(9))));
        let mut bad = good.clone();
        bad[3] = 0x40;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::UnknownKind(0x40))
        ));
    }
}
