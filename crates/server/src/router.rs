//! Scatter-gather routing over row-range shards.
//!
//! A [`Router`] fronts N shard servers, each serving a contiguous slice
//! of the global row space in shard order: shard 0 owns rows
//! `[0, r0)`, shard 1 owns `[r0, r0+r1)`, and so on. Fanning a query
//! out and merging is therefore cheap concatenation — each shard's
//! local row ids are offset by the prefix sum of earlier shards' row
//! counts ([`merge_replies`]) and appended; no sorting, no dedup.
//!
//! The router is itself a [`ServeHandler`], so it rides the same
//! accept/admission/worker machinery as a shard: admission control,
//! typed overload rejections, drain semantics, and metrics come for
//! free, and a client cannot tell a router from a monolith (until it
//! asks for `Stats`, which returns the aggregated fleet view).
//!
//! Failure handling, in order of application:
//!
//! 1. **Circuit breaker** — shards the [`Supervisor`] holds `Down` are
//!    not dialled; they are "missing" instantly, costing none of the
//!    request's deadline budget.
//! 2. **Bounded per-shard retry** — transient failures (connect, I/O,
//!    truncated/garbled replies, `Overloaded`) are retried on a fresh
//!    connection with jittered exponential backoff, within what remains
//!    of the request deadline.
//! 3. **Epoch fencing** — every shard stamps replies with its reload
//!    epoch. A reply whose epoch differs from the routing snapshot's
//!    expectation is *stale*: it is never merged; the router refreshes
//!    the shard's shape and re-runs the fan-out (bounded by
//!    [`RouterConfig::epoch_retries`]).
//! 4. **Typed partial results** — if shards are still missing after
//!    retries: requests that set `FLAG_ALLOW_DEGRADED` get
//!    [`Response::Degraded`] listing the missing shards; all others get
//!    a typed `Unavailable` (or `DeadlineExceeded`) error. Silently
//!    wrong answers are not an outcome.
//!
//! The shard transport is pluggable ([`Router::with_dialer`]) so chaos
//! tests splice a [`FaultyStream`](crate::FaultyStream) under real
//! router traffic.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bix_core::MetricsRegistry;
use bix_telemetry::json::{self, Json};
use bix_telemetry::{
    unix_ms_now, Counter, Gauge, SlowLog, SlowQuery, SpanId, TraceContext, Tracer,
};

use crate::client::{Client, ClientError, RetryPolicy};
use crate::protocol::{ErrorCode, Request, Response, RowsReply, StatsFormat};
use crate::server::{RequestMeta, ServeHandler};
use crate::supervisor::{ShardState, Supervisor, SupervisorConfig};

/// A byte transport a shard link can run over. Blanket-implemented;
/// `TcpStream` in production, in-memory or fault-injecting streams in
/// tests.
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Dials shard `i` at `addr`, returning a fresh transport.
pub type ShardDialer = Arc<dyn Fn(usize, &str) -> io::Result<Box<dyn Transport>> + Send + Sync>;

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Deadline for requests that do not carry one, in ms (0 = none).
    pub default_deadline_ms: u64,
    /// Per-shard transient retry policy (budgeted inside the request
    /// deadline).
    pub retry: RetryPolicy,
    /// Whole-fan-out retries when a shard reply is epoch-stale.
    pub epoch_retries: u32,
    /// Circuit-breaker thresholds.
    pub supervisor: SupervisorConfig,
    /// Health-ping cadence; `Duration::ZERO` disables the prober (tests
    /// drive the supervisor directly).
    pub health_interval: Duration,
    /// Connect + socket read/write budget for one shard exchange.
    pub io_timeout: Duration,
    /// Fan-outs at least this slow (wall ms) enter the router's
    /// slow-query log.
    pub slow_threshold_ms: u64,
    /// Router slow-query log capacity.
    pub slow_log_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            default_deadline_ms: 0,
            retry: RetryPolicy::standard(0x517e),
            epoch_retries: 3,
            supervisor: SupervisorConfig::default(),
            health_interval: Duration::from_millis(200),
            io_timeout: Duration::from_secs(5),
            slow_threshold_ms: 250,
            slow_log_capacity: 128,
        }
    }
}

/// One shard's contribution to a batch, positioned in the global row
/// space. The input type of [`merge_replies`].
#[derive(Debug, Clone)]
pub struct ShardReply {
    /// Global row id of this shard's first local row (prefix sum of
    /// earlier shards' row counts).
    pub row_base: u64,
    /// Per-predicate replies, local row ids.
    pub replies: Vec<RowsReply>,
}

/// Merges per-shard batch replies into the monolith's answer: for each
/// predicate, every shard's local row ids are offset by that shard's
/// `row_base` and concatenated in the order given.
///
/// Callers must pass shards in ascending `row_base` order (shard
/// order); local ids are sorted, so the concatenation is globally
/// sorted without a merge sort. Scan and decompression counts sum.
/// This is a pure function so its equivalence to monolith evaluation is
/// property-testable without sockets.
pub fn merge_replies(n_predicates: usize, shards: &[ShardReply]) -> Vec<RowsReply> {
    let mut merged: Vec<RowsReply> = (0..n_predicates)
        .map(|_| RowsReply {
            scans: 0,
            decompressions: 0,
            rows: Vec::new(),
        })
        .collect();
    for shard in shards {
        for (q, reply) in shard.replies.iter().enumerate() {
            let out = &mut merged[q];
            out.scans += reply.scans;
            out.decompressions += reply.decompressions;
            out.rows
                .extend(reply.rows.iter().map(|&r| r + shard.row_base));
        }
    }
    merged
}

/// Per-shard metric handles, indexed like the shard list.
struct ShardMetrics {
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    failures: Arc<Counter>,
    breaker: Arc<Gauge>,
    epoch: Arc<Gauge>,
    rows: Arc<Gauge>,
}

struct RouterMetrics {
    fanouts: Arc<Counter>,
    degraded: Arc<Counter>,
    unavailable: Arc<Counter>,
    stale_epoch_retries: Arc<Counter>,
    shards: Vec<ShardMetrics>,
}

impl RouterMetrics {
    fn new(registry: &MetricsRegistry, n_shards: usize) -> RouterMetrics {
        let shards = (0..n_shards)
            .map(|i| ShardMetrics {
                retries: registry.counter(
                    &format!("bix_route_shard_{i}_retries_total"),
                    "Transient retries against this shard",
                ),
                timeouts: registry.counter(
                    &format!("bix_route_shard_{i}_timeouts_total"),
                    "Shard exchanges that timed out",
                ),
                failures: registry.counter(
                    &format!("bix_route_shard_{i}_failures_total"),
                    "Shard exchanges that failed after retries",
                ),
                breaker: registry.gauge(
                    &format!("bix_route_shard_{i}_breaker_state"),
                    "Circuit breaker: 0 up, 1 half-open, 2 down",
                ),
                epoch: registry.gauge(
                    &format!("bix_route_shard_{i}_epoch"),
                    "Last observed reload epoch",
                ),
                rows: registry.gauge(
                    &format!("bix_route_shard_{i}_rows"),
                    "Rows served by this shard",
                ),
            })
            .collect();
        RouterMetrics {
            fanouts: registry.counter("bix_route_fanouts_total", "Requests fanned out to shards"),
            degraded: registry.counter(
                "bix_route_degraded_total",
                "Requests answered with partial (degraded) results",
            ),
            unavailable: registry.counter(
                "bix_route_unavailable_total",
                "Requests failed because shards were unreachable",
            ),
            stale_epoch_retries: registry.counter(
                "bix_route_stale_epoch_retries_total",
                "Fan-outs re-run because a shard reply was epoch-stale",
            ),
            shards,
        }
    }
}

/// Why one shard produced no usable reply for a fan-out.
#[derive(Debug)]
enum ShardFailure {
    /// Breaker open — never dialled.
    Down,
    /// Transport/typed failure after bounded retries.
    Failed(ClientError),
}

/// The request body a fan-out sends to every shard. Row-partitioned
/// shards all receive the same body; only the merge differs.
#[derive(Clone, Copy)]
enum LegRequest<'a> {
    /// Single-index predicate batch ([`Request::Batch`] on the wire).
    Batch(&'a [String]),
    /// Multi-attribute table query ([`Request::TableQuery`]).
    Table { text: &'a str, count_only: bool },
}

impl LegRequest<'_> {
    /// Replies each shard contributes (merge width).
    fn n_replies(&self) -> usize {
        match self {
            LegRequest::Batch(predicates) => predicates.len(),
            LegRequest::Table { .. } => 1,
        }
    }
}

/// What one shard answered with.
enum LegReply {
    /// Per-predicate row lists (batch, or a row-returning table query).
    Rows(Vec<RowsReply>),
    /// A COUNT-pushdown answer: no row ids crossed the wire.
    Count {
        count: u64,
        scans: u64,
        decompressions: u64,
    },
}

/// Outcome of one shard leg of a fan-out.
enum LegOutcome {
    Ok { reply: LegReply },
    Stale { epoch: u64 },
    Missing(ShardFailure),
}

struct RouterInner {
    addrs: Vec<String>,
    config: RouterConfig,
    supervisor: Supervisor,
    registry: MetricsRegistry,
    metrics: RouterMetrics,
    dialer: ShardDialer,
    stop: AtomicBool,
    /// Composite routing generation: sum of last-seen shard epochs.
    /// Changes whenever any shard hot-reloads, so clients of the router
    /// see an epoch bump exactly like clients of a shard would.
    epoch_sum: AtomicU64,
    /// Slow fan-outs (router's own view; shard logs are aggregated on
    /// demand by [`Request::SlowLog`]).
    slow: SlowLog,
}

impl RouterInner {
    fn shard_count(&self) -> usize {
        self.addrs.len()
    }

    /// Publishes breaker/shape gauges for one shard.
    fn publish_shard_gauges(&self, i: usize) {
        let m = &self.metrics.shards[i];
        m.breaker.set(self.supervisor.state(i).as_gauge());
        m.epoch.set(self.supervisor.epoch(i) as f64);
        m.rows.set(self.supervisor.rows(i) as f64);
    }

    fn refresh_epoch_sum(&self) {
        let sum = (0..self.shard_count())
            .map(|i| self.supervisor.epoch(i))
            .sum();
        self.epoch_sum.store(sum, Ordering::Release);
    }

    fn dial(&self, shard: usize) -> io::Result<Box<dyn Transport>> {
        (self.dialer)(shard, &self.addrs[shard])
    }

    /// One request/reply exchange with a shard on a fresh connection.
    /// Returns the reply, the epoch stamped on the reply frame, and
    /// the shard's span forest (empty unless `trace` was sampled).
    fn exchange(
        &self,
        shard: usize,
        req: LegRequest<'_>,
        domain: bix_core::EvalDomain,
        deadline_ms: u32,
        trace: TraceContext,
    ) -> Result<(LegReply, u64, Vec<bix_telemetry::SpanRecord>), ClientError> {
        let transport = self.dial(shard)?;
        let mut client = Client::from_stream(transport);
        client.set_trace(trace);
        let reply = match req {
            LegRequest::Batch(predicates) => {
                LegReply::Rows(client.batch(predicates, domain, deadline_ms)?)
            }
            LegRequest::Table {
                text,
                count_only: false,
            } => LegReply::Rows(vec![client.table_query(text, domain, deadline_ms)?]),
            LegRequest::Table {
                text,
                count_only: true,
            } => {
                let c = client.table_count(text, domain, deadline_ms)?;
                LegReply::Count {
                    count: c.count,
                    scans: c.scans,
                    decompressions: c.decompressions,
                }
            }
        };
        let epoch = client.last_epoch();
        let spans = client.last_spans().to_vec();
        Ok((reply, epoch, spans))
    }

    /// Fetches a shard's stats JSON and updates its remembered shape
    /// (rows gauge + reply epoch). Used at startup, after a stale-epoch
    /// detection, and by the health prober.
    fn learn_shape(&self, shard: usize) -> Result<(), ClientError> {
        let transport = self.dial(shard)?;
        let mut client = Client::from_stream(transport);
        let text = client.stats(StatsFormat::Json)?;
        let epoch = client.last_epoch();
        let rows = parse_rows_gauge(&text).ok_or(ClientError::Unexpected(
            "shard stats missing bix_index_rows gauge",
        ))?;
        self.supervisor.set_shape(shard, epoch, rows);
        self.publish_shard_gauges(shard);
        self.refresh_epoch_sum();
        Ok(())
    }

    /// Runs one shard leg: bounded transient retries inside the request
    /// deadline, epoch check against `expected_epoch`.
    ///
    /// When the request is sampled, the leg records one `leg` span with
    /// an `attempt` child per try; each attempt carries a child trace
    /// context whose parent is the attempt span, so shard-side `serve`
    /// spans graft exactly under the try that produced them.
    #[allow(clippy::too_many_arguments)]
    fn run_leg(
        &self,
        shard: usize,
        req: LegRequest<'_>,
        domain: bix_core::EvalDomain,
        deadline: Option<Instant>,
        expected_epoch: u64,
        tracer: &Tracer,
        parent: Option<SpanId>,
        trace: TraceContext,
    ) -> LegOutcome {
        let m = &self.metrics.shards[shard];
        let policy = &self.config.retry;
        let mut rng = rand::rngs::StdRng::seed_from_u64(policy.seed ^ shard as u64);
        let leg_span = tracer.span(&format!("leg shard={shard}"), parent);
        let leg_id = leg_span.id();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            // Carve this attempt's budget from what remains of the
            // request deadline.
            let budget_ms: u32 = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now()).as_millis();
                    if left == 0 {
                        m.timeouts.inc();
                        m.failures.inc();
                        leg_span.attr("outcome", "deadline");
                        return LegOutcome::Missing(ShardFailure::Failed(ClientError::Server {
                            code: ErrorCode::DeadlineExceeded,
                            message: format!("deadline spent before shard {shard} answered"),
                        }));
                    }
                    left.min(u32::MAX as u128) as u32
                }
                None => 0,
            };
            let attempt_span = tracer.span(&format!("attempt {attempt}"), leg_id);
            let attempt_id = attempt_span.id();
            // Address shard-side spans under this attempt: the shard
            // sees the attempt span as its remote parent.
            let leg_trace = match attempt_id {
                Some(id) => trace.child(u64::from(id.raw())),
                None => trace,
            };
            let outcome = self.exchange(shard, req, domain, budget_ms, leg_trace);
            match outcome {
                Ok((reply, epoch, spans)) => {
                    if let Some(id) = attempt_id {
                        let base_ns = tracer.start_ns(id).unwrap_or(0);
                        tracer.graft(attempt_id, &spans, base_ns);
                    }
                    attempt_span.finish();
                    self.supervisor
                        .record_success(shard, epoch, self.supervisor.rows(shard));
                    if expected_epoch != 0 && epoch != expected_epoch {
                        leg_span.attr("outcome", "stale-epoch");
                        return LegOutcome::Stale { epoch };
                    }
                    return LegOutcome::Ok { reply };
                }
                Err(err) => {
                    attempt_span.attr("error", &err);
                    attempt_span.finish();
                    if let ClientError::Io(e) = &err {
                        if matches!(
                            e.kind(),
                            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                        ) {
                            m.timeouts.inc();
                        }
                    }
                    let transient = err.is_transient();
                    self.supervisor.record_failure(shard);
                    self.publish_shard_gauges(shard);
                    let budget_left = attempt <= policy.max_retries
                        && deadline.is_none_or(|d| Instant::now() < d);
                    if !transient || !budget_left {
                        m.failures.inc();
                        leg_span.attr("outcome", "failed");
                        return LegOutcome::Missing(ShardFailure::Failed(err));
                    }
                    m.retries.inc();
                    let delay = retry_delay(policy, attempt, &mut rng);
                    let backoff = tracer.span(&format!("backoff {attempt}"), leg_id);
                    std::thread::sleep(delay);
                    backoff.finish();
                }
            }
        }
    }

    /// The full scatter-gather: routing snapshot, parallel legs, epoch
    /// fencing with bounded re-runs, merge or typed degradation.
    ///
    /// Count-only table queries are all-or-nothing: a count merged from
    /// a subset of shards is indistinguishable from a full one, so a
    /// missing shard always surfaces as a typed error — the degraded
    /// opt-in never applies.
    fn fan_out(
        &self,
        req: LegRequest<'_>,
        domain: bix_core::EvalDomain,
        deadline_ms: u32,
        meta: &RequestMeta,
    ) -> Response {
        let count_only = matches!(
            req,
            LegRequest::Table {
                count_only: true,
                ..
            }
        );
        let allow_degraded = meta.allow_degraded && !count_only;
        let tracer = &meta.tracer;
        self.metrics.fanouts.inc();
        let n = self.shard_count();
        let effective_ms = if deadline_ms > 0 {
            u64::from(deadline_ms)
        } else {
            self.config.default_deadline_ms
        };
        let deadline =
            (effective_ms > 0).then(|| Instant::now() + Duration::from_millis(effective_ms));
        let fanout_span = tracer.span("fanout", meta.span);
        fanout_span.attr("shards", n);
        fanout_span.attr("predicates", req.n_replies());

        for epoch_round in 0..=self.config.epoch_retries {
            // Routing snapshot: learn any shard shape we have never
            // observed (epoch 0 = never heard), then freeze expected
            // epochs and row bases for this round.
            for i in 0..n {
                if self.supervisor.epoch(i) == 0 && self.supervisor.state(i) != ShardState::Down {
                    let _ = self.learn_shape(i);
                }
            }
            let expected: Vec<u64> = (0..n).map(|i| self.supervisor.epoch(i)).collect();
            if expected.contains(&0) {
                // A shard we have never reached cannot be positioned in
                // the row space, so even a degraded merge would place
                // later shards' rows wrongly. Typed failure, not a guess.
                self.metrics.unavailable.inc();
                let missing: Vec<u16> = expected
                    .iter()
                    .enumerate()
                    .filter(|(_, &e)| e == 0)
                    .map(|(i, _)| i as u16)
                    .collect();
                return Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!(
                        "shards {missing:?} have never been reachable; row layout unknown"
                    ),
                };
            }
            let rows: Vec<u64> = (0..n).map(|i| self.supervisor.rows(i)).collect();

            // Parallel legs: one thread per admitted shard. Each epoch
            // round is its own span so re-fans after a stale reply are
            // visible in the trace, not silently folded into one.
            let round_span = tracer.span(&format!("round {epoch_round}"), fanout_span.id());
            let round_id = round_span.id();
            let trace = meta.trace;
            let mut outcomes: Vec<Option<LegOutcome>> = Vec::new();
            for _ in 0..n {
                outcomes.push(None);
            }
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, slot) in outcomes.iter_mut().enumerate() {
                    if !self.supervisor.admit(i) {
                        *slot = Some(LegOutcome::Missing(ShardFailure::Down));
                        continue;
                    }
                    let expected_epoch = expected[i];
                    handles.push(scope.spawn(move || {
                        *slot = Some(self.run_leg(
                            i,
                            req,
                            domain,
                            deadline,
                            expected_epoch,
                            tracer,
                            round_id,
                            trace,
                        ));
                    }));
                }
                for h in handles {
                    let _ = h.join();
                }
            });
            for i in 0..n {
                self.publish_shard_gauges(i);
            }

            // Epoch fencing: any stale reply poisons the snapshot; its
            // rows are discarded, the shard's shape refreshed, and the
            // whole fan-out re-run against the new table.
            let mut stale = false;
            for (i, outcome) in outcomes.iter().enumerate() {
                if let Some(LegOutcome::Stale { epoch }) = outcome {
                    stale = true;
                    self.metrics.stale_epoch_retries.inc();
                    self.supervisor.set_shape(i, *epoch, 0);
                    let _ = self.learn_shape(i);
                }
            }
            if stale {
                continue;
            }
            self.refresh_epoch_sum();

            // Merge the legs that answered; type the rest. Row replies
            // concatenate with per-shard offsets; counts simply sum —
            // shards partition the row space, so no row is counted twice.
            let mut shard_replies: Vec<ShardReply> = Vec::new();
            let mut count_sum = (0u64, 0u64, 0u64); // (count, scans, decompressions)
            let mut answered = 0usize;
            let mut missing: Vec<u16> = Vec::new();
            let mut failures: Vec<(usize, ShardFailure)> = Vec::new();
            let mut row_base: u64 = 0;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                match outcome.expect("every slot filled") {
                    LegOutcome::Ok {
                        reply: LegReply::Rows(replies),
                    } => {
                        answered += 1;
                        shard_replies.push(ShardReply { row_base, replies });
                    }
                    LegOutcome::Ok {
                        reply:
                            LegReply::Count {
                                count,
                                scans,
                                decompressions,
                            },
                    } => {
                        answered += 1;
                        count_sum.0 += count;
                        count_sum.1 += scans;
                        count_sum.2 += decompressions;
                    }
                    LegOutcome::Stale { .. } => unreachable!("stale handled above"),
                    LegOutcome::Missing(why) => {
                        missing.push(i as u16);
                        failures.push((i, why));
                    }
                }
                row_base += rows[i];
            }
            let merge_span = tracer.span("merge", round_id);
            merge_span.attr("answered", answered);
            let merged = merge_replies(req.n_replies(), &shard_replies);
            merge_span.finish();
            if missing.is_empty() {
                if count_only {
                    return Response::Count {
                        count: count_sum.0,
                        scans: count_sum.1,
                        decompressions: count_sum.2,
                    };
                }
                return Response::BatchRows(merged);
            }
            // A BadQuery verdict is shard-independent: every shard
            // parses the same predicate grammar, so surface it as-is
            // rather than blaming shard availability.
            for (_, why) in &failures {
                if let ShardFailure::Failed(err @ ClientError::Server { code, message }) = why {
                    if *code == ErrorCode::BadQuery {
                        let _ = err; // typed passthrough below
                        return Response::Error {
                            code: ErrorCode::BadQuery,
                            message: message.clone(),
                        };
                    }
                }
            }
            if allow_degraded {
                self.metrics.degraded.inc();
                return Response::Degraded {
                    missing_shards: missing,
                    replies: merged,
                };
            }
            let all_deadline = failures.iter().all(|(_, why)| {
                matches!(
                    why,
                    ShardFailure::Failed(e) if e.is_code(ErrorCode::DeadlineExceeded)
                )
            });
            self.metrics.unavailable.inc();
            return Response::Error {
                code: if all_deadline {
                    ErrorCode::DeadlineExceeded
                } else {
                    ErrorCode::Unavailable
                },
                message: format!("shards {missing:?} unavailable (no degraded opt-in)"),
            };
        }
        self.metrics.unavailable.inc();
        Response::Error {
            code: ErrorCode::Unavailable,
            message: format!(
                "routing table would not settle after {} epoch retries (shards hot-reloading)",
                self.config.epoch_retries
            ),
        }
    }

    /// Aggregated stats: the router's own registry plus each reachable
    /// shard's JSON snapshot, nested so the fleet is one scrape.
    fn aggregated_stats(&self, format: StatsFormat) -> String {
        match format {
            StatsFormat::Prometheus => self.registry.snapshot().to_prometheus(),
            StatsFormat::Json => {
                let mut shard_docs = Vec::new();
                for i in 0..self.shard_count() {
                    let doc = if self.supervisor.state(i) == ShardState::Down {
                        "null".to_string()
                    } else {
                        match self
                            .dial(i)
                            .map(Client::from_stream)
                            .map_err(ClientError::from)
                            .and_then(|mut c| c.stats(StatsFormat::Json))
                        {
                            Ok(text) => text,
                            Err(_) => "null".to_string(),
                        }
                    };
                    shard_docs.push(doc);
                }
                format!(
                    "{{\"router\":{},\"shards\":[{}]}}",
                    self.registry.snapshot().to_json(),
                    shard_docs.join(",")
                )
            }
        }
    }

    /// Aggregated slow-query log: the router's own fan-out captures
    /// plus each reachable shard's log, in shard order (`null` for
    /// shards that are down or unreachable) — same shape discipline as
    /// [`RouterInner::aggregated_stats`].
    fn aggregated_slowlog(&self) -> String {
        let mut shard_docs = Vec::new();
        for i in 0..self.shard_count() {
            let doc = if self.supervisor.state(i) == ShardState::Down {
                "null".to_string()
            } else {
                match self
                    .dial(i)
                    .map(Client::from_stream)
                    .map_err(ClientError::from)
                    .and_then(|mut c| c.slowlog())
                {
                    Ok(text) => text,
                    Err(_) => "null".to_string(),
                }
            };
            shard_docs.push(doc);
        }
        format!(
            "{{\"router\":{},\"shards\":[{}]}}",
            self.slow.to_json(),
            shard_docs.join(",")
        )
    }

    /// Forwards an ingest batch to the last shard. Appends extend the
    /// end of the global row space, so the owning shard is always the
    /// final row range — earlier shards' row bases never move.
    ///
    /// Exactly one attempt: ingest is not idempotent, and the router
    /// must not double-apply a batch whose reply was lost. Transport
    /// failures surface as `Unavailable`; typed shard errors (e.g.
    /// `Overloaded` while a merge catches up) pass through unchanged so
    /// the client can apply its own back-off.
    fn forward_ingest(&self, values: &[u64]) -> Response {
        let Some(shard) = self.shard_count().checked_sub(1) else {
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: "router has no shards".into(),
            };
        };
        if !self.supervisor.admit(shard) {
            return Response::Error {
                code: ErrorCode::Unavailable,
                message: format!("ingest shard {shard} is down"),
            };
        }
        let outcome = self
            .dial(shard)
            .map(Client::from_stream)
            .map_err(ClientError::from)
            .and_then(|mut c| c.ingest(values).map(|ack| (ack, c.last_epoch())));
        match outcome {
            Ok((ack, epoch)) => {
                self.supervisor.record_success(shard, epoch, ack.total_rows);
                self.publish_shard_gauges(shard);
                // Global view: rows remembered for every earlier shard
                // plus the owning shard's fresh main+delta total. A
                // shard whose shape was never learned (startup race)
                // would silently undercount, so learn it on demand.
                for i in 0..shard {
                    if self.supervisor.rows(i) == 0 {
                        let _ = self.learn_shape(i);
                    }
                }
                let earlier: u64 = (0..shard).map(|i| self.supervisor.rows(i)).sum();
                Response::Ingested {
                    appended: ack.appended,
                    delta_rows: ack.delta_rows,
                    total_rows: earlier + ack.total_rows,
                }
            }
            // The shard answered with a typed error: it is alive, and
            // the batch was refused before any row landed. Pass the
            // verdict through.
            Err(ClientError::Server { code, message }) => Response::Error { code, message },
            Err(e) => {
                self.supervisor.record_failure(shard);
                self.publish_shard_gauges(shard);
                Response::Error {
                    code: ErrorCode::Unavailable,
                    message: format!("ingest shard {shard} unreachable: {e}"),
                }
            }
        }
    }

    /// One health sweep: ping every shard (including `Down` ones — the
    /// prober *is* the half-open probe), refreshing breaker state.
    fn health_sweep(&self) {
        for i in 0..self.shard_count() {
            let ok = self
                .dial(i)
                .map(Client::from_stream)
                .map_err(ClientError::from)
                .and_then(|mut c| c.ping().map(|()| c.last_epoch()));
            match ok {
                Ok(epoch) => {
                    let known = self.supervisor.epoch(i);
                    // Clear the breaker but keep the remembered shape:
                    // epoch and row count are only ever published
                    // together by `learn_shape`, so a concurrent
                    // fan-out can never observe a real epoch paired
                    // with a placeholder row base. Publishing the
                    // probe's epoch here would do exactly that for a
                    // shard that came up after the router's startup
                    // learning pass failed — disarming the fan-out's
                    // lazy `epoch == 0` learning while the row base is
                    // still 0 and mis-offsetting every routed row id.
                    self.supervisor
                        .record_success(i, known, self.supervisor.rows(i));
                    // A new epoch means the shard reloaded (or was
                    // never learned): re-learn the shape eagerly
                    // rather than waiting for a stale-epoch fan-out.
                    if epoch != known {
                        let _ = self.learn_shape(i);
                    }
                }
                Err(_) => self.supervisor.record_failure(i),
            }
            self.publish_shard_gauges(i);
        }
        self.refresh_epoch_sum();
    }
}

use rand::SeedableRng;

/// The jittered exponential backoff before retry `attempt` (1-based),
/// shared shape with [`RetryPolicy`]'s client-side loop.
fn retry_delay(policy: &RetryPolicy, attempt: u32, rng: &mut rand::rngs::StdRng) -> Duration {
    use rand::RngCore;
    let shift = attempt.saturating_sub(1).min(20);
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << shift)
        .min(policy.max_delay);
    let jitter_budget = exp.as_micros() as u64 / 2;
    let jitter = if jitter_budget > 0 {
        Duration::from_micros(rng.next_u64() % (jitter_budget + 1))
    } else {
        Duration::ZERO
    };
    exp + jitter
}

/// Extracts the `bix_index_rows` gauge from a shard's stats JSON.
fn parse_rows_gauge(text: &str) -> Option<u64> {
    let doc = json::parse(text).ok()?;
    let metrics = doc.get("metrics")?.as_array()?;
    for m in metrics {
        if m.get("name").and_then(Json::as_str) == Some("bix_index_rows") {
            return m.get("value").and_then(Json::as_f64).map(|v| v as u64);
        }
    }
    None
}

/// Scatter-gather front-end over row-range shards; a [`ServeHandler`]
/// served by [`Server::serve`](crate::Server::serve).
pub struct Router {
    inner: Arc<RouterInner>,
    health: Mutex<Option<JoinHandle<()>>>,
}

impl Router {
    /// Builds a router over `shard_addrs` (shard order = row order)
    /// dialling real TCP, and starts the health prober (unless
    /// `config.health_interval` is zero).
    pub fn new(shard_addrs: Vec<String>, config: RouterConfig) -> Router {
        let io_timeout = config.io_timeout;
        let dialer: ShardDialer = Arc::new(move |_shard, addr| {
            let resolved: Vec<std::net::SocketAddr> =
                std::net::ToSocketAddrs::to_socket_addrs(addr)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
                    .collect();
            let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved");
            for a in &resolved {
                match TcpStream::connect_timeout(a, io_timeout) {
                    Ok(s) => {
                        s.set_nodelay(true)?;
                        s.set_read_timeout(Some(io_timeout))?;
                        s.set_write_timeout(Some(io_timeout))?;
                        return Ok(Box::new(s) as Box<dyn Transport>);
                    }
                    Err(e) => last = e,
                }
            }
            Err(last)
        });
        Router::with_dialer(shard_addrs, config, dialer)
    }

    /// As [`Router::new`] but with a custom transport factory — the
    /// chaos-test hook for wrapping shard links in
    /// [`FaultyStream`](crate::FaultyStream).
    pub fn with_dialer(
        shard_addrs: Vec<String>,
        config: RouterConfig,
        dialer: ShardDialer,
    ) -> Router {
        let registry = MetricsRegistry::new();
        let metrics = RouterMetrics::new(&registry, shard_addrs.len());
        let supervisor = Supervisor::new(shard_addrs.len(), config.supervisor.clone());
        let interval = config.health_interval;
        let slow = SlowLog::new(
            config.slow_log_capacity,
            config.slow_threshold_ms.saturating_mul(1_000_000),
        );
        let inner = Arc::new(RouterInner {
            addrs: shard_addrs,
            config,
            supervisor,
            registry,
            metrics,
            dialer,
            stop: AtomicBool::new(false),
            epoch_sum: AtomicU64::new(0),
            slow,
        });
        // Best-effort initial shape learning so the first fan-out has a
        // routing table (failures just leave epochs at 0 for lazy retry).
        for i in 0..inner.shard_count() {
            let _ = inner.learn_shape(i);
        }
        let health = if interval > Duration::ZERO {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("bix-health".into())
                    .spawn(move || {
                        while !inner.stop.load(Ordering::Acquire) {
                            inner.health_sweep();
                            std::thread::sleep(interval);
                        }
                    })
                    .expect("spawn health prober"),
            )
        } else {
            None
        };
        Router {
            inner,
            health: Mutex::new(health),
        }
    }

    /// The supervisor, for tests and gauges.
    pub fn supervisor(&self) -> &Supervisor {
        &self.inner.supervisor
    }

    /// The router's own slow-query log (fan-out latencies).
    pub fn slow_log(&self) -> &SlowLog {
        &self.inner.slow
    }

    /// Forces an immediate health sweep (testing hook; the background
    /// prober does this on its own cadence).
    pub fn health_sweep(&self) {
        self.inner.health_sweep();
    }

    /// Stops the health prober. Called on drop; idempotent.
    pub fn stop_health(&self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.health.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_health();
    }
}

impl ServeHandler for Router {
    fn handle(&self, request: Request, meta: &RequestMeta) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => Response::Ok,
            Request::Stats(format) => Response::Stats {
                text: self.inner.aggregated_stats(format),
            },
            Request::SlowLog => Response::Stats {
                text: self.inner.aggregated_slowlog(),
            },
            Request::Query {
                domain,
                deadline_ms,
                predicate,
            } => {
                let started = Instant::now();
                let reply = self.inner.fan_out(
                    LegRequest::Batch(std::slice::from_ref(&predicate)),
                    domain,
                    deadline_ms,
                    meta,
                );
                self.inner
                    .slow
                    .observe(started.elapsed().as_nanos() as u64, || SlowQuery {
                        predicate: predicate.clone(),
                        duration_ns: started.elapsed().as_nanos() as u64,
                        trace_id: meta.trace.trace_id,
                        scans: 0,
                        unix_ms: unix_ms_now(),
                    });
                match reply {
                    Response::BatchRows(mut rows) if rows.len() == 1 => {
                        Response::Rows(rows.pop().expect("len checked"))
                    }
                    other => other,
                }
            }
            Request::Batch {
                domain,
                deadline_ms,
                predicates,
            } => {
                let started = Instant::now();
                let reply =
                    self.inner
                        .fan_out(LegRequest::Batch(&predicates), domain, deadline_ms, meta);
                self.inner
                    .slow
                    .observe(started.elapsed().as_nanos() as u64, || SlowQuery {
                        predicate: crate::server::summarize_predicates(&predicates),
                        duration_ns: started.elapsed().as_nanos() as u64,
                        trace_id: meta.trace.trace_id,
                        scans: 0,
                        unix_ms: unix_ms_now(),
                    });
                reply
            }
            Request::TableQuery {
                domain,
                deadline_ms,
                count_only,
                text,
            } => {
                let started = Instant::now();
                let reply = self.inner.fan_out(
                    LegRequest::Table {
                        text: &text,
                        count_only,
                    },
                    domain,
                    deadline_ms,
                    meta,
                );
                self.inner
                    .slow
                    .observe(started.elapsed().as_nanos() as u64, || SlowQuery {
                        predicate: text.clone(),
                        duration_ns: started.elapsed().as_nanos() as u64,
                        trace_id: meta.trace.trace_id,
                        scans: 0,
                        unix_ms: unix_ms_now(),
                    });
                match reply {
                    // A row-returning table query is one logical query;
                    // unwrap the single-entry batch like Query does.
                    Response::BatchRows(mut rows) if rows.len() == 1 => {
                        Response::Rows(rows.pop().expect("len checked"))
                    }
                    other => other,
                }
            }
            Request::Reload { .. } => Response::Error {
                code: ErrorCode::BadQuery,
                message: "reload is a shard operation; send it to the shard, not the router".into(),
            },
            Request::Ingest { values } => self.inner.forward_ingest(&values),
        }
    }

    fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch_sum.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_offsets_and_concatenates_in_shard_order() {
        let shards = vec![
            ShardReply {
                row_base: 0,
                replies: vec![RowsReply {
                    scans: 2,
                    decompressions: 1,
                    rows: vec![0, 5],
                }],
            },
            ShardReply {
                row_base: 10,
                replies: vec![RowsReply {
                    scans: 3,
                    decompressions: 0,
                    rows: vec![1, 2],
                }],
            },
            // Empty shard contributes nothing but still occupies its
            // row range (row_base of later shards already accounts).
            ShardReply {
                row_base: 20,
                replies: vec![RowsReply {
                    scans: 0,
                    decompressions: 0,
                    rows: vec![],
                }],
            },
            ShardReply {
                row_base: 20,
                replies: vec![RowsReply {
                    scans: 1,
                    decompressions: 4,
                    rows: vec![0],
                }],
            },
        ];
        let merged = merge_replies(1, &shards);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].rows, vec![0, 5, 11, 12, 20]);
        assert_eq!(merged[0].scans, 6);
        assert_eq!(merged[0].decompressions, 5);
    }

    #[test]
    fn merge_handles_multi_predicate_batches() {
        let shards = vec![
            ShardReply {
                row_base: 0,
                replies: vec![
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![3],
                    },
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![],
                    },
                ],
            },
            ShardReply {
                row_base: 4,
                replies: vec![
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![],
                    },
                    RowsReply {
                        scans: 1,
                        decompressions: 0,
                        rows: vec![0, 1],
                    },
                ],
            },
        ];
        let merged = merge_replies(2, &shards);
        assert_eq!(merged[0].rows, vec![3]);
        assert_eq!(merged[1].rows, vec![4, 5]);
    }

    #[test]
    fn rows_gauge_parses_from_stats_json() {
        let text = r#"{"metrics":[
            {"name":"bix_server_requests_total","type":"counter","help":"x","value":9},
            {"name":"bix_index_rows","type":"gauge","help":"Indexed records","value":50000}
        ]}"#;
        assert_eq!(parse_rows_gauge(text), Some(50_000));
        assert_eq!(parse_rows_gauge("{}"), None);
    }
}
