//! Deterministic network fault injection: the wire-level twin of the
//! disk layer's `FaultPlan`.
//!
//! [`FaultyStream`] wraps any `Read + Write` transport and perturbs
//! traffic *at frame granularity*: it watches the byte stream for `bX`
//! frame boundaries (both protocol versions) and applies scheduled
//! faults — drop, delay, truncate, garble — to the Nth frame in either
//! direction. Working on whole frames rather than raw byte offsets
//! keeps plans meaningful as payloads change size: "garble the second
//! reply" stays the second reply no matter how many rows it carries.
//!
//! Plans are data ([`NetFaultPlan`]), either built explicitly or
//! derived from a seed ([`NetFaultPlan::from_seed`]) so chaos tests can
//! sweep seeds and replay any failure exactly. The stream itself adds
//! no randomness: the same plan over the same traffic yields the same
//! bytes.
//!
//! Faults model real failure classes:
//! - [`NetFault::Drop`] — the frame vanishes (lossy path, dead NAT
//!   entry); the peer sees silence, exercising read timeouts.
//! - [`NetFault::Delay`] — the frame arrives late, exercising deadline
//!   budgets and retry races.
//! - [`NetFault::Truncate`] — the connection dies mid-frame; the first
//!   half is delivered, then the stream reports `BrokenPipe`/EOF,
//!   exercising `Truncated` handling.
//! - [`NetFault::Garble`] — one CRC-trailer bit is flipped, exercising
//!   integrity checking (the receiver must see `CrcMismatch`, never bad
//!   data and never a structural misparse).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::protocol::HEADER_LEN;

/// One scheduled perturbation of a single frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Swallow the frame entirely; the stream stays healthy.
    Drop,
    /// Hold the frame for the given duration before forwarding it.
    Delay(Duration),
    /// Deliver only the first half of the frame, then kill the stream
    /// in that direction (EOF on read, `BrokenPipe` on write).
    Truncate,
    /// Flip one bit of the CRC trailer so verification cannot pass.
    Garble,
}

/// Which half of the conversation a fault applies to, from the
/// perspective of the wrapped endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frames this endpoint writes.
    Send,
    /// Frames this endpoint reads.
    Recv,
}

/// A schedule of frame faults: `(direction, frame index, fault)`
/// triples, where frame indices count from 0 per direction.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    faults: Vec<(Direction, u64, NetFault)>,
}

impl NetFaultPlan {
    /// An empty plan (the stream is transparent).
    pub fn new() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Schedules `fault` for the `frame`-th frame in `direction`
    /// (builder-style). Later entries for the same frame are ignored —
    /// one fault per frame.
    pub fn fault(mut self, direction: Direction, frame: u64, fault: NetFault) -> NetFaultPlan {
        self.faults.push((direction, frame, fault));
        self
    }

    /// Derives a small pseudorandom plan from `seed`: one to three
    /// faults spread over the first eight frames of either direction.
    /// Sweeping seeds sweeps the fault space deterministically.
    pub fn from_seed(seed: u64) -> NetFaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1 + (rng.next_u64() % 3);
        let mut plan = NetFaultPlan::new();
        for _ in 0..n {
            let direction = if rng.next_u64() % 2 == 0 {
                Direction::Send
            } else {
                Direction::Recv
            };
            let frame = rng.next_u64() % 8;
            let fault = match rng.next_u64() % 4 {
                0 => NetFault::Drop,
                1 => NetFault::Delay(Duration::from_millis(1 + rng.next_u64() % 40)),
                2 => NetFault::Truncate,
                _ => NetFault::Garble,
            };
            plan = plan.fault(direction, frame, fault);
        }
        plan
    }

    /// The first fault scheduled for this frame, if any.
    fn lookup(&self, direction: Direction, frame: u64) -> Option<NetFault> {
        self.faults
            .iter()
            .find(|(d, f, _)| *d == direction && *f == frame)
            .map(|(_, _, fault)| *fault)
    }
}

/// Per-direction frame reassembly state.
struct Lane {
    /// Bytes accumulated towards the current frame boundary.
    buf: Vec<u8>,
    /// Frames seen so far in this direction.
    frames: u64,
    /// A `Truncate` fault fired; the lane is dead.
    broken: bool,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            buf: Vec::new(),
            frames: 0,
            broken: false,
        }
    }
}

/// Total on-wire length of the frame starting at `buf[0]`, once enough
/// of its header has arrived to tell. `None` means "need more bytes".
/// Returns an error sentinel of 0 if the bytes cannot be a `bX` frame —
/// the stream then falls back to transparent pass-through, so the
/// injector never deadlocks on traffic it does not understand.
fn frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 3 {
        return None;
    }
    if buf[0..2] != crate::protocol::MAGIC {
        return Some(0);
    }
    let version = buf[2];
    if buf.len() < HEADER_LEN {
        return None;
    }
    let payload_len = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
    match version {
        crate::protocol::VERSION => Some(HEADER_LEN + payload_len + 4),
        crate::protocol::VERSION_EXT => {
            if buf.len() < HEADER_LEN + 1 {
                return None;
            }
            let ext_len = buf[HEADER_LEN] as usize;
            Some(HEADER_LEN + 1 + ext_len + payload_len + 4)
        }
        // Unknown version: treat header + payload + CRC as the span so
        // the receiver still gets a parseable-but-rejectable frame.
        _ => Some(HEADER_LEN + payload_len + 4),
    }
}

/// Applies `fault` to a complete frame, returning the bytes to forward
/// and whether the lane dies afterwards.
fn perturb(frame: Vec<u8>, fault: Option<NetFault>) -> (Vec<u8>, bool) {
    match fault {
        None => (frame, false),
        Some(NetFault::Drop) => (Vec::new(), false),
        Some(NetFault::Delay(d)) => {
            std::thread::sleep(d);
            (frame, false)
        }
        Some(NetFault::Truncate) => {
            let half = frame.len() / 2;
            (frame[..half].to_vec(), true)
        }
        Some(NetFault::Garble) => {
            let mut frame = frame;
            // Flip a bit in the CRC trailer: the frame's structure
            // (magic, version, extension length) stays intact in both
            // wire revisions, so the CRC check — not a structural
            // parse error — is what must catch the corruption.
            let at = frame.len().saturating_sub(1);
            frame[at] ^= 0x40;
            (frame, false)
        }
    }
}

/// A `Read + Write` wrapper that injects [`NetFaultPlan`] faults at
/// frame boundaries. Wrap the *client side* of a connection (the server
/// talks to its socket directly) and drive it with the ordinary
/// [`Client`](crate::Client) — the faults happen under real protocol
/// traffic.
pub struct FaultyStream<S> {
    inner: S,
    plan: NetFaultPlan,
    send: Lane,
    recv: Lane,
    /// Decoded-and-perturbed inbound bytes waiting for the caller.
    pending: VecDeque<u8>,
    /// `frame_len` gave up on this direction; pass bytes through.
    transparent: bool,
}

impl<S: Read + Write> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: NetFaultPlan) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            send: Lane::new(),
            recv: Lane::new(),
            pending: VecDeque::new(),
            transparent: false,
        }
    }

    /// Frames observed so far as `(sent, received)`.
    pub fn frames_seen(&self) -> (u64, u64) {
        (self.send.frames, self.recv.frames)
    }

    /// Drains every complete frame in the send lane through the plan.
    fn flush_send_frames(&mut self) -> io::Result<()> {
        loop {
            let Some(len) = frame_len(&self.send.buf) else {
                return Ok(()); // incomplete header, wait for more
            };
            if len == 0 {
                // Not frame traffic; forward verbatim and stop parsing.
                self.transparent = true;
                let raw = std::mem::take(&mut self.send.buf);
                self.inner.write_all(&raw)?;
                return Ok(());
            }
            if self.send.buf.len() < len {
                return Ok(());
            }
            let rest = self.send.buf.split_off(len);
            let frame = std::mem::replace(&mut self.send.buf, rest);
            let fault = self.plan.lookup(Direction::Send, self.send.frames);
            self.send.frames += 1;
            let (bytes, dies) = perturb(frame, fault);
            if !bytes.is_empty() {
                self.inner.write_all(&bytes)?;
            }
            if dies {
                self.send.broken = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "netfault: connection truncated mid-frame",
                ));
            }
        }
    }

    /// Reads from the inner stream until at least one complete frame is
    /// perturbed into `pending` (or the lane dies / goes transparent).
    fn fill_pending(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        loop {
            if !self.pending.is_empty() || self.recv.broken {
                return Ok(());
            }
            // Try to peel complete frames off the reassembly buffer.
            match frame_len(&self.recv.buf) {
                Some(0) => {
                    self.transparent = true;
                    self.pending.extend(std::mem::take(&mut self.recv.buf));
                    return Ok(());
                }
                Some(len) if self.recv.buf.len() >= len => {
                    let rest = self.recv.buf.split_off(len);
                    let frame = std::mem::replace(&mut self.recv.buf, rest);
                    let fault = self.plan.lookup(Direction::Recv, self.recv.frames);
                    self.recv.frames += 1;
                    let (bytes, dies) = perturb(frame, fault);
                    self.pending.extend(bytes);
                    if dies {
                        self.recv.broken = true;
                    }
                    continue; // may have produced bytes, loop re-checks
                }
                _ => {}
            }
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                // EOF with a partial frame buffered: deliver what we
                // have so the peer's decoder sees the truncation.
                self.pending.extend(std::mem::take(&mut self.recv.buf));
                return Ok(());
            }
            self.recv.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

impl<S: Read + Write> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.transparent && self.pending.is_empty() {
            return self.inner.read(buf);
        }
        if self.pending.is_empty() {
            if self.recv.broken {
                return Ok(0); // truncated lane reads as EOF
            }
            self.fill_pending()?;
        }
        let n = buf.len().min(self.pending.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.pending.pop_front().expect("len checked");
        }
        if n == 0 && self.recv.broken {
            return Ok(0);
        }
        Ok(n)
    }
}

impl<S: Read + Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.send.broken {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "netfault: connection truncated mid-frame",
            ));
        }
        if self.transparent {
            return self.inner.write(buf);
        }
        self.send.buf.extend_from_slice(buf);
        self.flush_send_frames()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_frame, encode_frame, Frame, Message, Request, WireError};

    /// An in-memory loopback: writes land in `out`, reads drain `input`.
    struct Loopback {
        input: VecDeque<u8>,
        out: Vec<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.input.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.input.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn ping_frame(id: u64) -> Vec<u8> {
        encode_frame(&Frame::new(id, Message::Request(Request::Ping)))
    }

    #[test]
    fn clean_plan_is_transparent_both_ways() {
        let mut wire = Vec::new();
        for id in 0..3 {
            wire.extend(ping_frame(id));
        }
        let inner = Loopback {
            input: wire.clone().into(),
            out: Vec::new(),
        };
        let mut s = FaultyStream::new(inner, NetFaultPlan::new());
        s.write_all(&wire).unwrap();
        let mut got = vec![0u8; wire.len()];
        s.read_exact(&mut got).unwrap();
        assert_eq!(got, wire);
        assert_eq!(s.inner.out, wire);
        assert_eq!(s.frames_seen(), (3, 3));
    }

    #[test]
    fn drop_swallows_exactly_the_nth_send_frame() {
        let inner = Loopback {
            input: VecDeque::new(),
            out: Vec::new(),
        };
        let plan = NetFaultPlan::new().fault(Direction::Send, 1, NetFault::Drop);
        let mut s = FaultyStream::new(inner, plan);
        for id in 0..3 {
            s.write_all(&ping_frame(id)).unwrap();
        }
        let mut expect = ping_frame(0);
        expect.extend(ping_frame(2));
        assert_eq!(s.inner.out, expect);
    }

    #[test]
    fn garbled_recv_frame_fails_crc_not_decode() {
        let frame = ping_frame(7);
        let inner = Loopback {
            input: frame.clone().into(),
            out: Vec::new(),
        };
        let plan = NetFaultPlan::new().fault(Direction::Recv, 0, NetFault::Garble);
        let mut s = FaultyStream::new(inner, plan);
        let mut got = vec![0u8; frame.len()];
        s.read_exact(&mut got).unwrap();
        assert_ne!(got, frame);
        match decode_frame(&got) {
            Err(WireError::CrcMismatch) => {}
            other => panic!("garble must surface as CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncate_delivers_half_then_eof() {
        let frame = ping_frame(9);
        let inner = Loopback {
            input: frame.clone().into(),
            out: Vec::new(),
        };
        let plan = NetFaultPlan::new().fault(Direction::Recv, 0, NetFault::Truncate);
        let mut s = FaultyStream::new(inner, plan);
        let mut got = Vec::new();
        s.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), frame.len() / 2);
        assert_eq!(&got[..], &frame[..frame.len() / 2]);
    }

    #[test]
    fn truncate_on_send_breaks_the_pipe() {
        let inner = Loopback {
            input: VecDeque::new(),
            out: Vec::new(),
        };
        let plan = NetFaultPlan::new().fault(Direction::Send, 0, NetFault::Truncate);
        let mut s = FaultyStream::new(inner, plan);
        let err = s.write_all(&ping_frame(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let err = s.write_all(&ping_frame(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_nonempty() {
        for seed in 0..64 {
            let a = NetFaultPlan::from_seed(seed);
            let b = NetFaultPlan::from_seed(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!(!a.faults.is_empty(), "seed {seed} produced an empty plan");
        }
    }
}
