//! Blocking client for the `bix` wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time, matching each reply to its request id. Typed server failures
//! (overload, deadline, bad query, …) surface as
//! [`ClientError::Server`] so callers can branch on [`ErrorCode`]
//! without string matching.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bix_core::EvalDomain;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, Message, Request, Response, RowsReply, StatsFormat,
    WireError,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The reply could not be decoded.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with the wrong frame kind or request id.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

impl ClientError {
    /// Whether this is a typed server error with the given code.
    pub fn is_code(&self, code: ErrorCode) -> bool {
        matches!(self, ClientError::Server { code: c, .. } if *c == code)
    }
}

/// A blocking connection to a `bix` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects with default 10-second read/write timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with explicit socket read/write timeouts.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, next_id: 1 })
    }

    fn roundtrip(&mut self, request: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            request_id: id,
            msg: Message::Request(request),
        };
        write_frame(&mut self.stream, &frame)?;
        let (reply, _) = read_frame(&mut self.stream)?;
        match reply.msg {
            // Typed errors are honoured whatever their id: admission
            // rejections are written before the server ever reads a
            // request, so they carry id 0.
            Message::Response(Response::Error { code, message }) => {
                Err(ClientError::Server { code, message })
            }
            Message::Response(resp) if reply.request_id == id => Ok(resp),
            Message::Response(_) => Err(ClientError::Unexpected("request id mismatch")),
            Message::Request(_) => Err(ClientError::Unexpected("request frame from server")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("want Pong")),
        }
    }

    /// Evaluates one predicate. `deadline_ms` of 0 uses the server default.
    pub fn query(
        &mut self,
        predicate: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<RowsReply, ClientError> {
        let req = Request::Query {
            domain,
            deadline_ms,
            predicate: predicate.into(),
        };
        match self.roundtrip(req)? {
            Response::Rows(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("want Rows")),
        }
    }

    /// Evaluates a batch of predicates; replies come back in order.
    pub fn batch(
        &mut self,
        predicates: &[String],
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<Vec<RowsReply>, ClientError> {
        let req = Request::Batch {
            domain,
            deadline_ms,
            predicates: predicates.to_vec(),
        };
        match self.roundtrip(req)? {
            Response::BatchRows(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("want BatchRows")),
        }
    }

    /// Fetches the server's metrics in the requested format.
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        match self.roundtrip(Request::Stats(format))? {
            Response::Stats { text } => Ok(text),
            _ => Err(ClientError::Unexpected("want Stats")),
        }
    }

    /// Asks the server to hot-swap in the index at `path` (a
    /// server-side filesystem path).
    pub fn reload(&mut self, path: &str) -> Result<(), ClientError> {
        match self.roundtrip(Request::Reload { path: path.into() })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("want Ok")),
        }
    }

    /// Asks the server to drain and exit; `Ok` means the drain started.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("want Ok")),
        }
    }
}
