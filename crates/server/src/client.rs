//! Blocking client for the `bix` wire protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time,
//! matching each reply to its request id. Typed server failures
//! (overload, deadline, bad query, …) surface as
//! [`ClientError::Server`] so callers can branch on [`ErrorCode`]
//! without string matching.
//!
//! The transport is generic over `Read + Write` so the router and the
//! chaos tests can splice a [`FaultyStream`](crate::FaultyStream) (or
//! any in-memory pipe) under the exact production frame logic;
//! [`Client::connect`] specialises it to `TcpStream`.
//!
//! Retries
//! -------
//! With a [`RetryPolicy`] installed, transient failures — connect
//! errors, socket I/O, truncated or CRC-corrupt replies, and typed
//! `Overloaded` rejections — are retried on a fresh connection with
//! jittered exponential backoff, mirroring the disk layer's bounded
//! read-retry loop. Non-transient failures (`BadQuery`,
//! `DeadlineExceeded`, malformed-request rejections) are never
//! retried: re-sending them cannot succeed and may double work.
//! Every retry and redial is counted in [`ClientStats`].

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bix_core::EvalDomain;
use bix_telemetry::{SpanRecord, TraceContext};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, Message, Request, Response, RowsReply, StatsFormat,
    WireError, FLAG_ALLOW_DEGRADED,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The reply could not be decoded.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with the wrong frame kind or request id.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

impl ClientError {
    /// Whether this is a typed server error with the given code.
    pub fn is_code(&self, code: ErrorCode) -> bool {
        matches!(self, ClientError::Server { code: c, .. } if *c == code)
    }

    /// Whether a fresh attempt on a fresh connection could plausibly
    /// succeed. Semantic rejections are permanent by definition.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            // A mangled or cut-short reply is line noise, not a server
            // decision; the request itself may be perfectly fine.
            ClientError::Wire(WireError::Truncated) | ClientError::Wire(WireError::CrcMismatch) => {
                true
            }
            ClientError::Wire(_) => false,
            ClientError::Server { code, .. } => matches!(code, ErrorCode::Overloaded),
            ClientError::Unexpected(_) => false,
        }
    }
}

/// Bounded retry-with-jittered-backoff for transient failures, the
/// network twin of the disk layer's `READ_RETRY_LIMIT` loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay << (n-1)`, capped at
    /// `max_delay`, plus uniform jitter of up to half that value.
    pub base_delay: Duration,
    /// Ceiling on a single backoff sleep (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the jitter stream, so tests are reproducible.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// Sensible interactive default: 3 retries, 2 ms–256 ms backoff.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(256),
            seed,
        }
    }

    /// The jittered sleep before retry `attempt` (1-based).
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_delay
            .saturating_mul(1u32 << shift)
            .min(self.max_delay);
        let jitter_budget = exp.as_micros() as u64 / 2;
        let jitter = if jitter_budget > 0 {
            Duration::from_micros(rng.next_u64() % (jitter_budget + 1))
        } else {
            Duration::ZERO
        };
        exp + jitter
    }
}

/// Counters accumulated over a client's lifetime, mirroring the
/// server-side metrics discipline on the caller's side of the wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Requests issued (first attempts, not retries).
    pub requests: u64,
    /// Re-sent attempts after a transient failure.
    pub retries: u64,
    /// Fresh connections dialled after the first.
    pub reconnects: u64,
    /// Degraded (partial) replies accepted.
    pub degraded_replies: u64,
}

/// A reply that may be partial: routed requests that opted in via
/// [`Client::set_allow_degraded`] can come back missing shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<T> {
    /// Every shard contributed; the value is exact.
    Full(T),
    /// The listed shards were unreachable; the value covers the rest.
    Degraded {
        /// Shards whose rows are absent from the value.
        missing_shards: Vec<u16>,
        /// The partial result.
        value: T,
    },
}

impl<T> Outcome<T> {
    /// The value, whether or not it is partial.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Full(v) | Outcome::Degraded { value: v, .. } => v,
        }
    }

    /// Shards missing from the value (empty when full).
    pub fn missing_shards(&self) -> &[u16] {
        match self {
            Outcome::Full(_) => &[],
            Outcome::Degraded { missing_shards, .. } => missing_shards,
        }
    }
}

/// Result of a count-only table query: a popcount plus the same
/// evaluation-cost summary a [`RowsReply`] carries, with no row ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountReply {
    /// Number of rows matching the expression.
    pub count: u64,
    /// Bitmap scans charged to the query.
    pub scans: u64,
    /// Compressed bitmaps materialised during evaluation.
    pub decompressions: u64,
}

/// Acknowledgement of an ingest batch: the delta absorbed it whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Rows appended by this request.
    pub appended: u64,
    /// Rows buffered in the server's delta after this request.
    pub delta_rows: u64,
    /// Total queryable rows on the server (main index + delta).
    pub total_rows: u64,
}

/// How a generic client re-establishes its transport for a retry.
type Dialer<S> = Box<dyn FnMut() -> io::Result<S> + Send>;

/// A blocking connection to a `bix` server (or router), generic over
/// the byte transport.
pub struct Client<S: Read + Write + Send = TcpStream> {
    stream: Option<S>,
    dialer: Option<Dialer<S>>,
    next_id: u64,
    retry: RetryPolicy,
    rng: StdRng,
    allow_degraded: bool,
    stats: ClientStats,
    last_epoch: u64,
    last_shard: u16,
    trace: TraceContext,
    last_spans: Vec<SpanRecord>,
}

impl Client<TcpStream> {
    /// Connects with default 10-second read/write timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with explicit socket read/write timeouts. The resolved
    /// address is kept so transient failures can redial.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let dial = move || -> io::Result<TcpStream> {
            let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved");
            for a in &resolved {
                match TcpStream::connect_timeout(a, timeout) {
                    Ok(stream) => {
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(Some(timeout))?;
                        stream.set_write_timeout(Some(timeout))?;
                        return Ok(stream);
                    }
                    Err(e) => last = e,
                }
            }
            Err(last)
        };
        let mut dialer: Dialer<TcpStream> = Box::new(dial);
        let stream = dialer()?;
        Ok(Client {
            stream: Some(stream),
            dialer: Some(dialer),
            next_id: 1,
            retry: RetryPolicy::none(),
            rng: StdRng::seed_from_u64(0),
            allow_degraded: false,
            stats: ClientStats::default(),
            last_epoch: 0,
            last_shard: 0,
            trace: TraceContext::default(),
            last_spans: Vec::new(),
        })
    }
}

impl<S: Read + Write + Send> Client<S> {
    /// Wraps an already-open transport (an in-memory pipe, a
    /// [`FaultyStream`](crate::FaultyStream), …). Without a dialer the
    /// client cannot redial, so transport failures end the retry loop.
    pub fn from_stream(stream: S) -> Client<S> {
        Client {
            stream: Some(stream),
            dialer: None,
            next_id: 1,
            retry: RetryPolicy::none(),
            rng: StdRng::seed_from_u64(0),
            allow_degraded: false,
            stats: ClientStats::default(),
            last_epoch: 0,
            last_shard: 0,
            trace: TraceContext::default(),
            last_spans: Vec::new(),
        }
    }

    /// Builds a client that dials lazily through `dialer` — the hook the
    /// router uses to splice fault injection under its shard links.
    pub fn from_dialer(dialer: Dialer<S>) -> Client<S> {
        Client {
            stream: None,
            dialer: Some(dialer),
            next_id: 1,
            retry: RetryPolicy::none(),
            rng: StdRng::seed_from_u64(0),
            allow_degraded: false,
            stats: ClientStats::default(),
            last_epoch: 0,
            last_shard: 0,
            trace: TraceContext::default(),
            last_spans: Vec::new(),
        }
    }

    /// Installs a retry policy for transient failures (builder-style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client<S> {
        self.rng = StdRng::seed_from_u64(policy.seed);
        self.retry = policy;
        self
    }

    /// Opts future requests in (or out) of partial `Degraded` results.
    /// Only meaningful against a router; plain shards ignore the flag.
    pub fn set_allow_degraded(&mut self, allow: bool) {
        self.allow_degraded = allow;
    }

    /// Lifetime counters: requests, retries, reconnects, degraded.
    pub fn client_stats(&self) -> ClientStats {
        self.stats
    }

    /// Epoch stamped on the most recent reply (0 before any reply).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Shard id stamped on the most recent reply.
    pub fn last_shard(&self) -> u16 {
        self.last_shard
    }

    /// Stamps `trace` on every future request frame. A sampled context
    /// asks the server to trace the request and ship its span forest
    /// back ([`Client::last_spans`]); an all-zero context (the default)
    /// keeps frames v1-identical.
    pub fn set_trace(&mut self, trace: TraceContext) {
        self.trace = trace;
    }

    /// The trace context currently stamped on outgoing requests.
    pub fn trace(&self) -> TraceContext {
        self.trace
    }

    /// The span forest shipped with the most recent reply (empty unless
    /// the request was sampled). Parent links are raw indices local to
    /// this forest — feed them to `Tracer::graft` to splice the forest
    /// into a local trace.
    pub fn last_spans(&self) -> &[SpanRecord] {
        &self.last_spans
    }

    /// Sends one request and reads its reply on the current transport.
    fn attempt(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.stream.is_none() {
            let dialer = self
                .dialer
                .as_mut()
                .ok_or(ClientError::Unexpected("transport gone and no dialer"))?;
            self.stream = Some(dialer()?);
        }
        let stream = self.stream.as_mut().expect("dialled above");
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = Frame::new(id, Message::Request(request.clone()));
        if self.allow_degraded {
            frame.flags |= FLAG_ALLOW_DEGRADED;
        }
        frame.trace = self.trace;
        write_frame(stream, &frame)?;
        let (reply, _) = read_frame(stream)?;
        self.last_epoch = reply.epoch;
        self.last_shard = reply.shard_id;
        self.last_spans = reply.spans;
        match reply.msg {
            // Typed errors are honoured whatever their id: admission
            // rejections are written before the server ever reads a
            // request, so they carry id 0.
            Message::Response(Response::Error { code, message }) => {
                Err(ClientError::Server { code, message })
            }
            Message::Response(resp) if reply.request_id == id => Ok(resp),
            Message::Response(_) => Err(ClientError::Unexpected("request id mismatch")),
            Message::Request(_) => Err(ClientError::Unexpected("request frame from server")),
        }
    }

    /// One logical request: bounded transient retries around
    /// [`Client::attempt`], redialling when the transport is suspect.
    fn roundtrip(&mut self, request: Request) -> Result<Response, ClientError> {
        self.stats.requests += 1;
        let mut attempt_no: u32 = 0;
        loop {
            attempt_no += 1;
            let err = match self.attempt(&request) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let out_of_budget = attempt_no > self.retry.max_retries;
            if out_of_budget || !err.is_transient() {
                return Err(err);
            }
            // The connection is in an unknown state after any transient
            // failure (mid-frame death, post-refusal close), so drop it;
            // the next attempt redials. Without a dialer, surface now.
            self.stream = None;
            if self.dialer.is_none() {
                return Err(err);
            }
            self.stats.retries += 1;
            self.stats.reconnects += 1;
            std::thread::sleep(self.retry.delay(attempt_no, &mut self.rng));
        }
    }

    /// As [`Client::roundtrip`], but lets a `Degraded` reply through as
    /// a partial batch instead of treating it as unexpected.
    fn roundtrip_outcome(
        &mut self,
        request: Request,
    ) -> Result<Outcome<Vec<RowsReply>>, ClientError> {
        match self.roundtrip(request)? {
            Response::Rows(rows) => Ok(Outcome::Full(vec![rows])),
            Response::BatchRows(rows) => Ok(Outcome::Full(rows)),
            Response::Degraded {
                missing_shards,
                replies,
            } => {
                self.stats.degraded_replies += 1;
                Ok(Outcome::Degraded {
                    missing_shards,
                    value: replies,
                })
            }
            _ => Err(ClientError::Unexpected("want Rows, BatchRows or Degraded")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("want Pong")),
        }
    }

    /// Evaluates one predicate. `deadline_ms` of 0 uses the server
    /// default. A `Degraded` reply is *not* accepted here — use
    /// [`Client::query_outcome`] to opt into partial results.
    pub fn query(
        &mut self,
        predicate: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<RowsReply, ClientError> {
        let req = Request::Query {
            domain,
            deadline_ms,
            predicate: predicate.into(),
        };
        match self.roundtrip(req)? {
            Response::Rows(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("want Rows")),
        }
    }

    /// Evaluates one predicate, surfacing partial results as
    /// [`Outcome::Degraded`] when the request opted in.
    pub fn query_outcome(
        &mut self,
        predicate: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<Outcome<RowsReply>, ClientError> {
        let req = Request::Query {
            domain,
            deadline_ms,
            predicate: predicate.into(),
        };
        match self.roundtrip_outcome(req)? {
            Outcome::Full(mut rows) if rows.len() == 1 => {
                Ok(Outcome::Full(rows.pop().expect("len checked")))
            }
            Outcome::Degraded {
                missing_shards,
                mut value,
            } if value.len() == 1 => Ok(Outcome::Degraded {
                missing_shards,
                value: value.pop().expect("len checked"),
            }),
            _ => Err(ClientError::Unexpected("want exactly one reply")),
        }
    }

    /// Evaluates a batch of predicates; replies come back in order. A
    /// `Degraded` reply is *not* accepted here — use
    /// [`Client::batch_outcome`] to opt into partial results.
    pub fn batch(
        &mut self,
        predicates: &[String],
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<Vec<RowsReply>, ClientError> {
        let req = Request::Batch {
            domain,
            deadline_ms,
            predicates: predicates.to_vec(),
        };
        match self.roundtrip(req)? {
            Response::BatchRows(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("want BatchRows")),
        }
    }

    /// Evaluates a batch, surfacing partial results as
    /// [`Outcome::Degraded`] when the request opted in.
    pub fn batch_outcome(
        &mut self,
        predicates: &[String],
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<Outcome<Vec<RowsReply>>, ClientError> {
        let req = Request::Batch {
            domain,
            deadline_ms,
            predicates: predicates.to_vec(),
        };
        self.roundtrip_outcome(req)
    }

    /// Evaluates one multi-attribute table expression against a catalog
    /// server (or a router fronting catalog shards). A `Degraded` reply
    /// is *not* accepted here — use [`Client::table_query_outcome`] to
    /// opt into partial results.
    pub fn table_query(
        &mut self,
        text: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<RowsReply, ClientError> {
        let req = Request::TableQuery {
            domain,
            deadline_ms,
            count_only: false,
            text: text.into(),
        };
        match self.roundtrip(req)? {
            Response::Rows(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("want Rows")),
        }
    }

    /// Evaluates one table expression, surfacing partial results as
    /// [`Outcome::Degraded`] when the request opted in.
    pub fn table_query_outcome(
        &mut self,
        text: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<Outcome<RowsReply>, ClientError> {
        let req = Request::TableQuery {
            domain,
            deadline_ms,
            count_only: false,
            text: text.into(),
        };
        match self.roundtrip_outcome(req)? {
            Outcome::Full(mut rows) if rows.len() == 1 => {
                Ok(Outcome::Full(rows.pop().expect("len checked")))
            }
            Outcome::Degraded {
                missing_shards,
                mut value,
            } if value.len() == 1 => Ok(Outcome::Degraded {
                missing_shards,
                value: value.pop().expect("len checked"),
            }),
            _ => Err(ClientError::Unexpected("want exactly one reply")),
        }
    }

    /// Counts the rows matching a table expression without shipping
    /// them: the server answers with a popcount (COUNT pushdown), so
    /// the reply stays a few bytes however many rows match. Counts are
    /// all-or-nothing — a router never degrades one, because a partial
    /// count is indistinguishable from a full one.
    pub fn table_count(
        &mut self,
        text: &str,
        domain: EvalDomain,
        deadline_ms: u32,
    ) -> Result<CountReply, ClientError> {
        let req = Request::TableQuery {
            domain,
            deadline_ms,
            count_only: true,
            text: text.into(),
        };
        match self.roundtrip(req)? {
            Response::Count {
                count,
                scans,
                decompressions,
            } => Ok(CountReply {
                count,
                scans,
                decompressions,
            }),
            _ => Err(ClientError::Unexpected("want Count")),
        }
    }

    /// Fetches the server's metrics in the requested format.
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        match self.roundtrip(Request::Stats(format))? {
            Response::Stats { text } => Ok(text),
            _ => Err(ClientError::Unexpected("want Stats")),
        }
    }

    /// Fetches the server's slow-query log as JSON. Against a router
    /// this is the aggregated fleet view (`{"router":…,"shards":[…]}`).
    pub fn slowlog(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(Request::SlowLog)? {
            Response::Stats { text } => Ok(text),
            _ => Err(ClientError::Unexpected("want SlowLog stats")),
        }
    }

    /// Asks the server to hot-swap in the index at `path` (a
    /// server-side filesystem path).
    pub fn reload(&mut self, path: &str) -> Result<(), ClientError> {
        match self.roundtrip(Request::Reload { path: path.into() })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("want Ok")),
        }
    }

    /// Streams a batch of values into the server's delta index.
    ///
    /// Ingest is **not idempotent**: a retried batch is appended twice.
    /// This method therefore makes exactly one attempt — it never enters
    /// the retry loop, even for errors that [`ClientError::is_transient`]
    /// classifies as retryable (a lost reply leaves the batch's fate
    /// unknown). After any failure the connection is dropped so the next
    /// request redials; callers decide whether to re-send.
    pub fn ingest(&mut self, values: &[u64]) -> Result<IngestAck, ClientError> {
        self.stats.requests += 1;
        let req = Request::Ingest {
            values: values.to_vec(),
        };
        match self.attempt(&req) {
            Ok(Response::Ingested {
                appended,
                delta_rows,
                total_rows,
            }) => Ok(IngestAck {
                appended,
                delta_rows,
                total_rows,
            }),
            Ok(_) => Err(ClientError::Unexpected("want Ingested")),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Asks the server to drain and exit; `Ok` means the drain started.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("want Ok")),
        }
    }
}
