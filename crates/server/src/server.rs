//! The serving loop: a `TcpListener` accept thread feeding a bounded
//! admission queue drained by a fixed worker pool.
//!
//! Threading model
//! ---------------
//! One accept thread owns the listener. Accepted connections either
//! enter the admission queue (bounded by [`ServerConfig::queue_depth`])
//! or are turned away with a typed `Overloaded` error frame — a full
//! server never leaves a client hanging on a silent socket. `workers`
//! threads pop connections and serve frames until the peer goes idle
//! past the read budget, disconnects, or the server drains.
//!
//! The loop itself is application-agnostic: everything after frame
//! decode is delegated to a [`ServeHandler`]. Two handlers live in this
//! crate — [`IndexHandler`] (single-index query serving, below) and the
//! scatter-gather [`Router`](crate::Router) — so admission control,
//! deadline plumbing, frame hardening, and drain semantics are written
//! once and shared by every network-facing role.
//!
//! Every reply frame is stamped with the server's shard id and the
//! handler's current epoch (its index reload generation), which is how
//! a router detects replies computed against a stale index mid-stream.
//!
//! Queries execute on the crate-standard [`ParallelExecutor`] against a
//! shared [`ShardedBufferPool`], under the per-request deadline (or the
//! server default). A hot `Reload` request loads and `verify()`s a new
//! index off the request thread, then atomically swaps the serving
//! snapshot and bumps the epoch — in-flight requests keep the old index
//! and pool until they finish; new requests see the new one.
//!
//! Shutdown sets a stop flag, wakes the accept thread with a loopback
//! connection, and lets each worker finish its in-flight request before
//! exiting; queued-but-unserved connections receive `ShuttingDown`.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bix_core::{
    AppendError, BitmapIndex, Catalog, CostModel, DeadlineExceeded, DeltaIndex, EvalDomain,
    IndexedTable, IoMetrics, MetricsRegistry, ParallelExecutor, Planner, Query, ShardedBufferPool,
    TableSchema,
};
use bix_telemetry::{
    unix_ms_now, Counter, Gauge, Histogram, SlowLog, SlowQuery, SpanId, TraceContext, Tracer,
};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, Message, Request, Response, RowsReply, StatsFormat,
    FLAG_ALLOW_DEGRADED,
};

/// Tunables for [`Server::start`] / [`Server::serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission-queue bound; connections beyond it are rejected with
    /// a typed `Overloaded` reply.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own,
    /// in milliseconds. `0` disables the default deadline.
    pub default_deadline_ms: u64,
    /// Executor threads available to a single request's batch.
    pub request_threads: usize,
    /// Pages in the shared sharded buffer pool.
    pub pool_pages: usize,
    /// How long a connection may sit idle between frames.
    pub read_timeout: Duration,
    /// Socket write budget for a single reply.
    pub write_timeout: Duration,
    /// Shard id stamped on every reply frame (0 for a monolith).
    pub shard_id: u16,
    /// Queries at least this slow (wall ms) enter the slow-query log.
    pub slow_threshold_ms: u64,
    /// Slow-query log capacity (reservoir bound; memory never exceeds
    /// this many entries).
    pub slow_log_capacity: usize,
    /// Byte budget of the in-memory ingest delta. Batches that would
    /// exceed it are refused with `Overloaded` until the background
    /// merge drains the delta into the main index.
    pub delta_budget_bytes: usize,
    /// Delta size that wakes the background merge. Must be well below
    /// `delta_budget_bytes` so ingest keeps landing while a merge runs.
    pub merge_threshold_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 0,
            request_threads: 2,
            pool_pages: 4096,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            shard_id: 0,
            slow_threshold_ms: 250,
            slow_log_capacity: 128,
            delta_budget_bytes: 64 << 20,
            merge_threshold_bytes: 8 << 20,
        }
    }
}

/// Polling tick used while waiting on sockets and the queue, so stop
/// requests propagate promptly without busy-waiting.
const TICK: Duration = Duration::from_millis(50);

/// Routing metadata decoded from a request frame's extension header,
/// handed to the [`ServeHandler`] alongside the request body.
#[derive(Debug, Clone)]
pub struct RequestMeta {
    /// The client opted into [`Response::Degraded`] partial results.
    pub allow_degraded: bool,
    /// Epoch the client pinned the request to (0 = unpinned). A shard
    /// does not gate evaluation on it — replies carry the shard's own
    /// epoch and the *caller* decides whether a mismatch is fatal.
    pub epoch: u64,
    /// Shard id named by the request (0 = unrouted).
    pub shard_id: u16,
    /// Distributed-trace context carried by the request frame (all-zero
    /// when the request is untraced).
    pub trace: TraceContext,
    /// Span collector for this request: enabled iff the request is
    /// sampled. Handlers open their spans here; the serving loop ships
    /// the records back in the reply frame.
    pub tracer: Tracer,
    /// The serving loop's root span for this request, the parent for
    /// handler-side spans (`None` when the tracer is disabled).
    pub span: Option<SpanId>,
}

impl Default for RequestMeta {
    fn default() -> Self {
        RequestMeta {
            allow_degraded: false,
            epoch: 0,
            shard_id: 0,
            trace: TraceContext::default(),
            tracer: Tracer::disabled(),
            span: None,
        }
    }
}

/// The application half of a server: everything after frame decode.
///
/// Implementations must be cheap to share across worker threads and
/// must never panic on hostile input — a request that cannot be served
/// is answered with a typed [`Response::Error`].
pub trait ServeHandler: Send + Sync + 'static {
    /// Serves one decoded request.
    fn handle(&self, request: Request, meta: &RequestMeta) -> Response;

    /// The registry transport metrics are charged to (shared with the
    /// handler's own counters so one `Stats` scrape sees both).
    fn registry(&self) -> &MetricsRegistry;

    /// Generation stamped on every reply frame; bumped whenever the
    /// data being served changes identity (e.g. an index hot reload).
    fn epoch(&self) -> u64 {
        0
    }

    /// Called once when the server starts draining, before the worker
    /// threads are joined. Handlers that own background threads (e.g.
    /// the ingest merge) use it to wind them down.
    fn on_drain(&self) {}
}

/// Handles to the transport-level metrics, created once at startup so
/// the hot path never touches the registry's name map.
struct TransportMetrics {
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    bad_frames: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    connections: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
    queue_wait_nanos: Arc<Histogram>,
    request_nanos: Arc<Histogram>,
}

impl TransportMetrics {
    fn new(registry: &MetricsRegistry) -> TransportMetrics {
        let c = |name: &str, help: &str| registry.counter(name, help);
        TransportMetrics {
            requests: c("bix_server_requests_total", "Frames served"),
            rejected: c(
                "bix_server_rejected_total",
                "Connections refused by admission control",
            ),
            bad_frames: c(
                "bix_server_bad_frames_total",
                "Frames that failed wire-protocol validation",
            ),
            bytes_in: c("bix_server_bytes_in_total", "Wire bytes received"),
            bytes_out: c("bix_server_bytes_out_total", "Wire bytes sent"),
            connections: c("bix_server_connections_total", "Connections accepted"),
            queue_depth: registry.gauge(
                "bix_server_queue_depth",
                "Connections waiting in the admission queue",
            ),
            inflight: registry.gauge("bix_server_inflight", "Connections currently being served"),
            queue_wait_nanos: registry.histogram(
                "bix_server_queue_wait_nanos",
                "Admission-queue wait per connection (ns)",
            ),
            request_nanos: registry.histogram(
                "bix_server_request_nanos",
                "Wall time per served request (ns)",
            ),
        }
    }
}

struct Shared {
    config: ServerConfig,
    handler: Arc<dyn ServeHandler>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    metrics: TransportMetrics,
    addr: SocketAddr,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Signals every thread to wind down and nudges the accept thread
    /// out of its blocking `accept()` with a loopback connection.
    fn trigger_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.handler.on_drain();
        self.queue_cv.notify_all();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
    }
}

/// Publishes the index-shape gauges (same names the CLI uses) so a
/// remote `Stats` scrape describes the index being served.
fn set_index_gauges(registry: &MetricsRegistry, index: &BitmapIndex) {
    let set = |name: &str, help: &str, v: f64| registry.gauge(name, help).set(v);
    set("bix_index_rows", "Indexed records", index.rows() as f64);
    set(
        "bix_index_cardinality",
        "Attribute cardinality C",
        index.config().cardinality as f64,
    );
    set(
        "bix_index_bitmaps",
        "Stored bitmaps",
        index.num_bitmaps() as f64,
    );
    set(
        "bix_index_stored_bytes",
        "On-disk index size (compressed)",
        index.space_bytes() as f64,
    );
}

/// A running server (index shard or router). Dropping the handle does
/// **not** stop the threads; call [`Server::shutdown`] or send a
/// `Shutdown` frame and [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `index` on a pool of worker threads, plus a
    /// background merge thread draining the ingest delta into the index.
    pub fn start(
        index: BitmapIndex,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let handler = Arc::new(IndexHandler::new(index, &config));
        let merge_handler = Arc::clone(&handler);
        let mut server = Server::serve(handler, addr, config)?;
        server.handles.push(
            std::thread::Builder::new()
                .name("bix-merge".into())
                .spawn(move || merge_handler.merge_loop())?,
        );
        Ok(server)
    }

    /// Binds `addr` and starts serving a multi-attribute catalog:
    /// [`Request::TableQuery`] frames are planned and executed across
    /// the catalog's per-attribute indexes; single-index requests get
    /// typed refusals.
    pub fn start_catalog(
        catalog: Catalog,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let handler = Arc::new(CatalogHandler::new(catalog, &config));
        Server::serve(handler, addr, config)
    }

    /// Binds `addr` and serves an arbitrary [`ServeHandler`] behind the
    /// shared accept/admission/worker machinery.
    pub fn serve(
        handler: Arc<dyn ServeHandler>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = TransportMetrics::new(handler.registry());
        let shared = Arc::new(Shared {
            handler,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics,
            addr,
            config,
        });

        let mut handles = Vec::new();
        for worker in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bix-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("bix-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(Server { shared, handles })
    }

    /// The bound socket address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The handler's metrics registry (shared with the serving threads).
    pub fn registry(&self) -> &MetricsRegistry {
        self.shared.handler.registry()
    }

    /// Initiates a graceful drain and blocks until every thread exits:
    /// in-flight requests finish, queued-but-unserved connections get a
    /// `ShuttingDown` reply.
    pub fn shutdown(self) {
        self.shared.trigger_stop();
        for h in self.handles {
            let _ = h.join();
        }
    }

    /// Blocks until the server stops on its own (a `Shutdown` frame).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping() {
                    break;
                }
                continue;
            }
        };
        if shared.stopping() {
            // Covers both the wake-up connection from `trigger_stop`
            // and real clients racing the drain.
            refuse(stream, shared, ErrorCode::ShuttingDown, "server draining");
            break;
        }
        shared.metrics.connections.inc();
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(TICK));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            shared.metrics.rejected.inc();
            refuse(
                stream,
                shared,
                ErrorCode::Overloaded,
                "admission queue full",
            );
            continue;
        }
        queue.push_back((stream, Instant::now()));
        shared.metrics.queue_depth.set(queue.len() as f64);
        drop(queue);
        shared.queue_cv.notify_one();
    }
    // Flush whatever is still queued with a typed refusal.
    let mut queue = shared.queue.lock().unwrap();
    let leftovers: Vec<_> = queue.drain(..).collect();
    shared.metrics.queue_depth.set(0.0);
    drop(queue);
    shared.queue_cv.notify_all();
    for (stream, _) in leftovers {
        refuse(stream, shared, ErrorCode::ShuttingDown, "server draining");
    }
}

/// Stamps the server's shard id and the handler's current epoch onto an
/// outgoing reply frame.
fn stamp(shared: &Shared, mut frame: Frame) -> Frame {
    frame.shard_id = shared.config.shard_id;
    frame.epoch = shared.handler.epoch();
    frame
}

/// Best-effort typed rejection: one error frame, then close.
fn refuse(mut stream: TcpStream, shared: &Shared, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let reply = stamp(
        shared,
        Frame::new(
            0,
            Message::Response(Response::Error {
                code,
                message: message.into(),
            }),
        ),
    );
    if let Ok(n) = write_frame(&mut stream, &reply) {
        shared.metrics.bytes_out.add(n as u64);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(shared: &Shared) {
    loop {
        let popped = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(entry) = queue.pop_front() {
                    shared.metrics.queue_depth.set(queue.len() as f64);
                    break Some(entry);
                }
                if shared.stopping() {
                    break None;
                }
                let (q, _) = shared.queue_cv.wait_timeout(queue, TICK).unwrap();
                queue = q;
            }
        };
        let Some((stream, enqueued)) = popped else {
            break; // stopping and the queue is empty
        };
        let queue_wait = enqueued.elapsed();
        shared
            .metrics
            .queue_wait_nanos
            .record(queue_wait.as_nanos() as u64);
        if shared.stopping() {
            refuse(stream, shared, ErrorCode::ShuttingDown, "server draining");
            continue;
        }
        shared
            .metrics
            .inflight
            .set(shared.metrics.inflight.get() + 1.0);
        serve_connection(stream, shared, queue_wait);
        shared
            .metrics
            .inflight
            .set((shared.metrics.inflight.get() - 1.0).max(0.0));
    }
}

/// Serves frames on one connection until the peer disconnects, idles
/// out, breaks the protocol, or the server drains. `queue_wait` is how
/// long the connection sat in the admission queue; sampled requests
/// record it on their root span so cross-process traces show admission
/// time, not just handler time.
fn serve_connection(mut stream: TcpStream, shared: &Shared, queue_wait: Duration) {
    let mut idle = Duration::ZERO;
    loop {
        if shared.stopping() {
            refuse(stream, shared, ErrorCode::ShuttingDown, "server draining");
            return;
        }
        // Wait for the next frame in TICK-sized slices so stop requests
        // and the idle budget are both honoured.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += TICK;
                if idle >= shared.config.read_timeout {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        idle = Duration::ZERO;
        let started = Instant::now();
        let (frame, n_in) = match read_frame(&mut stream) {
            Ok(ok) => ok,
            Err(crate::protocol::WireError::Io(_)) | Err(crate::protocol::WireError::Truncated) => {
                // Peer vanished or stalled mid-frame; nothing to say.
                shared.metrics.bad_frames.inc();
                return;
            }
            Err(e) => {
                // Framing is lost after a decode error, so answer once
                // and close rather than guessing at resync.
                shared.metrics.bad_frames.inc();
                send(
                    &mut stream,
                    shared,
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        shared.metrics.bytes_in.add(n_in as u64);
        shared.metrics.requests.inc();
        let request_id = frame.request_id;
        // Sampled requests get a live tracer whose records ship back in
        // the reply frame; everything else pays one branch.
        let tracer = if frame.trace.sampled {
            Tracer::new()
        } else {
            Tracer::disabled()
        };
        let serve_span = tracer.span(&format!("serve shard={}", shared.config.shard_id), None);
        serve_span.attr("queue_wait_ns", queue_wait.as_nanos());
        let meta = RequestMeta {
            allow_degraded: frame.flags & FLAG_ALLOW_DEGRADED != 0,
            epoch: frame.epoch,
            shard_id: frame.shard_id,
            trace: frame.trace,
            tracer: tracer.clone(),
            span: serve_span.id(),
        };
        let request = match frame.msg {
            Message::Request(req) => req,
            Message::Response(_) => {
                shared.metrics.bad_frames.inc();
                send(
                    &mut stream,
                    shared,
                    request_id,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: "expected a request frame".into(),
                    },
                );
                return;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let reply = shared.handler.handle(request, &meta);
        serve_span.finish();
        let mut reply_frame = stamp(shared, Frame::new(request_id, Message::Response(reply)));
        if tracer.is_enabled() {
            // Echo the trace identity and attach this process's span
            // forest so the caller can graft it into its own tree.
            reply_frame.trace = frame.trace;
            reply_frame.spans = tracer.records();
        }
        if let Ok(n) = write_frame(&mut stream, &reply_frame) {
            shared.metrics.bytes_out.add(n as u64);
        }
        shared
            .metrics
            .request_nanos
            .record(started.elapsed().as_nanos() as u64);
        if is_shutdown {
            shared.trigger_stop();
            return;
        }
    }
}

/// Best-effort reply on an established connection.
fn send(stream: &mut TcpStream, shared: &Shared, request_id: u64, response: Response) {
    let frame = stamp(shared, Frame::new(request_id, Message::Response(response)));
    if let Ok(n) = write_frame(stream, &frame) {
        shared.metrics.bytes_out.add(n as u64);
    }
}

/// The immutable serving snapshot: an index plus the buffer pool built
/// for it. Swapped wholesale on reload so pages cached for the old
/// index can never be served against the new one's file ids.
struct Serving {
    index: BitmapIndex,
    pool: ShardedBufferPool,
}

/// Index-serving metrics, separate from the transport's.
struct IndexMetrics {
    queries: Arc<Counter>,
    rows_returned: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    bad_queries: Arc<Counter>,
    reloads: Arc<Counter>,
    eval_decompressions: Arc<Counter>,
    eval_nodes_raw: Arc<Counter>,
    eval_nodes_compressed: Arc<Counter>,
    ingest_rows: Arc<Counter>,
    ingest_rejected: Arc<Counter>,
    merges: Arc<Counter>,
    merge_failures: Arc<Counter>,
    index_rows: Arc<Gauge>,
    delta_rows: Arc<Gauge>,
    delta_bytes: Arc<Gauge>,
}

impl IndexMetrics {
    fn new(registry: &MetricsRegistry) -> IndexMetrics {
        let c = |name: &str, help: &str| registry.counter(name, help);
        IndexMetrics {
            queries: c("bix_server_queries_total", "Predicates evaluated"),
            rows_returned: c("bix_server_rows_returned_total", "Row ids sent to clients"),
            deadline_exceeded: c(
                "bix_server_deadline_exceeded_total",
                "Requests that ran past their deadline",
            ),
            bad_queries: c(
                "bix_server_bad_queries_total",
                "Predicates rejected by the parser",
            ),
            reloads: c("bix_server_reloads_total", "Successful hot index reloads"),
            eval_decompressions: c(
                "bix_eval_decompressions_total",
                "Compressed bitmaps materialised during evaluation",
            ),
            eval_nodes_raw: c(
                "bix_eval_nodes_raw_total",
                "DAG nodes folded in the raw (decoded) domain",
            ),
            eval_nodes_compressed: c(
                "bix_eval_nodes_compressed_total",
                "DAG nodes folded in the compressed domain",
            ),
            ingest_rows: c("bix_ingest_rows_total", "Rows absorbed into the delta"),
            ingest_rejected: c(
                "bix_ingest_rejected_total",
                "Ingest batches refused (bad value or memtable full)",
            ),
            merges: c(
                "bix_delta_merges_total",
                "Background delta-into-main merges completed",
            ),
            merge_failures: c(
                "bix_delta_merge_failures_total",
                "Background merges abandoned (fault or index swap)",
            ),
            index_rows: registry.gauge("bix_index_rows", "Indexed records"),
            delta_rows: registry.gauge(
                "bix_delta_rows",
                "Rows buffered in the ingest delta (not yet merged)",
            ),
            delta_bytes: registry.gauge(
                "bix_delta_bytes",
                "Bytes occupied by the ingest delta memtable",
            ),
        }
    }
}

/// [`ServeHandler`] for a single bitmap index: parse, evaluate under
/// deadline, streaming ingest into an in-memory delta, hot reload with
/// verification, metrics exposition.
///
/// Lock order (deadlock- and torn-snapshot-freedom): the `delta`
/// [`RwLock`] is always acquired **before** the `serving` mutex. A
/// query holds the delta read lock across evaluation, so the `(main,
/// delta)` pair it snapshots is the pair the merge thread swaps
/// atomically under the delta *write* lock — a reader can never see a
/// merged index paired with an unpruned delta (the overlay's
/// `base_rows` assertion would catch it) or vice versa.
pub struct IndexHandler {
    serving: Mutex<Arc<Serving>>,
    /// In-memory ingest delta extending the serving index. Guarded by
    /// an [`RwLock`] so concurrent queries share it while ingest and
    /// the merge swap take it exclusively.
    delta: RwLock<DeltaIndex>,
    registry: MetricsRegistry,
    metrics: IndexMetrics,
    /// Index generation: starts at 1, bumped by every successful
    /// reload and every completed merge. Stamped on reply frames by
    /// the serving loop.
    epoch: AtomicU64,
    request_threads: usize,
    default_deadline_ms: u64,
    pool_pages: usize,
    pool_shards: usize,
    delta_budget_bytes: usize,
    merge_threshold_bytes: usize,
    /// Merge wake-up: set under the mutex and notified when the delta
    /// crosses the merge threshold (or fills outright).
    merge_pending: Mutex<bool>,
    merge_cv: Condvar,
    merge_stop: AtomicBool,
    /// Bounded slow-query reservoir, served by [`Request::SlowLog`].
    slow: SlowLog,
}

impl IndexHandler {
    /// Wraps `index` for serving under `config`'s evaluation tunables.
    pub fn new(index: BitmapIndex, config: &ServerConfig) -> IndexHandler {
        let registry = MetricsRegistry::new();
        let metrics = IndexMetrics::new(&registry);
        set_index_gauges(&registry, &index);
        let pool_shards = config.workers.max(2);
        let pool = ShardedBufferPool::new(config.pool_pages, pool_shards);
        let delta = DeltaIndex::for_index(&index, config.delta_budget_bytes);
        IndexHandler {
            serving: Mutex::new(Arc::new(Serving { index, pool })),
            delta: RwLock::new(delta),
            registry,
            metrics,
            epoch: AtomicU64::new(1),
            request_threads: config.request_threads,
            default_deadline_ms: config.default_deadline_ms,
            pool_pages: config.pool_pages,
            pool_shards,
            delta_budget_bytes: config.delta_budget_bytes,
            merge_threshold_bytes: config.merge_threshold_bytes,
            merge_pending: Mutex::new(false),
            merge_cv: Condvar::new(),
            merge_stop: AtomicBool::new(false),
            slow: SlowLog::new(
                config.slow_log_capacity,
                config.slow_threshold_ms.saturating_mul(1_000_000),
            ),
        }
    }

    /// The handler's slow-query log (testing and CLI hook).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// Parses and evaluates a batch under the request deadline, charging
    /// all eval-side metrics. Errors come back as ready-to-send responses.
    /// Sampled requests (`meta.tracer` enabled) record the full
    /// rewrite → decompose → eval span tree under `meta.span`; queries
    /// over the slow threshold enter the slow-query log either way.
    fn evaluate(
        &self,
        domain: EvalDomain,
        deadline_ms: u32,
        predicates: &[String],
        meta: &RequestMeta,
    ) -> Result<Vec<RowsReply>, Response> {
        let eval_started = Instant::now();
        // Delta read lock first, then the serving snapshot: the merge
        // swaps both under the delta write lock, so this pair is
        // consistent for the whole evaluation (see the struct docs).
        let delta = self.delta.read().unwrap();
        let serving = Arc::clone(&self.serving.lock().unwrap());
        let cardinality = serving.index.config().cardinality;
        let mut queries = Vec::with_capacity(predicates.len());
        for text in predicates {
            match Query::parse(text, cardinality) {
                Ok(q) => queries.push(q),
                Err(e) => {
                    self.metrics.bad_queries.inc();
                    return Err(Response::Error {
                        code: ErrorCode::BadQuery,
                        message: e.to_string(),
                    });
                }
            }
        }
        let effective_ms = if deadline_ms > 0 {
            u64::from(deadline_ms)
        } else {
            self.default_deadline_ms
        };
        let deadline =
            (effective_ms > 0).then(|| Instant::now() + Duration::from_millis(effective_ms));
        let executor = ParallelExecutor::new(self.request_threads.max(1)).with_domain(domain);
        let batch = match executor.execute_full_delta(
            &serving.index,
            Some(&delta),
            &queries,
            &serving.pool,
            &CostModel::default(),
            &meta.tracer,
            meta.span,
            deadline,
        ) {
            Ok(batch) => batch,
            Err(DeadlineExceeded) => {
                self.metrics.deadline_exceeded.inc();
                return Err(Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: format!("deadline of {effective_ms}ms exceeded"),
                });
            }
        };
        IoMetrics::register(&self.registry).record(&batch.io);
        self.metrics.queries.add(queries.len() as u64);
        let total_scans: u64 = batch.results.iter().map(|r| r.scans as u64).sum();
        self.slow
            .observe(eval_started.elapsed().as_nanos() as u64, || SlowQuery {
                predicate: summarize_predicates(predicates),
                duration_ns: eval_started.elapsed().as_nanos() as u64,
                trace_id: meta.trace.trace_id,
                scans: total_scans,
                unix_ms: unix_ms_now(),
            });
        // Bound the reply frame before building it: every row id costs 8
        // payload bytes and each per-query header 24, and a frame larger
        // than MAX_PAYLOAD must surface as a typed error, not a panic.
        let reply_bytes: u64 = batch
            .results
            .iter()
            .map(|r| 24 + 8 * r.bitmap.count_ones() as u64)
            .sum::<u64>()
            + 8;
        if reply_bytes > u64::from(crate::protocol::MAX_PAYLOAD) {
            return Err(Response::Error {
                code: ErrorCode::Internal,
                message: format!(
                    "reply of {reply_bytes} bytes exceeds the frame cap; narrow the queries or split the batch"
                ),
            });
        }
        let mut replies = Vec::with_capacity(batch.results.len());
        for result in &batch.results {
            self.metrics
                .eval_decompressions
                .add(result.decompressions as u64);
            self.metrics.eval_nodes_raw.add(result.nodes_raw as u64);
            self.metrics
                .eval_nodes_compressed
                .add(result.nodes_compressed as u64);
            let rows: Vec<u64> = result
                .bitmap
                .to_positions()
                .iter()
                .map(|&p| p as u64)
                .collect();
            self.metrics.rows_returned.add(rows.len() as u64);
            replies.push(RowsReply {
                scans: result.scans as u64,
                decompressions: result.decompressions as u64,
                rows,
            });
        }
        Ok(replies)
    }

    /// Loads, verifies, and atomically swaps in a new index, bumping
    /// the epoch so routers re-learn this shard's shape. The fresh
    /// buffer pool guarantees no page cached for the old index's file
    /// ids is ever returned for the new one. The ingest delta extended
    /// the *old* index, so a reload resets it: rows not yet merged are
    /// dropped with the dataset they belonged to.
    fn reload(&self, path: &str) -> Result<(), String> {
        let mut index = BitmapIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
        let report = index.verify();
        if !report.is_clean() {
            return Err(format!(
                "refusing reload: index at {path} failed verification"
            ));
        }
        let pool = ShardedBufferPool::new(self.pool_pages, self.pool_shards);
        set_index_gauges(&self.registry, &index);
        let mut delta = self.delta.write().unwrap();
        *delta = DeltaIndex::for_index(&index, self.delta_budget_bytes);
        *self.serving.lock().unwrap() = Arc::new(Serving { index, pool });
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.metrics.reloads.inc();
        self.metrics.delta_rows.set(0.0);
        self.metrics.delta_bytes.set(0.0);
        Ok(())
    }

    /// Absorbs an ingest batch into the delta (all-or-nothing) and
    /// reports the post-absorb shape. Domain violations come back as
    /// `BadQuery`; a full memtable as `Overloaded` — the client may
    /// retry *a rejected batch* after the merge drains (a batch whose
    /// reply was lost must never be blindly retried: ingest is not
    /// idempotent).
    fn ingest(&self, values: &[u64]) -> Response {
        let mut delta = self.delta.write().unwrap();
        match delta.absorb(values) {
            Ok(appended) => {
                let stats = delta.stats();
                drop(delta);
                self.metrics.ingest_rows.add(appended as u64);
                self.metrics.delta_rows.set(stats.rows as f64);
                self.metrics.delta_bytes.set(stats.bytes as f64);
                // Queryable rows = main + delta; routers size row
                // offsets from this gauge.
                self.metrics
                    .index_rows
                    .set((stats.base_rows + stats.rows) as f64);
                if stats.bytes >= self.merge_threshold_bytes {
                    self.kick_merge();
                }
                Response::Ingested {
                    appended: appended as u64,
                    delta_rows: stats.rows as u64,
                    total_rows: (stats.base_rows + stats.rows) as u64,
                }
            }
            Err(e @ AppendError::OutOfDomain { .. }) => {
                drop(delta);
                self.metrics.ingest_rejected.inc();
                Response::Error {
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                }
            }
            Err(e @ AppendError::MemtableFull { .. }) => {
                drop(delta);
                self.metrics.ingest_rejected.inc();
                self.kick_merge();
                Response::Error {
                    code: ErrorCode::Overloaded,
                    message: e.to_string(),
                }
            }
            Err(e) => {
                drop(delta);
                self.metrics.ingest_rejected.inc();
                Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                }
            }
        }
    }

    /// Wakes the merge thread.
    fn kick_merge(&self) {
        *self.merge_pending.lock().unwrap() = true;
        self.merge_cv.notify_one();
    }

    /// The background merge thread: waits for a kick (or polls the
    /// threshold) and compacts the delta into the main index until the
    /// server drains. Rows still buffered at shutdown are in-memory
    /// only and are dropped — durability is the merge's product, not
    /// the delta's promise.
    fn merge_loop(&self) {
        while !self.merge_stop.load(Ordering::Acquire) {
            let kicked = {
                let guard = self.merge_pending.lock().unwrap();
                let (mut guard, _) = self
                    .merge_cv
                    .wait_timeout_while(guard, Duration::from_millis(200), |pending| {
                        !*pending && !self.merge_stop.load(Ordering::Acquire)
                    })
                    .unwrap();
                std::mem::take(&mut *guard)
            };
            if self.merge_stop.load(Ordering::Acquire) {
                break;
            }
            let over_threshold =
                { self.delta.read().unwrap().bytes_used() >= self.merge_threshold_bytes };
            if kicked || over_threshold {
                self.merge_once();
            }
        }
    }

    /// One merge cycle: snapshot the delta's buffered values and the
    /// serving index, append them to a private copy of the index
    /// through the journaled [`BitmapIndex::try_append`] protocol
    /// (readers keep the old snapshot the whole time), then swap the
    /// merged index in and prune the delta under the delta write lock.
    /// Rows absorbed while the merge ran survive in the pruned delta.
    ///
    /// Returns the number of rows merged (0 when there was nothing to
    /// do or the index was swapped out from under the merge).
    pub fn merge_once(&self) -> usize {
        let epoch_at = self.epoch.load(Ordering::Acquire);
        let (values, serving) = {
            let delta = self.delta.read().unwrap();
            if delta.is_empty() {
                return 0;
            }
            (
                delta.values().to_vec(),
                Arc::clone(&self.serving.lock().unwrap()),
            )
        };
        // Clone the index by round-tripping the persistence format —
        // the only supported way to copy an index, and it keeps the
        // maintenance work entirely off the serving snapshot.
        let mut buf = Vec::new();
        if serving.index.save_to(&mut buf).is_err() {
            self.metrics.merge_failures.inc();
            return 0;
        }
        let mut merged = match BitmapIndex::load_from(&buf[..]) {
            Ok(ix) => ix,
            Err(_) => {
                self.metrics.merge_failures.inc();
                return 0;
            }
        };
        if merged.try_append(&values).is_err() {
            self.metrics.merge_failures.inc();
            return 0;
        }
        let pool = ShardedBufferPool::new(self.pool_pages, self.pool_shards);
        let mut delta = self.delta.write().unwrap();
        if self.epoch.load(Ordering::Acquire) != epoch_at {
            // A reload replaced the index while we merged; our merged
            // copy extends a dead snapshot. Abandon it.
            self.metrics.merge_failures.inc();
            return 0;
        }
        set_index_gauges(&self.registry, &merged);
        *self.serving.lock().unwrap() = Arc::new(Serving {
            index: merged,
            pool,
        });
        delta.prune_merged(values.len());
        let stats = delta.stats();
        drop(delta);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.metrics.merges.inc();
        self.metrics.delta_rows.set(stats.rows as f64);
        self.metrics.delta_bytes.set(stats.bytes as f64);
        self.metrics
            .index_rows
            .set((stats.base_rows + stats.rows) as f64);
        values.len()
    }
}

/// Slow-log label for a batch: the first predicate, annotated with how
/// many ride along (slow batches are captured as one entry, not many).
pub(crate) fn summarize_predicates(predicates: &[String]) -> String {
    match predicates {
        [] => String::new(),
        [one] => one.clone(),
        [first, rest @ ..] => format!("{first} (+{} more in batch)", rest.len()),
    }
}

impl ServeHandler for IndexHandler {
    fn handle(&self, request: Request, meta: &RequestMeta) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => Response::Ok,
            Request::Stats(format) => Response::Stats {
                text: match format {
                    StatsFormat::Prometheus => self.registry.snapshot().to_prometheus(),
                    StatsFormat::Json => self.registry.snapshot().to_json(),
                },
            },
            Request::SlowLog => Response::Stats {
                text: self.slow.to_json(),
            },
            Request::Query {
                domain,
                deadline_ms,
                predicate,
            } => match self.evaluate(domain, deadline_ms, &[predicate], meta) {
                Ok(mut rows) => Response::Rows(rows.pop().expect("one query in, one reply out")),
                Err(resp) => resp,
            },
            Request::Batch {
                domain,
                deadline_ms,
                predicates,
            } => match self.evaluate(domain, deadline_ms, &predicates, meta) {
                Ok(rows) => Response::BatchRows(rows),
                Err(resp) => resp,
            },
            Request::Reload { path } => match self.reload(&path) {
                Ok(()) => Response::Ok,
                Err(message) => Response::Error {
                    code: ErrorCode::Internal,
                    message,
                },
            },
            Request::Ingest { values } => self.ingest(&values),
            Request::TableQuery { .. } => Response::Error {
                code: ErrorCode::BadQuery,
                message: "this server serves a single index; table queries need a catalog \
                          (`bix serve <table.bixcat>`)"
                    .into(),
            },
        }
    }

    fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn on_drain(&self) {
        self.merge_stop.store(true, Ordering::Release);
        self.merge_cv.notify_all();
    }
}

/// The immutable catalog serving snapshot: the table, its resolved
/// schema, and the buffer pool every attribute index shares. Swapped
/// wholesale on reload, same discipline as [`Serving`].
struct CatalogServing {
    table: IndexedTable,
    schema: TableSchema,
    pool: ShardedBufferPool,
}

/// Catalog-serving metrics, separate from the transport's.
struct CatalogMetrics {
    queries: Arc<Counter>,
    counts: Arc<Counter>,
    rows_returned: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    bad_queries: Arc<Counter>,
    reloads: Arc<Counter>,
    eval_decompressions: Arc<Counter>,
}

impl CatalogMetrics {
    fn new(registry: &MetricsRegistry) -> CatalogMetrics {
        let c = |name: &str, help: &str| registry.counter(name, help);
        CatalogMetrics {
            queries: c("bix_server_queries_total", "Table queries evaluated"),
            counts: c(
                "bix_server_counts_total",
                "Table queries answered by COUNT pushdown (no rows shipped)",
            ),
            rows_returned: c("bix_server_rows_returned_total", "Row ids sent to clients"),
            deadline_exceeded: c(
                "bix_server_deadline_exceeded_total",
                "Requests that ran past their deadline",
            ),
            bad_queries: c(
                "bix_server_bad_queries_total",
                "Expressions rejected by the parser or planner",
            ),
            reloads: c("bix_server_reloads_total", "Successful hot catalog reloads"),
            eval_decompressions: c(
                "bix_eval_decompressions_total",
                "Compressed bitmaps materialised during evaluation",
            ),
        }
    }
}

/// Publishes the catalog-shape gauges. `bix_index_rows` is the same
/// gauge name an index shard publishes, so a router learns a catalog
/// shard's row count through the exact same stats scrape.
fn set_catalog_gauges(registry: &MetricsRegistry, table: &IndexedTable) {
    let set = |name: &str, help: &str, v: f64| registry.gauge(name, help).set(v);
    set("bix_index_rows", "Indexed records", table.rows() as f64);
    set(
        "bix_catalog_attrs",
        "Attributes in the served catalog",
        table.schema().len() as f64,
    );
    set(
        "bix_index_stored_bytes",
        "On-disk catalog size (compressed)",
        table.space_bytes() as f64,
    );
}

/// [`ServeHandler`] for a multi-attribute catalog: parse the boolean
/// expression against the catalog's schema, plan it (rewrite + DNF),
/// execute across the per-attribute indexes under the request deadline,
/// and reply with rows or — for count-only requests — a popcount that
/// never materialises row ids.
///
/// Single-index requests (`Query`, `Batch`, `Ingest`) are refused with
/// typed errors: predicates have no attribute name to resolve against a
/// catalog, and this keeps the two serving roles honest on the wire.
pub struct CatalogHandler {
    serving: Mutex<Arc<CatalogServing>>,
    registry: MetricsRegistry,
    metrics: CatalogMetrics,
    /// Catalog generation: starts at 1, bumped by every successful
    /// reload. Stamped on reply frames by the serving loop.
    epoch: AtomicU64,
    request_threads: usize,
    default_deadline_ms: u64,
    pool_pages: usize,
    pool_shards: usize,
    /// Bounded slow-query reservoir, served by [`Request::SlowLog`].
    slow: SlowLog,
}

impl CatalogHandler {
    /// Wraps `catalog` for serving under `config`'s evaluation tunables.
    pub fn new(catalog: Catalog, config: &ServerConfig) -> CatalogHandler {
        let registry = MetricsRegistry::new();
        let metrics = CatalogMetrics::new(&registry);
        let table = catalog.into_table();
        set_catalog_gauges(&registry, &table);
        let pool_shards = config.workers.max(2);
        let pool = ShardedBufferPool::new(config.pool_pages, pool_shards);
        let schema = table.schema();
        CatalogHandler {
            serving: Mutex::new(Arc::new(CatalogServing {
                table,
                schema,
                pool,
            })),
            registry,
            metrics,
            epoch: AtomicU64::new(1),
            request_threads: config.request_threads,
            default_deadline_ms: config.default_deadline_ms,
            pool_pages: config.pool_pages,
            pool_shards,
            slow: SlowLog::new(
                config.slow_log_capacity,
                config.slow_threshold_ms.saturating_mul(1_000_000),
            ),
        }
    }

    /// The handler's slow-query log (testing and CLI hook).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// Plans and executes one expression under the request deadline,
    /// charging eval-side metrics. Errors come back as ready-to-send
    /// responses.
    fn evaluate(
        &self,
        domain: EvalDomain,
        deadline_ms: u32,
        text: &str,
        meta: &RequestMeta,
    ) -> Result<bix_core::PlanEvalResult, Response> {
        let eval_started = Instant::now();
        let serving = Arc::clone(&self.serving.lock().unwrap());
        let plan = match Planner::plan_text(&serving.schema, text) {
            Ok(plan) => plan,
            Err(e) => {
                self.metrics.bad_queries.inc();
                return Err(Response::Error {
                    code: ErrorCode::BadQuery,
                    message: e.to_string(),
                });
            }
        };
        let effective_ms = if deadline_ms > 0 {
            u64::from(deadline_ms)
        } else {
            self.default_deadline_ms
        };
        let deadline =
            (effective_ms > 0).then(|| Instant::now() + Duration::from_millis(effective_ms));
        let executor = ParallelExecutor::new(self.request_threads.max(1)).with_domain(domain);
        let result = match executor.execute_plan_full(
            &serving.table,
            None,
            &plan,
            &serving.pool,
            &CostModel::default(),
            &meta.tracer,
            meta.span,
            deadline,
        ) {
            Ok(result) => result,
            Err(DeadlineExceeded) => {
                self.metrics.deadline_exceeded.inc();
                return Err(Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: format!("deadline of {effective_ms}ms exceeded"),
                });
            }
        };
        IoMetrics::register(&self.registry).record(&result.io);
        self.metrics.queries.inc();
        self.metrics
            .eval_decompressions
            .add(result.decompressions as u64);
        self.slow
            .observe(eval_started.elapsed().as_nanos() as u64, || SlowQuery {
                predicate: text.to_string(),
                duration_ns: eval_started.elapsed().as_nanos() as u64,
                trace_id: meta.trace.trace_id,
                scans: result.scans as u64,
                unix_ms: unix_ms_now(),
            });
        Ok(result)
    }

    /// Loads, verifies, and atomically swaps in a new catalog, bumping
    /// the epoch so routers re-learn this shard's shape.
    fn reload(&self, path: &str) -> Result<(), String> {
        let mut catalog =
            Catalog::load(path).map_err(|e| format!("cannot load catalog {path}: {e}"))?;
        if catalog
            .verify()
            .iter()
            .any(|(_, report)| !report.is_clean())
        {
            return Err(format!(
                "refusing reload: catalog at {path} failed verification"
            ));
        }
        let table = catalog.into_table();
        let pool = ShardedBufferPool::new(self.pool_pages, self.pool_shards);
        set_catalog_gauges(&self.registry, &table);
        let schema = table.schema();
        *self.serving.lock().unwrap() = Arc::new(CatalogServing {
            table,
            schema,
            pool,
        });
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.metrics.reloads.inc();
        Ok(())
    }
}

impl ServeHandler for CatalogHandler {
    fn handle(&self, request: Request, meta: &RequestMeta) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Shutdown => Response::Ok,
            Request::Stats(format) => Response::Stats {
                text: match format {
                    StatsFormat::Prometheus => self.registry.snapshot().to_prometheus(),
                    StatsFormat::Json => self.registry.snapshot().to_json(),
                },
            },
            Request::SlowLog => Response::Stats {
                text: self.slow.to_json(),
            },
            Request::TableQuery {
                domain,
                deadline_ms,
                count_only,
                text,
            } => match self.evaluate(domain, deadline_ms, &text, meta) {
                Err(resp) => resp,
                Ok(result) if count_only => {
                    // COUNT pushdown: a popcount over the folded bitmap;
                    // row ids are never materialised or shipped.
                    self.metrics.counts.inc();
                    Response::Count {
                        count: result.count(),
                        scans: result.scans as u64,
                        decompressions: result.decompressions as u64,
                    }
                }
                Ok(result) => {
                    // Bound the reply frame before building it (same
                    // discipline as the index handler's batch path).
                    let reply_bytes = 32 + 8 * result.bitmap.count_ones() as u64;
                    if reply_bytes > u64::from(crate::protocol::MAX_PAYLOAD) {
                        return Response::Error {
                            code: ErrorCode::Internal,
                            message: format!(
                                "reply of {reply_bytes} bytes exceeds the frame cap; narrow the \
                                 query or use a count"
                            ),
                        };
                    }
                    let rows: Vec<u64> = result
                        .bitmap
                        .to_positions()
                        .iter()
                        .map(|&p| p as u64)
                        .collect();
                    self.metrics.rows_returned.add(rows.len() as u64);
                    Response::Rows(RowsReply {
                        scans: result.scans as u64,
                        decompressions: result.decompressions as u64,
                        rows,
                    })
                }
            },
            Request::Reload { path } => match self.reload(&path) {
                Ok(()) => Response::Ok,
                Err(message) => Response::Error {
                    code: ErrorCode::Internal,
                    message,
                },
            },
            Request::Query { .. } | Request::Batch { .. } => Response::Error {
                code: ErrorCode::BadQuery,
                message: "this server serves a catalog; single-index predicates have no \
                          attribute name — send a table query instead"
                    .into(),
            },
            Request::Ingest { .. } => Response::Error {
                code: ErrorCode::BadQuery,
                message: "catalog serving does not accept ingest".into(),
            },
        }
    }

    fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bix_core::{EncodingScheme, IndexConfig};

    #[test]
    fn start_serve_shutdown_smoke() {
        let column: Vec<u64> = (0..5_000u64).map(|i| i % 20).collect();
        let index = BitmapIndex::build(
            &column,
            &IndexConfig::one_component(20, EncodingScheme::Interval),
        );
        let server = Server::start(index, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let ping = Frame::new(5, Message::Request(Request::Ping));
        write_frame(&mut stream, &ping).unwrap();
        let (reply, _) = read_frame(&mut stream).unwrap();
        assert_eq!(reply.request_id, 5);
        assert_eq!(reply.msg, Message::Response(Response::Pong));
        // A fresh index server stamps epoch 1 and the default shard 0.
        assert_eq!(reply.epoch, 1);
        assert_eq!(reply.shard_id, 0);
        server.shutdown();
    }

    #[test]
    fn catalog_serving_answers_table_queries() {
        use bix_core::{Catalog, CostModel, Planner};

        let rows = 4_000usize;
        let region: Vec<u64> = (0..rows as u64).map(|i| i % 4).collect();
        let store: Vec<u64> = (0..rows as u64).map(|i| (i * 7) % 20).collect();
        let discount: Vec<u64> = (0..rows as u64).map(|i| (i * 3) % 10).collect();
        let columns: [(&str, &[u64], IndexConfig); 3] = [
            (
                "region",
                &region,
                IndexConfig::one_component(4, EncodingScheme::Equality),
            ),
            (
                "store",
                &store,
                IndexConfig::one_component(20, EncodingScheme::Interval),
            ),
            (
                "discount",
                &discount,
                IndexConfig::one_component(10, EncodingScheme::EqualityIntervalStar),
            ),
        ];
        let catalog = Catalog::build(rows, &columns);

        // Local oracle, computed before the table moves into the server.
        let text = "region in {0, 1} and (discount >= 7 or not store = 12)";
        let mut oracle_table = Catalog::build(rows, &columns).into_table();
        let plan = Planner::plan_text(&oracle_table.schema(), text).unwrap();
        let oracle = oracle_table.execute_plan(&plan, &CostModel::default());
        let want: Vec<u64> = oracle
            .bitmap
            .to_positions()
            .iter()
            .map(|&p| p as u64)
            .collect();
        assert!(
            !want.is_empty() && want.len() < rows,
            "query must discriminate"
        );

        let server =
            Server::start_catalog(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = crate::Client::connect(server.addr()).unwrap();

        let reply = client.table_query(text, EvalDomain::Auto, 0).unwrap();
        assert_eq!(reply.rows, want, "served rows must match the local oracle");

        // COUNT pushdown returns the same cardinality without rows.
        let count = client.table_count(text, EvalDomain::Auto, 0).unwrap();
        assert_eq!(count.count, want.len() as u64);

        // A fresh catalog server stamps epoch 1.
        assert_eq!(client.last_epoch(), 1);

        // Single-index predicates are refused typed: a catalog has no
        // anonymous "the" index to aim them at.
        let err = client.query("=3", EvalDomain::Auto, 0).unwrap_err();
        assert!(err.is_code(ErrorCode::BadQuery), "{err:?}");

        // Malformed expressions come back BadQuery, not Internal.
        let err = client
            .table_query("region in {", EvalDomain::Auto, 0)
            .unwrap_err();
        assert!(err.is_code(ErrorCode::BadQuery), "{err:?}");

        server.shutdown();
    }

    #[test]
    fn index_server_refuses_table_queries_typed() {
        let column: Vec<u64> = (0..500u64).map(|i| i % 8).collect();
        let index = BitmapIndex::build(
            &column,
            &IndexConfig::one_component(8, EncodingScheme::Equality),
        );
        let server = Server::start(index, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = crate::Client::connect(server.addr()).unwrap();
        let err = client
            .table_query("region = 1", EvalDomain::Auto, 0)
            .unwrap_err();
        assert!(err.is_code(ErrorCode::BadQuery), "{err:?}");
        server.shutdown();
    }

    /// A trivial handler proving the serving loop is application-
    /// agnostic and that stamping comes from the handler, not the index.
    struct EchoHandler {
        registry: MetricsRegistry,
    }

    impl ServeHandler for EchoHandler {
        fn handle(&self, request: Request, meta: &RequestMeta) -> Response {
            match request {
                Request::Ping => Response::Pong,
                Request::Shutdown => Response::Ok,
                _ => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("echo handler, allow_degraded={}", meta.allow_degraded),
                },
            }
        }

        fn registry(&self) -> &MetricsRegistry {
            &self.registry
        }

        fn epoch(&self) -> u64 {
            42
        }
    }

    #[test]
    fn custom_handlers_ride_the_same_loop_and_stamping() {
        let handler = Arc::new(EchoHandler {
            registry: MetricsRegistry::new(),
        });
        let config = ServerConfig {
            shard_id: 9,
            ..ServerConfig::default()
        };
        let server = Server::serve(handler, "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &Frame::new(1, Message::Request(Request::Ping))).unwrap();
        let (reply, _) = read_frame(&mut stream).unwrap();
        assert_eq!(reply.msg, Message::Response(Response::Pong));
        assert_eq!(reply.shard_id, 9);
        assert_eq!(reply.epoch, 42);
        // The allow-degraded flag reaches the handler via RequestMeta.
        let mut req = Frame::new(2, Message::Request(Request::Stats(StatsFormat::Json)));
        req.flags = FLAG_ALLOW_DEGRADED;
        write_frame(&mut stream, &req).unwrap();
        let (reply, _) = read_frame(&mut stream).unwrap();
        match reply.msg {
            Message::Response(Response::Error { message, .. }) => {
                assert!(message.contains("allow_degraded=true"), "{message}");
            }
            other => panic!("want the echo error, got {other:?}"),
        }
        server.shutdown();
    }
}
