//! Networked query serving for bitmap indexes.
//!
//! This crate turns the in-process query engine of `bix-core` into a
//! small, dependency-free TCP service:
//!
//! * [`protocol`] — a length-prefixed, CRC-checked binary wire format
//!   with a pure (socket-free) codec, hardened against untrusted input;
//! * [`server`] — an accept thread plus worker pool with bounded
//!   admission, per-request deadlines, hot index reload, graceful
//!   drain, and a live [`bix_core::MetricsRegistry`];
//! * [`client`] — a blocking client library (generic over the byte
//!   transport, with bounded jittered retry) used by the `bix client`
//!   CLI, the router, the integration tests, and the serving benchmark;
//! * [`router`] — scatter-gather serving over row-range shards with
//!   epoch fencing, per-shard deadline budgets, bounded retry, and
//!   opt-in degraded partial results;
//! * [`supervisor`] — circuit-breaker health tracking (`Up`/`Down`/
//!   `HalfOpen`) that routes traffic around dead shards;
//! * [`netfault`] — deterministic frame-level fault injection
//!   ([`FaultyStream`]) for chaos-testing the network path.
//!
//! ```no_run
//! use bix_server::{Client, Server, ServerConfig};
//! use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
//!
//! let column: Vec<u64> = (0..10_000).map(|i| i % 50).collect();
//! let index = BitmapIndex::build(
//!     &column,
//!     &IndexConfig::one_component(50, EncodingScheme::Interval),
//! );
//! let server = Server::start(index, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.query("10..19", EvalDomain::Auto, 0).unwrap();
//! println!("{} rows in {} scans", reply.rows.len(), reply.scans);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod netfault;
pub mod protocol;
pub mod router;
pub mod server;
pub mod supervisor;

pub use client::{Client, ClientError, ClientStats, CountReply, IngestAck, Outcome, RetryPolicy};
pub use netfault::{Direction, FaultyStream, NetFault, NetFaultPlan};
pub use protocol::{
    decode_frame, encode_frame, read_frame, write_frame, ErrorCode, Frame, Message, Request,
    Response, RowsReply, StatsFormat, WireError, EXT_LEN, EXT_LEN_TRACE, FLAG_ALLOW_DEGRADED,
    HEADER_LEN, MAGIC, MAX_BATCH, MAX_INGEST, MAX_PAYLOAD, MAX_SHARDS, MAX_SPANS, MAX_SPAN_ATTRS,
    TRACE_FLAG_SAMPLED, TRACE_FLAG_SPANS, VERSION, VERSION_EXT,
};
pub use router::{merge_replies, Router, RouterConfig, ShardReply};
pub use server::{CatalogHandler, IndexHandler, RequestMeta, ServeHandler, Server, ServerConfig};
pub use supervisor::{ShardState, Supervisor, SupervisorConfig};
