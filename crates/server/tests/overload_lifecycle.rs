//! Admission control, deadlines, hot reload, and shutdown semantics:
//! a saturated server answers with typed errors promptly (never a hung
//! socket), deadline overruns come back as error frames, reload swaps
//! the live index atomically, and a graceful drain lets in-flight work
//! finish within a bound.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use bix_core::{BitmapIndex, CodecKind, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{Client, ErrorCode, Server, ServerConfig};

fn build_index(shift: u64) -> BitmapIndex {
    let column: Vec<u64> = (0..30_000u64)
        .map(|i| (i * 37 + i / 13 + shift) % 50)
        .collect();
    let config =
        IndexConfig::one_component(50, EncodingScheme::Interval).with_codec(CodecKind::Bbc);
    BitmapIndex::build(&column, &config)
}

fn tiny_server() -> Server {
    // One worker, one queue slot: the third concurrent connection must
    // be turned away.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    Server::start(build_index(0), "127.0.0.1:0", config).expect("bind")
}

#[test]
fn saturated_queue_rejects_with_typed_overloaded_reply() {
    let server = tiny_server();
    let addr = server.addr();

    // A parks the single worker: it connects and sends nothing, so the
    // worker sits in its read loop against A's idle socket.
    let blocker = TcpStream::connect(addr).expect("blocker connects");
    std::thread::sleep(Duration::from_millis(300));
    // B fills the one queue slot.
    let _queued = TcpStream::connect(addr).expect("queued connects");
    std::thread::sleep(Duration::from_millis(100));

    // C must get a prompt, typed Overloaded reply — not a hung socket.
    let started = Instant::now();
    let mut rejected = Client::connect(addr).expect("rejected connects");
    let err = rejected.ping().expect_err("admission must refuse");
    assert!(
        err.is_code(ErrorCode::Overloaded),
        "want Overloaded, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "rejection took {:?}",
        started.elapsed()
    );

    // Releasing both held connections frees the worker and the queue
    // slot; the server serves new clients again.
    drop(blocker);
    drop(_queued);
    std::thread::sleep(Duration::from_millis(300));
    let mut revived = Client::connect(addr).expect("connect after release");
    revived.ping().expect("server serves again");
    server.shutdown();
}

#[test]
fn deadline_overrun_returns_typed_error_frame() {
    let server = Server::start(build_index(0), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // 2000 predicates cannot finish inside 1ms; the reply must be a
    // DeadlineExceeded error frame, not a timeout or partial result.
    let heavy: Vec<String> = (0..2000)
        .map(|i| format!("!{}..{}", i % 25, 25 + i % 25))
        .collect();
    let err = client
        .batch(&heavy, EvalDomain::Auto, 1)
        .expect_err("1ms deadline must trip");
    assert!(
        err.is_code(ErrorCode::DeadlineExceeded),
        "want DeadlineExceeded, got {err}"
    );

    // The connection stays usable: deadline errors are per-request.
    let reply = client
        .query("=7", EvalDomain::Auto, 0)
        .expect("next request fine");
    assert!(!reply.rows.is_empty());
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let server = Server::start(build_index(0), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // A long batch that will still be running when the drain starts.
    // Equality predicates keep the reply under the 64 MiB frame cap.
    let heavy: Vec<String> = (0..3000).map(|i| format!("={}", i % 50)).collect();
    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.batch(&heavy, EvalDomain::Auto, 0)
    });
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    server.shutdown();
    let drained = started.elapsed();

    // The in-flight batch completed with a real reply, within a bound.
    let batch = inflight
        .join()
        .expect("client thread")
        .expect("drained reply");
    assert_eq!(batch.len(), 3000);
    assert!(drained < Duration::from_secs(30), "drain took {drained:?}");

    // And the listener is gone: new connections fail or are refused.
    assert!(
        Client::connect_with_timeout(addr, Duration::from_millis(500))
            .map(|mut c| c.ping().is_err())
            .unwrap_or(true)
    );
}

#[test]
fn oversized_reply_is_a_typed_error_not_a_dead_worker() {
    let server = Server::start(build_index(0), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // 4096 near-full-table negations would need ~960 MB of row ids —
    // far past the 64 MiB frame cap. The server must refuse with a
    // typed error and keep serving.
    let giant: Vec<String> = (0..4096).map(|_| "!0..0".to_string()).collect();
    let err = client
        .batch(&giant, EvalDomain::Auto, 0)
        .expect_err("reply cannot fit a frame");
    assert!(err.is_code(ErrorCode::Internal), "want Internal, got {err}");

    let reply = client
        .query("=7", EvalDomain::Auto, 0)
        .expect("worker survived");
    assert!(!reply.rows.is_empty());
    server.shutdown();
}

#[test]
fn shutdown_frame_stops_the_server() {
    let server = Server::start(build_index(0), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().expect("alive");
    client.shutdown().expect("shutdown acked");
    let started = Instant::now();
    server.join();
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn hot_reload_swaps_the_serving_index_atomically() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("bix_reload_test_{}.idx", std::process::id()));
    build_index(17).save(&path).expect("save replacement index");

    let mut original = build_index(0);
    let expected_before: Vec<u64> = original
        .evaluate(&bix_core::Query::range(3, 9))
        .to_positions()
        .iter()
        .map(|&p| p as u64)
        .collect();
    let mut replacement = build_index(17);
    let expected_after: Vec<u64> = replacement
        .evaluate(&bix_core::Query::range(3, 9))
        .to_positions()
        .iter()
        .map(|&p| p as u64)
        .collect();
    assert_ne!(
        expected_before, expected_after,
        "shift must change the data"
    );

    let server = Server::start(original, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let before = client
        .query("3..9", EvalDomain::Auto, 0)
        .expect("pre-reload query");
    assert_eq!(before.rows, expected_before);

    // A bad path must fail loudly and leave the old index serving.
    let err = client
        .reload("/nonexistent/definitely_missing.idx")
        .expect_err("bad reload path");
    assert!(err.is_code(ErrorCode::Internal), "want Internal, got {err}");
    let still = client
        .query("3..9", EvalDomain::Auto, 0)
        .expect("old index still serving");
    assert_eq!(still.rows, expected_before);

    client.reload(path.to_str().unwrap()).expect("reload");
    let after = client
        .query("3..9", EvalDomain::Auto, 0)
        .expect("post-reload query");
    assert_eq!(after.rows, expected_after);

    std::fs::remove_file(&path).ok();
    server.shutdown();
}
