//! Fleet-wide distributed tracing, end to end over real sockets:
//! a traced query enters the router, fans out to three shards, and the
//! client gets back ONE assembled span tree covering every process the
//! request touched — router admission, per-shard legs (with retries
//! under fault injection), and the shards' own evaluation spans.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    FaultyStream, NetFaultPlan, Request, RequestMeta, Response, RetryPolicy, Router, RouterConfig,
    ServeHandler, Server, ServerConfig, SupervisorConfig,
};
use bix_telemetry::{SpanRecord, TraceContext, Tracer};
use bix_workload::DatasetSpec;

const CARDINALITY: u64 = 24;
const ROWS: usize = 6_000;

fn corpus() -> Vec<u64> {
    DatasetSpec {
        rows: ROWS,
        cardinality: CARDINALITY,
        zipf_z: 1.0,
        seed: 0xc0de,
    }
    .generate()
    .values
}

fn build_index(column: &[u64]) -> BitmapIndex {
    BitmapIndex::build(
        column,
        &IndexConfig::one_component(CARDINALITY, EncodingScheme::Interval),
    )
}

/// Three real TCP shard servers over contiguous row slices, capturing
/// every query in their slow logs (threshold 0) so the test can check
/// fleet-wide trace-id propagation.
fn start_shards(column: &[u64], bounds: &[usize]) -> Vec<Server> {
    bounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let config = ServerConfig {
                shard_id: i as u16,
                slow_threshold_ms: 0,
                ..ServerConfig::default()
            };
            Server::start(build_index(&column[w[0]..w[1]]), "127.0.0.1:0", config)
                .expect("bind shard")
        })
        .collect()
}

fn router_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy::standard(0x5eed),
        io_timeout: Duration::from_millis(500),
        health_interval: Duration::ZERO,
        supervisor: SupervisorConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
        },
        slow_threshold_ms: 0,
        ..RouterConfig::default()
    }
}

/// Index of the single root span (no parent) — asserts there is
/// exactly one, i.e. the forest is one tree.
fn single_root(spans: &[SpanRecord]) -> usize {
    let roots: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent.is_none())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        roots.len(),
        1,
        "want one assembled tree, got {} roots in {:?}",
        roots.len(),
        spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    roots[0]
}

/// Whether `spans[i]` has an ancestor whose name starts with `prefix`.
fn has_ancestor(spans: &[SpanRecord], mut i: usize, prefix: &str) -> bool {
    while let Some(parent) = spans[i].parent {
        i = parent.raw() as usize;
        if spans[i].name.starts_with(prefix) {
            return true;
        }
    }
    false
}

#[test]
fn traced_query_assembles_one_cross_process_tree() {
    let column = corpus();
    let bounds = [0, 2_000, 4_000, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    // The router itself is served over TCP, exactly as `bix route` runs
    // it, so the assembled tree crosses two wire hops: client → router
    // and router → shards.
    let router = Router::new(addrs, router_config());
    let front = Server::serve(
        Arc::new(router),
        "127.0.0.1:0",
        ServerConfig {
            slow_threshold_ms: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind router front");

    let mut client = bix_server::Client::connect(front.addr()).expect("dial router");
    let trace = TraceContext::generate();
    client.set_trace(trace);
    let reply = client
        .query("in:1,2,3", EvalDomain::Auto, 4_000)
        .expect("traced query");
    assert!(!reply.rows.is_empty(), "query should match rows");

    let spans = client.last_spans().to_vec();
    assert!(!spans.is_empty(), "sampled reply must carry spans");

    // One tree, rooted at the router's serve span.
    let root = single_root(&spans);
    assert!(
        spans[root].name.starts_with("serve"),
        "root should be the router serve span, got {:?}",
        spans[root].name
    );
    assert!(
        spans[root].attrs.iter().any(|(k, _)| k == "queue_wait_ns"),
        "router serve span must carry admission wait"
    );
    assert!(
        spans.iter().any(|s| s.name.starts_with("fanout")),
        "fan-out span missing"
    );
    assert!(
        spans.iter().any(|s| s.name.starts_with("merge")),
        "merge span missing"
    );

    // Every decoded parent link resolves backwards — the wire grammar
    // guarantees it, but the grafted composite must preserve it too.
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = s.parent {
            assert!(
                (p.raw() as usize) < i,
                "span {i} ({:?}) has a forward parent",
                s.name
            );
        }
    }

    // Each shard contributed: a router-side leg span AND, grafted under
    // it, the shard process's own serve span with its evaluation below.
    for shard in 0..3 {
        let leg = format!("leg shard={shard}");
        assert!(
            spans.iter().any(|s| s.name == leg),
            "missing router leg for shard {shard}"
        );
        let serve = format!("serve shard={shard}");
        let grafted = spans
            .iter()
            .enumerate()
            .any(|(i, s)| s.name == serve && has_ancestor(&spans, i, &leg));
        assert!(
            grafted,
            "shard {shard}'s serve span must be grafted under its leg"
        );
    }
    // Shard-side evaluation detail survived the graft: at least one
    // query-evaluation span per shard leg.
    let eval_spans = spans
        .iter()
        .enumerate()
        .filter(|(i, s)| s.name.starts_with("query") && has_ancestor(&spans, *i, "leg shard="))
        .count();
    assert!(
        eval_spans >= 3,
        "want >=1 grafted evaluation span per shard, got {eval_spans}"
    );

    // The same trace id reached every process: with threshold-0 slow
    // logs, the aggregated slowlog names it on the router and on all
    // three shards.
    let hex_id = format!("{:032x}", trace.trace_id);
    let slow = client.slowlog().expect("aggregated slowlog");
    let hits = slow.matches(&hex_id).count();
    assert!(
        hits >= 4,
        "trace id should appear in router + 3 shard slowlogs, got {hits} in {slow}"
    );

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn retry_attempts_appear_as_spans_under_fault_injection() {
    let column = corpus();
    let bounds = [0, 2_000, 4_000, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    // Shard 1's first leg-carrying dial dies through a FaultyStream
    // (dial 0 is the router's startup shape probe); the retry must land
    // and the failed attempt must stay visible in the trace.
    let dials = Arc::new(AtomicU64::new(0));
    let dialer: bix_server::router::ShardDialer = Arc::new(move |shard, addr: &str| {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        if shard == 1 {
            let nth = dials.fetch_add(1, Ordering::Relaxed);
            if nth == 1 {
                let plan = NetFaultPlan::new().fault(
                    bix_server::Direction::Recv,
                    0,
                    bix_server::NetFault::Truncate,
                );
                return Ok(Box::new(FaultyStream::new(stream, plan))
                    as Box<dyn bix_server::router::Transport>);
            }
        }
        Ok(Box::new(stream) as Box<dyn bix_server::router::Transport>)
    });
    let router = Router::with_dialer(addrs, router_config(), dialer);

    // Drive the router in-process with a live tracer, the way its
    // serving front does for sampled requests.
    let tracer = Tracer::new();
    let serve_span = tracer.span("serve shard=0", None);
    let meta = RequestMeta {
        trace: TraceContext::generate(),
        tracer: tracer.clone(),
        span: serve_span.id(),
        ..RequestMeta::default()
    };
    let response = router.handle(
        Request::Query {
            domain: EvalDomain::Auto,
            deadline_ms: 4_000,
            predicate: "in:1,2,3".into(),
        },
        &meta,
    );
    serve_span.finish();
    assert!(
        matches!(response, Response::Rows(_)),
        "retry must recover the faulted leg: {response:?}"
    );

    let spans = tracer.records();
    single_root(&spans);
    let leg1_attempts: Vec<&SpanRecord> = spans
        .iter()
        .enumerate()
        .filter(|(i, s)| s.name.starts_with("attempt") && has_ancestor(&spans, *i, "leg shard=1"))
        .map(|(_, s)| s)
        .collect();
    assert!(
        leg1_attempts.len() >= 2,
        "faulted leg must show the failed try and the retry, got {}",
        leg1_attempts.len()
    );
    assert!(
        leg1_attempts
            .iter()
            .any(|s| s.attrs.iter().any(|(k, _)| k == "error")),
        "the failed attempt must carry its error"
    );
    assert!(
        spans
            .iter()
            .enumerate()
            .any(|(i, s)| s.name.starts_with("backoff") && has_ancestor(&spans, i, "leg shard=1")),
        "backoff between attempts must be a visible span"
    );
    // The recovered attempt still grafted the shard's serve span.
    assert!(
        spans
            .iter()
            .enumerate()
            .any(|(i, s)| s.name == "serve shard=1" && has_ancestor(&spans, i, "attempt")),
        "shard 1's spans must hang under the successful attempt"
    );

    // Unfaulted legs ran exactly one attempt each.
    for shard in [0usize, 2] {
        let n = spans
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.name.starts_with("attempt")
                    && has_ancestor(&spans, *i, &format!("leg shard={shard}"))
            })
            .count();
        assert_eq!(n, 1, "clean leg {shard} should have one attempt");
    }

    for shard in shards {
        shard.shutdown();
    }
}

/// An outright dial failure (connection refused at the socket layer) is
/// also a traced attempt, not a silent internal retry.
#[test]
fn dial_errors_are_traced_attempts() {
    let column = corpus();
    let bounds = [0, 3_000, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    let dials = Arc::new(AtomicU64::new(0));
    let dialer: bix_server::router::ShardDialer = Arc::new(move |shard, addr: &str| {
        if shard == 0 {
            let nth = dials.fetch_add(1, Ordering::Relaxed);
            if nth == 1 {
                return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "injected"));
            }
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        Ok(Box::new(stream) as Box<dyn bix_server::router::Transport>)
    });
    let router = Router::with_dialer(addrs, router_config(), dialer);

    let tracer = Tracer::new();
    let root = tracer.span("serve shard=0", None);
    let meta = RequestMeta {
        trace: TraceContext::generate(),
        tracer: tracer.clone(),
        span: root.id(),
        ..RequestMeta::default()
    };
    let response = router.handle(
        Request::Query {
            domain: EvalDomain::Auto,
            deadline_ms: 4_000,
            predicate: "=3".into(),
        },
        &meta,
    );
    root.finish();
    assert!(
        matches!(response, Response::Rows(_)),
        "dial-refused leg must recover: {response:?}"
    );

    let spans = tracer.records();
    let attempts = spans
        .iter()
        .enumerate()
        .filter(|(i, s)| s.name.starts_with("attempt") && has_ancestor(&spans, *i, "leg shard=0"))
        .count();
    assert!(
        attempts >= 2,
        "refused dial must surface as a failed attempt span, got {attempts}"
    );

    for shard in shards {
        shard.shutdown();
    }
}
