//! Protocol hardening: no input — random bytes, truncations, bit
//! flips, or lying length fields — may panic the codec, and a live
//! server must survive socket-level garbage with a typed reply or a
//! clean close, never a hang or a crash.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    decode_frame, encode_frame, Client, Frame, Message, Request, Response, RowsReply, Server,
    ServerConfig, StatsFormat,
};
use proptest::prelude::*;

/// Printable-ASCII soup of up to `max` bytes.
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_domain() -> impl Strategy<Value = EvalDomain> {
    prop::sample::select(vec![
        EvalDomain::Auto,
        EvalDomain::Compressed,
        EvalDomain::Raw,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Shutdown),
        (arb_domain(), 0u32..10_000, arb_text(40)).prop_map(|(domain, deadline_ms, predicate)| {
            Request::Query {
                domain,
                deadline_ms,
                predicate,
            }
        }),
        (
            arb_domain(),
            0u32..10_000,
            prop::collection::vec(arb_text(40), 0..5)
        )
            .prop_map(|(domain, deadline_ms, predicates)| Request::Batch {
                domain,
                deadline_ms,
                predicates,
            }),
        prop::sample::select(vec![StatsFormat::Prometheus, StatsFormat::Json])
            .prop_map(Request::Stats),
        arb_text(60).prop_map(|path| Request::Reload { path }),
    ]
}

fn arb_rows() -> impl Strategy<Value = RowsReply> {
    (
        0u64..100,
        0u64..100,
        prop::collection::vec(0u64..1_000_000, 0..20),
    )
        .prop_map(|(scans, decompressions, rows)| RowsReply {
            scans,
            decompressions,
            rows,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ok),
        arb_rows().prop_map(Response::Rows),
        prop::collection::vec(arb_rows(), 0..4).prop_map(Response::BatchRows),
        arb_text(60).prop_map(|text| Response::Stats { text }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Total: decode either succeeds or returns a typed error.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn arbitrary_frames_round_trip(req in arb_request(), id in any::<u64>()) {
        let frame = Frame { request_id: id, msg: Message::Request(req) };
        let bytes = encode_frame(&frame);
        let (got, used) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn arbitrary_replies_round_trip(resp in arb_response(), id in any::<u64>()) {
        let frame = Frame { request_id: id, msg: Message::Response(resp) };
        let bytes = encode_frame(&frame);
        let (got, _) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn single_byte_flips_never_panic(req in arb_request(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let frame = Frame { request_id: 9, msg: Message::Request(req) };
        let mut bytes = encode_frame(&frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        // Either the flip is caught (header check, CRC, grammar) or it
        // produced a different-but-valid frame; both are fine, panics
        // and over-allocation are not.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn every_prefix_truncation_is_an_error(req in arb_request()) {
        let frame = Frame { request_id: 3, msg: Message::Request(req) };
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }
}

#[test]
fn live_server_survives_socket_garbage() {
    let column: Vec<u64> = (0..5_000u64).map(|i| i % 20).collect();
    let index = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(20, EncodingScheme::Interval),
    );
    let config = ServerConfig {
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let payloads: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        vec![0u8; 64],
        vec![0xff; 64],
        // Correct magic+version, then garbage.
        [b"bX\x01".to_vec(), vec![0xab; 40]].concat(),
        // A valid ping frame with its CRC bit-flipped.
        {
            let mut f = encode_frame(&Frame {
                request_id: 1,
                msg: Message::Request(Request::Ping),
            });
            let last = f.len() - 1;
            f[last] ^= 0x01;
            f
        },
        // A header claiming a near-cap payload that never arrives.
        {
            let mut h = Vec::new();
            h.extend_from_slice(b"bX\x01\x02");
            h.extend_from_slice(&7u64.to_le_bytes());
            h.extend_from_slice(&((32u32 << 20) - 1).to_le_bytes());
            h
        },
    ];

    for (i, garbage) in payloads.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(garbage).expect("write garbage");
        // The server must answer with an error frame or close the
        // connection — read_to_end returning is the proof it did not
        // leave us hanging (the read timeout would fire otherwise).
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        // Whatever came back, if anything, must itself be well-formed.
        if !buf.is_empty() {
            let (reply, _) = decode_frame(&buf)
                .unwrap_or_else(|e| panic!("case {i}: server sent an undecodable reply: {e}"));
            assert!(
                matches!(reply.msg, Message::Response(Response::Error { .. })),
                "case {i}: want a typed error, got {:?}",
                reply.msg
            );
        }
        // The server is still healthy for the next legitimate client.
        let mut client = Client::connect(addr).expect("connect after garbage");
        client
            .ping()
            .unwrap_or_else(|e| panic!("case {i}: server died: {e}"));
    }
    server.shutdown();
}
