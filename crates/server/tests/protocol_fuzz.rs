//! Protocol hardening: no input — random bytes, truncations, bit
//! flips, or lying length fields — may panic the codec, and a live
//! server must survive socket-level garbage with a typed reply or a
//! clean close, never a hang or a crash.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    decode_frame, encode_frame, Client, Frame, Message, Request, Response, RowsReply, Server,
    ServerConfig, StatsFormat, WireError, EXT_LEN, HEADER_LEN, VERSION, VERSION_EXT,
};
use proptest::prelude::*;

/// Printable-ASCII soup of up to `max` bytes.
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_domain() -> impl Strategy<Value = EvalDomain> {
    prop::sample::select(vec![
        EvalDomain::Auto,
        EvalDomain::Compressed,
        EvalDomain::Raw,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Shutdown),
        (arb_domain(), 0u32..10_000, arb_text(40)).prop_map(|(domain, deadline_ms, predicate)| {
            Request::Query {
                domain,
                deadline_ms,
                predicate,
            }
        }),
        (
            arb_domain(),
            0u32..10_000,
            prop::collection::vec(arb_text(40), 0..5)
        )
            .prop_map(|(domain, deadline_ms, predicates)| Request::Batch {
                domain,
                deadline_ms,
                predicates,
            }),
        prop::sample::select(vec![StatsFormat::Prometheus, StatsFormat::Json])
            .prop_map(Request::Stats),
        arb_text(60).prop_map(|path| Request::Reload { path }),
    ]
}

fn arb_rows() -> impl Strategy<Value = RowsReply> {
    (
        0u64..100,
        0u64..100,
        prop::collection::vec(0u64..1_000_000, 0..20),
    )
        .prop_map(|(scans, decompressions, rows)| RowsReply {
            scans,
            decompressions,
            rows,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ok),
        arb_rows().prop_map(Response::Rows),
        prop::collection::vec(arb_rows(), 0..4).prop_map(Response::BatchRows),
        arb_text(60).prop_map(|text| Response::Stats { text }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Total: decode either succeeds or returns a typed error.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn arbitrary_frames_round_trip(req in arb_request(), id in any::<u64>()) {
        let frame = Frame { flags: 0, shard_id: 0, epoch: 0, request_id: id, msg: Message::Request(req) };
        let bytes = encode_frame(&frame);
        let (got, used) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn arbitrary_replies_round_trip(resp in arb_response(), id in any::<u64>()) {
        let frame = Frame { flags: 0, shard_id: 0, epoch: 0, request_id: id, msg: Message::Response(resp) };
        let bytes = encode_frame(&frame);
        let (got, _) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn single_byte_flips_never_panic(req in arb_request(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let frame = Frame { flags: 0, shard_id: 0, epoch: 0, request_id: 9, msg: Message::Request(req) };
        let mut bytes = encode_frame(&frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        // Either the flip is caught (header check, CRC, grammar) or it
        // produced a different-but-valid frame; both are fine, panics
        // and over-allocation are not.
        let _ = decode_frame(&bytes);
    }

    // Forward compatibility: frames with no routing state keep the v1
    // layout bit-for-bit, so pre-sharding peers interoperate unchanged.
    #[test]
    fn unrouted_frames_stay_on_the_v1_wire(req in arb_request(), id in any::<u64>()) {
        let frame = Frame::new(id, Message::Request(req));
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes[2], VERSION, "zeroed routing must encode as v1");
        let (got, used) = decode_frame(&bytes).expect("v1 decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn routed_frames_round_trip_on_the_v2_wire(
        req in arb_request(),
        id in any::<u64>(),
        shard in 0u16..1024,
        epoch in 1u64..u64::MAX,
        flags in any::<u8>(),
    ) {
        let frame = Frame { request_id: id, flags, shard_id: shard, epoch, msg: Message::Request(req) };
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes[2], VERSION_EXT);
        let (got, _) = decode_frame(&bytes).expect("v2 decode");
        prop_assert_eq!(got, frame);
    }

    // An ext region of a length this build does not know is a typed
    // rejection, never a panic or a misparse — the reserved length byte
    // is how future revisions can grow the extension.
    #[test]
    fn unknown_extension_lengths_are_rejected_typed(
        req in arb_request(),
        // 0..=254 with values >= EXT_LEN shifted up one: every length
        // except the valid EXT_LEN itself.
        bad_len in (0u8..255).prop_map(|raw| if raw >= EXT_LEN { raw + 1 } else { raw }),
        extra in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let frame = Frame { request_id: 7, flags: 0, shard_id: 3, epoch: 9, msg: Message::Request(req) };
        let mut bytes = encode_frame(&frame);
        bytes[HEADER_LEN] = bad_len;
        if bad_len > EXT_LEN {
            // Splice in trailing ext bytes this build has never heard
            // of, as a longer-ext future revision would.
            let at = HEADER_LEN + 1 + EXT_LEN as usize;
            let extra = &extra[..extra.len().min((bad_len - EXT_LEN) as usize)];
            for (i, b) in extra.iter().enumerate() {
                bytes.insert(at + i, *b);
            }
        }
        match decode_frame(&bytes) {
            Err(WireError::BadExtension(got)) => prop_assert_eq!(got, bad_len),
            Err(_) => {} // shorter ext may surface as truncation/CRC — still typed
            Ok(_) => prop_assert!(false, "unknown ext length {} must not decode", bad_len),
        }
    }

    #[test]
    fn every_prefix_truncation_is_an_error(req in arb_request()) {
        let frame = Frame { flags: 0, shard_id: 0, epoch: 0, request_id: 3, msg: Message::Request(req) };
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }
}

#[test]
fn live_server_survives_socket_garbage() {
    let column: Vec<u64> = (0..5_000u64).map(|i| i % 20).collect();
    let index = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(20, EncodingScheme::Interval),
    );
    let config = ServerConfig {
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let payloads: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        vec![0u8; 64],
        vec![0xff; 64],
        // Correct magic+version, then garbage.
        [b"bX\x01".to_vec(), vec![0xab; 40]].concat(),
        // A valid ping frame with its CRC bit-flipped.
        {
            let mut f = encode_frame(&Frame {
                flags: 0,
                shard_id: 0,
                epoch: 0,
                request_id: 1,
                msg: Message::Request(Request::Ping),
            });
            let last = f.len() - 1;
            f[last] ^= 0x01;
            f
        },
        // A header claiming a near-cap payload that never arrives.
        {
            let mut h = Vec::new();
            h.extend_from_slice(b"bX\x01\x02");
            h.extend_from_slice(&7u64.to_le_bytes());
            h.extend_from_slice(&((32u32 << 20) - 1).to_le_bytes());
            h
        },
    ];

    for (i, garbage) in payloads.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(garbage).expect("write garbage");
        // The server must answer with an error frame or close the
        // connection — read_to_end returning is the proof it did not
        // leave us hanging (the read timeout would fire otherwise).
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        // Whatever came back, if anything, must itself be well-formed.
        if !buf.is_empty() {
            let (reply, _) = decode_frame(&buf)
                .unwrap_or_else(|e| panic!("case {i}: server sent an undecodable reply: {e}"));
            assert!(
                matches!(reply.msg, Message::Response(Response::Error { .. })),
                "case {i}: want a typed error, got {:?}",
                reply.msg
            );
        }
        // The server is still healthy for the next legitimate client.
        let mut client = Client::connect(addr).expect("connect after garbage");
        client
            .ping()
            .unwrap_or_else(|e| panic!("case {i}: server died: {e}"));
    }
    server.shutdown();
}
