//! Protocol hardening: no input — random bytes, truncations, bit
//! flips, or lying length fields — may panic the codec, and a live
//! server must survive socket-level garbage with a typed reply or a
//! clean close, never a hang or a crash.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    decode_frame, encode_frame, Client, Frame, Message, Request, Response, RowsReply, Server,
    ServerConfig, StatsFormat, WireError, EXT_LEN, EXT_LEN_TRACE, HEADER_LEN, VERSION, VERSION_EXT,
};
use bix_telemetry::{SpanId, SpanRecord, TraceContext};
use proptest::prelude::*;

/// Printable-ASCII soup of up to `max` bytes.
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_domain() -> impl Strategy<Value = EvalDomain> {
    prop::sample::select(vec![
        EvalDomain::Auto,
        EvalDomain::Compressed,
        EvalDomain::Raw,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Shutdown),
        (arb_domain(), 0u32..10_000, arb_text(40)).prop_map(|(domain, deadline_ms, predicate)| {
            Request::Query {
                domain,
                deadline_ms,
                predicate,
            }
        }),
        (
            arb_domain(),
            0u32..10_000,
            prop::collection::vec(arb_text(40), 0..5)
        )
            .prop_map(|(domain, deadline_ms, predicates)| Request::Batch {
                domain,
                deadline_ms,
                predicates,
            }),
        prop::sample::select(vec![StatsFormat::Prometheus, StatsFormat::Json])
            .prop_map(Request::Stats),
        arb_text(60).prop_map(|path| Request::Reload { path }),
        (arb_domain(), 0u32..10_000, any::<bool>(), arb_text(80)).prop_map(
            |(domain, deadline_ms, count_only, text)| Request::TableQuery {
                domain,
                deadline_ms,
                count_only,
                text,
            }
        ),
    ]
}

fn arb_rows() -> impl Strategy<Value = RowsReply> {
    (
        0u64..100,
        0u64..100,
        prop::collection::vec(0u64..1_000_000, 0..20),
    )
        .prop_map(|(scans, decompressions, rows)| RowsReply {
            scans,
            decompressions,
            rows,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ok),
        arb_rows().prop_map(Response::Rows),
        prop::collection::vec(arb_rows(), 0..4).prop_map(Response::BatchRows),
        arb_text(60).prop_map(|text| Response::Stats { text }),
        (any::<u64>(), 0u64..100, 0u64..100).prop_map(|(count, scans, decompressions)| {
            Response::Count {
                count,
                scans,
                decompressions,
            }
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = TraceContext> {
    (any::<u128>(), any::<u64>(), any::<bool>()).prop_map(|(trace_id, parent_span, sampled)| {
        TraceContext {
            trace_id,
            parent_span,
            sampled,
        }
    })
}

/// A structurally valid span forest: every parent link points at an
/// earlier span, as a real tracer guarantees.
fn arb_spans(max: usize) -> impl Strategy<Value = Vec<SpanRecord>> {
    prop::collection::vec(
        (
            arb_text(12),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((arb_text(6), arb_text(6)), 0..3),
            any::<u32>(),
        ),
        0..max,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (name, start_ns, end_ns, attrs, pseed))| SpanRecord {
                name,
                parent: if i == 0 || pseed % (i as u32 + 1) == 0 {
                    None
                } else {
                    Some(SpanId::from_raw(pseed % i as u32))
                },
                start_ns,
                end_ns,
                attrs,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Total: decode either succeeds or returns a typed error.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn arbitrary_frames_round_trip(req in arb_request(), id in any::<u64>()) {
        let frame = Frame::new(id, Message::Request(req));
        let bytes = encode_frame(&frame);
        let (got, used) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn arbitrary_replies_round_trip(resp in arb_response(), id in any::<u64>()) {
        let frame = Frame::new(id, Message::Response(resp));
        let bytes = encode_frame(&frame);
        let (got, _) = decode_frame(&bytes).expect("round trip");
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn single_byte_flips_never_panic(req in arb_request(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let frame = Frame::new(9, Message::Request(req));
        let mut bytes = encode_frame(&frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        // Either the flip is caught (header check, CRC, grammar) or it
        // produced a different-but-valid frame; both are fine, panics
        // and over-allocation are not.
        let _ = decode_frame(&bytes);
    }

    // Forward compatibility: frames with no routing state keep the v1
    // layout bit-for-bit, so pre-sharding peers interoperate unchanged.
    #[test]
    fn unrouted_frames_stay_on_the_v1_wire(req in arb_request(), id in any::<u64>()) {
        let frame = Frame::new(id, Message::Request(req));
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes[2], VERSION, "zeroed routing must encode as v1");
        let (got, used) = decode_frame(&bytes).expect("v1 decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn routed_frames_round_trip_on_the_v2_wire(
        req in arb_request(),
        id in any::<u64>(),
        shard in 0u16..1024,
        epoch in 1u64..u64::MAX,
        flags in any::<u8>(),
    ) {
        let frame = Frame { flags, shard_id: shard, epoch, ..Frame::new(id, Message::Request(req)) };
        let bytes = encode_frame(&frame);
        prop_assert_eq!(bytes[2], VERSION_EXT);
        let (got, _) = decode_frame(&bytes).expect("v2 decode");
        prop_assert_eq!(got, frame);
    }

    // An ext region of a length this build does not know is a typed
    // rejection, never a panic or a misparse — the reserved length byte
    // is how future revisions can grow the extension.
    #[test]
    fn unknown_extension_lengths_are_rejected_typed(
        req in arb_request(),
        // 0..=252 with the two valid lengths skipped: every length
        // except EXT_LEN and EXT_LEN_TRACE.
        bad_len in (0u8..253).prop_map(|raw| {
            let mut v = raw;
            if v >= EXT_LEN { v += 1; }
            if v >= EXT_LEN_TRACE { v += 1; }
            v
        }),
        extra in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let frame = Frame { shard_id: 3, epoch: 9, ..Frame::new(7, Message::Request(req)) };
        let mut bytes = encode_frame(&frame);
        bytes[HEADER_LEN] = bad_len;
        if bad_len > EXT_LEN {
            // Splice in trailing ext bytes this build has never heard
            // of, as a longer-ext future revision would.
            let at = HEADER_LEN + 1 + EXT_LEN as usize;
            let extra = &extra[..extra.len().min((bad_len - EXT_LEN) as usize)];
            for (i, b) in extra.iter().enumerate() {
                bytes.insert(at + i, *b);
            }
        }
        match decode_frame(&bytes) {
            Err(WireError::BadExtension(got)) => prop_assert_eq!(got, bad_len),
            Err(_) => {} // shorter ext may surface as truncation/CRC — still typed
            Ok(_) => prop_assert!(false, "unknown ext length {} must not decode", bad_len),
        }
    }

    #[test]
    fn every_prefix_truncation_is_an_error(req in arb_request()) {
        let frame = Frame::new(3, Message::Request(req));
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    // Any live trace context promotes the frame to the long (36-byte)
    // extension, and everything — routing state, context, span forest —
    // survives the round trip intact.
    #[test]
    fn traced_frames_round_trip_on_the_long_extension(
        req in arb_request(),
        id in any::<u64>(),
        shard in 0u16..1024,
        epoch in any::<u64>(),
        trace in arb_trace(),
        spans in arb_spans(8),
    ) {
        let mut frame = Frame { shard_id: shard, epoch, ..Frame::new(id, Message::Request(req)) };
        frame.trace = trace;
        frame.spans = spans;
        let bytes = encode_frame(&frame);
        if !frame.trace.is_zero() || !frame.spans.is_empty() {
            prop_assert_eq!(bytes[2], VERSION_EXT);
            prop_assert_eq!(bytes[HEADER_LEN], EXT_LEN_TRACE);
        }
        let (got, used) = decode_frame(&bytes).expect("traced round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, frame);
    }

    // A flipped bit anywhere in the trace extension is caught by the
    // CRC (or an earlier structural check) — corruption can never smear
    // one trace into another.
    #[test]
    fn trace_extension_bit_flips_are_always_caught(
        trace in arb_trace(),
        spans in arb_spans(4),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        prop_assume!(!trace.is_zero());
        let mut frame = Frame::new(21, Message::Request(Request::Ping));
        frame.trace = trace;
        frame.spans = spans;
        let mut bytes = encode_frame(&frame);
        // Target only the ext region: length byte plus the 36 ext bytes.
        let pos = HEADER_LEN + (byte_seed % (1 + EXT_LEN_TRACE as u64)) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_frame(&bytes).is_err(),
            "corrupted trace ext at byte {} bit {} must not decode",
            pos,
            bit
        );
    }

    // Truncation totality holds on the long-extension path too: every
    // strict prefix of a traced frame is a typed error, never a panic
    // or a partial parse.
    #[test]
    fn every_traced_prefix_truncation_is_an_error(
        trace in arb_trace(),
        spans in arb_spans(4),
    ) {
        prop_assume!(!trace.is_zero());
        let mut frame = Frame::new(5, Message::Request(Request::Ping));
        frame.trace = trace;
        frame.spans = spans;
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }
}

#[test]
fn live_server_survives_socket_garbage() {
    let column: Vec<u64> = (0..5_000u64).map(|i| i % 20).collect();
    let index = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(20, EncodingScheme::Interval),
    );
    let config = ServerConfig {
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let payloads: Vec<Vec<u8>> = vec![
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        vec![0u8; 64],
        vec![0xff; 64],
        // Correct magic+version, then garbage.
        [b"bX\x01".to_vec(), vec![0xab; 40]].concat(),
        // A valid ping frame with its CRC bit-flipped.
        {
            let mut f = encode_frame(&Frame::new(1, Message::Request(Request::Ping)));
            let last = f.len() - 1;
            f[last] ^= 0x01;
            f
        },
        // A header claiming a near-cap payload that never arrives.
        {
            let mut h = Vec::new();
            h.extend_from_slice(b"bX\x01\x02");
            h.extend_from_slice(&7u64.to_le_bytes());
            h.extend_from_slice(&((32u32 << 20) - 1).to_le_bytes());
            h
        },
    ];

    for (i, garbage) in payloads.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(garbage).expect("write garbage");
        // The server must answer with an error frame or close the
        // connection — read_to_end returning is the proof it did not
        // leave us hanging (the read timeout would fire otherwise).
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        // Whatever came back, if anything, must itself be well-formed.
        if !buf.is_empty() {
            let (reply, _) = decode_frame(&buf)
                .unwrap_or_else(|e| panic!("case {i}: server sent an undecodable reply: {e}"));
            assert!(
                matches!(reply.msg, Message::Response(Response::Error { .. })),
                "case {i}: want a typed error, got {:?}",
                reply.msg
            );
        }
        // The server is still healthy for the next legitimate client.
        let mut client = Client::connect(addr).expect("connect after garbage");
        client
            .ping()
            .unwrap_or_else(|e| panic!("case {i}: server died: {e}"));
    }
    server.shutdown();
}
