//! Router merge correctness: scatter-gather over row-range shards must
//! be bit-identical to a monolithic server over the concatenated
//! column, for random Zipf workloads and random shard boundaries —
//! including degenerate boundaries that leave some shards empty.
//!
//! The test is socket-free on purpose: each shard is a real
//! [`IndexHandler`] evaluated in-process (the same code path a live
//! shard server runs after frame decode), and the merge is the router's
//! own [`merge_replies`]. What is *not* under test here — transports,
//! retries, fault handling — has its own chaos suite.

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    merge_replies, IndexHandler, Request, RequestMeta, Response, RowsReply, ServeHandler,
    ServerConfig, ShardReply,
};
use bix_workload::{DatasetSpec, QuerySetSpec};
use proptest::prelude::*;

/// Evaluates a batch through the real server-side handler.
fn evaluate(
    column: &[u64],
    cardinality: u64,
    scheme: EncodingScheme,
    batch: &[String],
) -> Vec<RowsReply> {
    let index = BitmapIndex::build(column, &IndexConfig::one_component(cardinality, scheme));
    let handler = IndexHandler::new(index, &ServerConfig::default());
    let response = handler.handle(
        Request::Batch {
            domain: EvalDomain::Auto,
            deadline_ms: 0,
            predicates: batch.to_vec(),
        },
        &RequestMeta::default(),
    );
    match response {
        Response::BatchRows(replies) => replies,
        other => panic!("shard evaluation failed: {other:?}"),
    }
}

/// Splits `rows` at the (unsorted, possibly duplicated) cut fractions,
/// yielding shard boundaries that may well produce empty shards.
fn boundaries(rows: usize, cuts: &[f64]) -> Vec<usize> {
    let mut at: Vec<usize> = cuts.iter().map(|f| (f * rows as f64) as usize).collect();
    at.sort_unstable();
    at.dedup();
    at.retain(|&a| a <= rows);
    let mut bounds = vec![0];
    bounds.extend(at);
    bounds.push(rows);
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_evaluation_is_bit_identical_to_monolith(
        rows in 64usize..1200,
        zipf_z in prop::sample::select(vec![0.0, 1.0, 2.0]),
        data_seed in any::<u64>(),
        query_seed in any::<u64>(),
        cuts in prop::collection::vec(0.0f64..=1.0, 0..5),
        scheme in prop::sample::select(vec![
            EncodingScheme::Equality,
            EncodingScheme::Interval,
            EncodingScheme::EqualityIntervalStar,
        ]),
    ) {
        let cardinality = 24u64;
        let column = DatasetSpec { rows, cardinality, zipf_z, seed: data_seed }
            .generate()
            .values;
        let batch: Vec<String> = QuerySetSpec { n_int: 2, n_equ: 1 }
            .generate(cardinality, 6, query_seed)
            .iter()
            .map(|q| {
                let vals: Vec<String> = q.values().iter().map(u64::to_string).collect();
                format!("in:{}", vals.join(","))
            })
            .collect();

        let expected = evaluate(&column, cardinality, scheme, &batch);

        let bounds = boundaries(rows, &cuts);
        let shards: Vec<ShardReply> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                let replies = if lo == hi {
                    // An empty shard serves no rows; its batch reply is
                    // an empty row set per predicate.
                    vec![
                        RowsReply { scans: 0, decompressions: 0, rows: vec![] };
                        batch.len()
                    ]
                } else {
                    evaluate(&column[lo..hi], cardinality, scheme, &batch)
                };
                ShardReply { row_base: lo as u64, replies }
            })
            .collect();

        let merged = merge_replies(batch.len(), &shards);

        prop_assert_eq!(merged.len(), expected.len());
        for (got, want) in merged.iter().zip(&expected) {
            // Row identity is the contract; scan/decompression counts
            // legitimately differ between one big index and its slices.
            prop_assert_eq!(&got.rows, &want.rows);
        }
        // Global row order must also be sorted, as a monolith's is.
        for reply in &merged {
            prop_assert!(reply.rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
