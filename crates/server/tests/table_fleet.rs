//! Fleet-wide table queries, end to end over real sockets: a boolean
//! expression enters the router, fans out as `KIND_TABLE_QUERY` frames
//! to two catalog shards (each a row slice of the same star table), and
//! the merged reply must be bit-identical to a monolithic catalog
//! evaluating the same expression — both for row materialization and
//! for COUNT pushdown.

use std::sync::Arc;
use std::time::Duration;

use bix_core::{Catalog, CostModel, EncodingScheme, EvalDomain, IndexConfig, Planner};
use bix_server::{
    Client, ClientError, ErrorCode, RetryPolicy, Router, RouterConfig, Server, ServerConfig,
    SupervisorConfig,
};

const ROWS: usize = 6_000;

/// Deterministic star-schema columns: low-cardinality dimensions with
/// co-prime strides so conjunctions discriminate without emptying out.
fn columns() -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let region: Vec<u64> = (0..ROWS as u64).map(|i| (i * 13) % 4).collect();
    let store: Vec<u64> = (0..ROWS as u64).map(|i| (i * 7) % 20).collect();
    let discount: Vec<u64> = (0..ROWS as u64).map(|i| (i * 3 + i / 11) % 10).collect();
    (region, store, discount)
}

fn build_catalog(lo: usize, hi: usize) -> Catalog {
    let (region, store, discount) = columns();
    Catalog::build(
        hi - lo,
        &[
            (
                "region",
                &region[lo..hi],
                IndexConfig::one_component(4, EncodingScheme::Equality),
            ),
            (
                "store",
                &store[lo..hi],
                IndexConfig::one_component(20, EncodingScheme::Interval),
            ),
            (
                "discount",
                &discount[lo..hi],
                IndexConfig::one_component(10, EncodingScheme::EqualityIntervalStar),
            ),
        ],
    )
}

/// Monolith oracle: global row positions matching `text`.
fn oracle_rows(text: &str) -> Vec<u64> {
    let mut table = build_catalog(0, ROWS).into_table();
    let plan = Planner::plan_text(&table.schema(), text).expect("oracle plan");
    let result = table.execute_plan(&plan, &CostModel::default());
    result
        .bitmap
        .to_positions()
        .iter()
        .map(|&p| p as u64)
        .collect()
}

fn start_fleet(bounds: &[usize]) -> (Vec<Server>, Server) {
    let shards: Vec<Server> = bounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let config = ServerConfig {
                shard_id: i as u16,
                ..ServerConfig::default()
            };
            Server::start_catalog(build_catalog(w[0], w[1]), "127.0.0.1:0", config)
                .expect("bind catalog shard")
        })
        .collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
    let router = Router::new(
        addrs,
        RouterConfig {
            retry: RetryPolicy::standard(0x7ab1e),
            io_timeout: Duration::from_millis(2_000),
            health_interval: Duration::ZERO,
            supervisor: SupervisorConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(30),
            },
            ..RouterConfig::default()
        },
    );
    let front = Server::serve(Arc::new(router), "127.0.0.1:0", ServerConfig::default())
        .expect("bind router front");
    (shards, front)
}

#[test]
fn routed_table_query_matches_monolith() {
    let (shards, front) = start_fleet(&[0, 2_500, ROWS]);
    let mut client = Client::connect(front.addr()).expect("dial router");

    for text in [
        "region in {0, 1} and (discount >= 7 or not store = 12)",
        "store = 3 or store = 17",
        "not (region = 2 or region = 3) and discount <= 4",
    ] {
        let want = oracle_rows(text);
        assert!(
            !want.is_empty() && want.len() < ROWS,
            "query {text:?} must discriminate"
        );

        // Materialized rows: globally offset, merged in row order.
        let reply = client
            .table_query(text, EvalDomain::Auto, 4_000)
            .expect("routed table query");
        assert_eq!(reply.rows, want, "merged rows must match monolith: {text}");
        assert!(
            reply.rows.windows(2).all(|w| w[0] < w[1]),
            "merged rows must stay strictly sorted"
        );

        // COUNT pushdown: shard-local popcounts summed by the router.
        let count = client
            .table_count(text, EvalDomain::Auto, 4_000)
            .expect("routed table count");
        assert_eq!(count.count, want.len() as u64, "summed count: {text}");
        assert!(count.scans > 0, "count replies carry real scan work");
    }

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn routed_bad_expressions_come_back_typed() {
    let (shards, front) = start_fleet(&[0, 3_000, ROWS]);
    let mut client = Client::connect(front.addr()).expect("dial router");

    // A parse failure is shard-independent; the router must pass the
    // shard's BadQuery through rather than masking it as Unavailable.
    let err = client
        .table_query("region in {0,", EvalDomain::Auto, 4_000)
        .unwrap_err();
    assert!(err.is_code(ErrorCode::BadQuery), "{err:?}");

    // Unknown attributes are a planner error, also BadQuery.
    let err = client
        .table_count("no_such_attr = 1", EvalDomain::Auto, 4_000)
        .unwrap_err();
    assert!(err.is_code(ErrorCode::BadQuery), "{err:?}");

    // The connection survives the refusals.
    let want = oracle_rows("region = 0");
    let reply = client
        .table_query("region = 0", EvalDomain::Auto, 4_000)
        .expect("healthy query after refusals");
    assert_eq!(reply.rows, want);

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn count_is_all_or_nothing_when_a_shard_is_down() {
    let (shards, front) = start_fleet(&[0, 2_000, ROWS]);
    let mut client = Client::connect(front.addr()).expect("dial router");
    client.set_allow_degraded(true);

    // Healthy fleet first, so the routing table is learned.
    let full = client
        .table_count("region = 1", EvalDomain::Auto, 4_000)
        .expect("healthy count");

    // Kill shard 1. A degraded row query may shrink; a COUNT must not
    // silently under-report — it fails typed instead.
    let mut shards = shards;
    shards.remove(1).shutdown();

    let err = client
        .table_count("region = 1", EvalDomain::Auto, 4_000)
        .unwrap_err();
    match err {
        ClientError::Server { code, .. } => {
            assert!(
                code == ErrorCode::Unavailable || code == ErrorCode::DeadlineExceeded,
                "partial counts must fail typed, got {code:?}"
            );
        }
        other => panic!("want a typed server error, got {other:?}"),
    }
    assert!(full.count > 0);

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
