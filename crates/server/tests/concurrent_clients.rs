//! Correctness under concurrency: N clients hammering one server over
//! real sockets must each observe exactly the rows and scan counts the
//! sequential in-process ComponentWise evaluator produces.

use std::net::TcpStream;
use std::sync::Arc;

use bix_core::{
    BitmapIndex, BufferPool, CodecKind, CostModel, EncodingScheme, EvalDomain, EvalStrategy,
    IndexConfig, Query,
};
use bix_server::{
    read_frame, write_frame, Client, Frame, Message, Request, Response, Server, ServerConfig,
    StatsFormat,
};
use bix_workload::{DatasetSpec, QuerySetSpec};

const ROWS: usize = 30_000;
const C: u64 = 50;
const CLIENTS: usize = 8;

fn build_index() -> BitmapIndex {
    let data = DatasetSpec {
        rows: ROWS,
        cardinality: C,
        zipf_z: 1.0,
        seed: 99,
    }
    .generate();
    let config = IndexConfig::one_component(C, EncodingScheme::Interval).with_codec(CodecKind::Bbc);
    BitmapIndex::build(&data.values, &config)
}

/// The shared workload as predicate text — what actually crosses the
/// wire — mixing generated membership queries with every other
/// predicate form the grammar accepts.
fn predicates() -> Vec<String> {
    let mut preds: Vec<String> = QuerySetSpec { n_int: 4, n_equ: 2 }
        .generate(C, 24, 7)
        .into_iter()
        .map(|g| {
            let values: Vec<String> = g.values().iter().map(u64::to_string).collect();
            format!("in:{}", values.join(","))
        })
        .collect();
    preds.extend(
        [
            "=7",
            "3..20",
            "<=25",
            ">=40",
            "!10..40",
            "in:0,4,8,12,16,49",
        ]
        .map(String::from),
    );
    preds
}

/// Sequential ground truth: rows and scans per predicate.
fn oracle(index: &mut BitmapIndex, preds: &[String]) -> Vec<(Vec<u64>, u64)> {
    let mut pool = BufferPool::new(4096);
    preds
        .iter()
        .map(|p| {
            let q = Query::parse(p, C).expect("oracle predicate parses");
            let r = index.evaluate_detailed(
                &q,
                &mut pool,
                EvalStrategy::ComponentWise,
                &CostModel::default(),
            );
            let rows: Vec<u64> = r.bitmap.to_positions().iter().map(|&p| p as u64).collect();
            (rows, r.scans as u64)
        })
        .collect()
}

#[test]
fn concurrent_clients_match_sequential_oracle() {
    let mut index = build_index();
    let preds = Arc::new(predicates());
    let expected = Arc::new(oracle(&mut index, &preds));

    let config = ServerConfig {
        workers: CLIENTS,
        queue_depth: CLIENTS * 2,
        request_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|who| {
            let preds = Arc::clone(&preds);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Whole workload as one Batch frame…
                let batch = client
                    .batch(&preds, EvalDomain::Auto, 0)
                    .expect("batch reply");
                assert_eq!(batch.len(), preds.len(), "client {who}");
                let mut total_scans = 0u64;
                for (i, reply) in batch.iter().enumerate() {
                    assert_eq!(reply.rows, expected[i].0, "client {who} batch q{i} rows");
                    assert_eq!(reply.scans, expected[i].1, "client {who} batch q{i} scans");
                    total_scans += reply.scans;
                }
                // …and a sample of single-query frames across domains.
                for (i, p) in preds.iter().enumerate().step_by(5) {
                    for domain in [EvalDomain::Auto, EvalDomain::Compressed, EvalDomain::Raw] {
                        let reply = client.query(p, domain, 0).expect("query reply");
                        assert_eq!(reply.rows, expected[i].0, "client {who} q{i} {domain:?}");
                        assert_eq!(reply.scans, expected[i].1, "client {who} q{i} {domain:?}");
                    }
                }
                total_scans
            })
        })
        .collect();

    let oracle_total: u64 = expected.iter().map(|(_, s)| s).sum();
    for h in handles {
        let client_total = h.join().expect("client thread");
        assert_eq!(
            client_total, oracle_total,
            "total scans drift under concurrency"
        );
    }

    // The server-side metrics saw every query exactly once per client.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats(StatsFormat::Prometheus).expect("stats");
    assert!(stats.contains("bix_server_queries_total"));
    assert!(stats.contains("bix_eval_decompressions_total"));
    assert!(stats.contains("bix_eval_nodes_raw_total"));
    assert!(stats.contains("bix_eval_nodes_compressed_total"));
    server.shutdown();
}

#[test]
fn interleaved_requests_on_one_connection_stay_ordered() {
    let mut index = build_index();
    let preds = predicates();
    let expected = oracle(&mut index, &preds);
    let server = Server::start(index, "127.0.0.1:0", ServerConfig::default()).expect("bind");

    // Drive the raw protocol: distinct request ids must come back on
    // the matching replies, in order, on a single connection.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    for (i, p) in preds.iter().enumerate() {
        let id = 1000 + i as u64;
        let frame = Frame::new(
            id,
            Message::Request(Request::Query {
                domain: EvalDomain::Auto,
                deadline_ms: 0,
                predicate: p.clone(),
            }),
        );
        write_frame(&mut stream, &frame).expect("write");
        let (reply, _) = read_frame(&mut stream).expect("read");
        assert_eq!(reply.request_id, id);
        match reply.msg {
            Message::Response(Response::Rows(rows)) => {
                assert_eq!(rows.rows, expected[i].0, "q{i}");
                assert_eq!(rows.scans, expected[i].1, "q{i}");
            }
            other => panic!("q{i}: unexpected reply {other:?}"),
        }
    }
    server.shutdown();
}
