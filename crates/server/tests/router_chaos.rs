//! Chaos tests for the scatter-gather router: seeded network faults,
//! shard death and restart mid-workload, and hot-reload epoch fencing.
//!
//! The invariants under test, in order of importance:
//!
//! 1. **No hangs, no panics.** Every fan-out terminates with a reply —
//!    full, degraded, or a typed error — inside its io/deadline budget.
//! 2. **No silent truncation.** A reply that claims to be full is
//!    bit-identical to the monolith oracle; partial rows only ever
//!    arrive as `Response::Degraded` naming the missing shards.
//! 3. **Recovery.** Once faults clear and shards return, the router
//!    converges back to full bit-identical service on its own.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    ErrorCode, FaultyStream, IndexHandler, NetFaultPlan, Request, RequestMeta, Response,
    RetryPolicy, Router, RouterConfig, RowsReply, ServeHandler, Server, ServerConfig,
    SupervisorConfig,
};
use bix_workload::{DatasetSpec, QuerySetSpec};

const CARDINALITY: u64 = 24;
const ROWS: usize = 6_000;

fn corpus() -> Vec<u64> {
    DatasetSpec {
        rows: ROWS,
        cardinality: CARDINALITY,
        zipf_z: 1.0,
        seed: 0xc0de,
    }
    .generate()
    .values
}

fn batch() -> Vec<String> {
    QuerySetSpec { n_int: 2, n_equ: 1 }
        .generate(CARDINALITY, 8, 0xbeef)
        .iter()
        .map(|q| {
            let vals: Vec<String> = q.values().iter().map(u64::to_string).collect();
            format!("in:{}", vals.join(","))
        })
        .collect()
}

fn build_index(column: &[u64]) -> BitmapIndex {
    BitmapIndex::build(
        column,
        &IndexConfig::one_component(CARDINALITY, EncodingScheme::Interval),
    )
}

/// The oracle: the whole column evaluated by one in-process handler.
fn monolith_oracle(column: &[u64], predicates: &[String]) -> Vec<RowsReply> {
    let handler = IndexHandler::new(build_index(column), &ServerConfig::default());
    match handler.handle(
        Request::Batch {
            domain: EvalDomain::Auto,
            deadline_ms: 0,
            predicates: predicates.to_vec(),
        },
        &RequestMeta::default(),
    ) {
        Response::BatchRows(replies) => replies,
        other => panic!("oracle evaluation failed: {other:?}"),
    }
}

/// Starts one real TCP server per contiguous row slice.
fn start_shards(column: &[u64], bounds: &[usize]) -> Vec<Server> {
    bounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let config = ServerConfig {
                shard_id: i as u16,
                ..ServerConfig::default()
            };
            Server::start(build_index(&column[w[0]..w[1]]), "127.0.0.1:0", config)
                .expect("bind shard")
        })
        .collect()
}

fn router_config() -> RouterConfig {
    RouterConfig {
        retry: RetryPolicy::standard(0x5eed),
        io_timeout: Duration::from_millis(500),
        // Tests drive the supervisor by hand.
        health_interval: Duration::ZERO,
        supervisor: SupervisorConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(30),
        },
        ..RouterConfig::default()
    }
}

fn run_batch(router: &Router, predicates: &[String], allow_degraded: bool) -> Response {
    router.handle(
        Request::Batch {
            domain: EvalDomain::Auto,
            deadline_ms: 4_000,
            predicates: predicates.to_vec(),
        },
        &RequestMeta {
            allow_degraded,
            ..RequestMeta::default()
        },
    )
}

fn assert_bit_identical(got: &[RowsReply], want: &[RowsReply]) {
    assert_eq!(got.len(), want.len(), "reply count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.rows, w.rows, "predicate {i} rows diverge");
    }
}

/// Every shard link's first few connections run through a seeded
/// [`FaultyStream`]; later dials are clean so bounded retry can land.
fn faulty_dialer(seed: u64, faulty_dials_per_shard: u64) -> bix_server::router::ShardDialer {
    let dials: Arc<Vec<AtomicU64>> = Arc::new((0..16).map(|_| AtomicU64::new(0)).collect());
    Arc::new(move |shard, addr: &str| {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        let nth = dials[shard].fetch_add(1, Ordering::Relaxed);
        if nth < faulty_dials_per_shard {
            let plan = NetFaultPlan::from_seed(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add((shard as u64) << 8 | nth),
            );
            Ok(Box::new(FaultyStream::new(stream, plan)))
        } else {
            Ok(Box::new(stream))
        }
    })
}

#[test]
fn seeded_fault_sweep_never_hangs_or_lies() {
    let column = corpus();
    let predicates = batch();
    let oracle = monolith_oracle(&column, &predicates);
    let bounds = [0, 1_500, 3_500, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    let mut full = 0u32;
    let mut typed = 0u32;
    for seed in 0..16u64 {
        let router = Router::with_dialer(addrs.clone(), router_config(), faulty_dialer(seed, 2));
        match run_batch(&router, &predicates, false) {
            Response::BatchRows(replies) => {
                assert_bit_identical(&replies, &oracle);
                full += 1;
            }
            Response::Error { code, .. } => {
                // Faults may legitimately exhaust a leg's retry budget,
                // but the failure must be typed — never partial rows
                // masquerading as a full reply.
                assert!(
                    matches!(code, ErrorCode::Unavailable | ErrorCode::DeadlineExceeded),
                    "seed {seed}: unexpected error class {code:?}"
                );
                typed += 1;
            }
            other => panic!("seed {seed}: non-typed outcome {other:?}"),
        }
        // Once the faulty dials are spent the same router must heal.
        match run_batch(&router, &predicates, false) {
            Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
            Response::Error { .. } => {
                // Breaker may still be cooling down; one sweep heals it.
                std::thread::sleep(Duration::from_millis(40));
                router.health_sweep();
                match run_batch(&router, &predicates, false) {
                    Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
                    other => panic!("seed {seed}: did not heal: {other:?}"),
                }
            }
            other => panic!("seed {seed}: did not heal: {other:?}"),
        }
    }
    assert!(
        full + typed == 16,
        "every seed must resolve (got {full} full + {typed} typed)"
    );
    assert!(full > 0, "retry should recover at least one seed");
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn killed_shard_degrades_typed_and_recovers_on_restart() {
    let column = corpus();
    let predicates = batch();
    let oracle = monolith_oracle(&column, &predicates);
    let bounds = [0, 2_000, 4_000, ROWS];
    let mut shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    let router = Router::new(addrs.clone(), router_config());

    // Healthy baseline: full and bit-identical.
    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("baseline failed: {other:?}"),
    }

    // Kill the middle shard.
    let dead = shards.remove(1);
    let dead_addr = addrs[1].clone();
    dead.shutdown();

    // Without the degraded opt-in: all-or-typed-error.
    match run_batch(&router, &predicates, false) {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Unavailable, "{message}");
            assert!(message.contains('1'), "must name the dead shard: {message}");
        }
        other => panic!("want typed Unavailable, got {other:?}"),
    }

    // With the opt-in: partial rows, missing shard named, and the rows
    // that did arrive are exactly the oracle minus the dead range.
    let dead_range = bounds[1] as u64..bounds[2] as u64;
    match run_batch(&router, &predicates, true) {
        Response::Degraded {
            missing_shards,
            replies,
        } => {
            assert_eq!(missing_shards, vec![1]);
            let expected: Vec<Vec<u64>> = oracle
                .iter()
                .map(|r| {
                    r.rows
                        .iter()
                        .copied()
                        .filter(|row| !dead_range.contains(row))
                        .collect()
                })
                .collect();
            for (got, want) in replies.iter().zip(&expected) {
                assert_eq!(
                    &got.rows, want,
                    "degraded rows must be oracle minus shard 1"
                );
            }
        }
        other => panic!("want Degraded, got {other:?}"),
    }

    // Restart the shard on its old address (retry briefly: the OS may
    // hold the port for a moment) and let the breaker half-open.
    let mut revived = None;
    for _ in 0..50 {
        let config = ServerConfig {
            shard_id: 1,
            ..ServerConfig::default()
        };
        match Server::start(
            build_index(&column[bounds[1]..bounds[2]]),
            dead_addr.as_str(),
            config,
        ) {
            Ok(s) => {
                revived = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let revived = revived.expect("rebind shard address");
    std::thread::sleep(Duration::from_millis(40)); // past breaker cooldown
    router.health_sweep();

    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("restarted fleet must serve fully: {other:?}"),
    }

    revived.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn mid_stream_connection_death_is_retried_not_merged() {
    let column = corpus();
    let predicates = batch();
    let oracle = monolith_oracle(&column, &predicates);
    let bounds = [0, 3_000, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    // Shard 1's first post-startup connection dies mid-reply (the
    // truncation lands inside the batch response). The router must
    // treat the half-delivered reply as line noise and retry on a
    // fresh connection, not merge what it got.
    let dials = Arc::new(AtomicU64::new(0));
    let dialer: bix_server::router::ShardDialer = Arc::new(move |shard, addr: &str| {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        if shard == 1 {
            let nth = dials.fetch_add(1, Ordering::Relaxed);
            // Dial 0 is shape learning; dial 1 carries the batch.
            if nth == 1 {
                let plan = NetFaultPlan::new().fault(
                    bix_server::Direction::Recv,
                    0,
                    bix_server::NetFault::Truncate,
                );
                return Ok(Box::new(FaultyStream::new(stream, plan))
                    as Box<dyn bix_server::router::Transport>);
            }
        }
        Ok(Box::new(stream))
    });

    let router = Router::with_dialer(addrs, router_config(), dialer);
    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("mid-stream death must be survived by retry: {other:?}"),
    }

    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn hot_reload_mid_workload_is_fenced_and_survived() {
    let column = corpus();
    let predicates = batch();
    let oracle = monolith_oracle(&column, &predicates);
    let bounds = [0, 2_500, ROWS];
    let shards = start_shards(&column, &bounds);
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    // Persist shard 0's slice so the live server can hot-reload it.
    let path = std::env::temp_dir().join(format!(
        "bix-chaos-reload-{}-{}.bix",
        std::process::id(),
        shards[0].addr().port(),
    ));
    build_index(&column[bounds[0]..bounds[1]])
        .save(&path)
        .expect("save shard slice");

    let router = Router::new(addrs.clone(), router_config());
    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("baseline failed: {other:?}"),
    }

    // Reload shard 0 behind the router's back: its epoch bumps 1 → 2
    // while the router's routing table still says 1.
    let mut direct = bix_server::Client::connect(shards[0].addr()).expect("dial shard");
    direct
        .reload(path.to_str().expect("utf8 path"))
        .expect("reload");
    assert_eq!(direct.last_epoch(), 2, "reload must bump the epoch");

    // The next fan-out sees a stale epoch, refreshes, re-runs, and
    // still answers bit-identically — the fence shows up in metrics.
    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("post-reload fan-out failed: {other:?}"),
    }
    let stats = match router.handle(
        Request::Stats(bix_server::StatsFormat::Prometheus),
        &RequestMeta::default(),
    ) {
        Response::Stats { text } => text,
        other => panic!("stats failed: {other:?}"),
    };
    let fenced = stats
        .lines()
        .find(|l| l.starts_with("bix_route_stale_epoch_retries_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("stale-epoch counter present");
    assert!(
        fenced >= 1.0,
        "the stale reply must have been fenced, not merged"
    );

    // The router's externally visible epoch moved with the shard's.
    assert_eq!(router.epoch(), 3, "epoch sum = shard0(2) + shard1(1)");

    let _ = std::fs::remove_file(&path);
    for shard in shards {
        shard.shutdown();
    }
}

/// Regression: a health probe that reaches a shard before the router
/// has ever learned its shape must not publish the shard's epoch while
/// the row base is still the placeholder 0 — that disarms the
/// fan-out's lazy `epoch == 0` learning and mis-offsets every routed
/// row id behind that shard. Seen live when the router process came up
/// before its shards finished binding.
#[test]
fn health_probe_before_startup_learning_keeps_row_bases_correct() {
    let column = corpus();
    let predicates = batch();
    let oracle = monolith_oracle(&column, &predicates);
    let bounds = [0, 2_000, 4_000, ROWS];

    // Reserve addresses, then create the router while nothing is
    // listening yet: its startup shape-learning pass must fail.
    let addrs: Vec<String> = (0..bounds.len() - 1)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .to_string()
        })
        .collect();
    let router = Router::new(addrs.clone(), router_config());
    for i in 0..addrs.len() {
        assert_eq!(router.supervisor().epoch(i), 0, "nothing learned yet");
    }

    // The shards come up on those addresses afterwards (retry briefly:
    // the OS may hold a reserved port for a moment), and the health
    // prober reaches them before any fan-out does.
    let shards: Vec<Server> = bounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let mut started = None;
            for _ in 0..50 {
                let config = ServerConfig {
                    shard_id: i as u16,
                    ..ServerConfig::default()
                };
                match Server::start(build_index(&column[w[0]..w[1]]), addrs[i].as_str(), config) {
                    Ok(s) => {
                        started = Some(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
            started.expect("rebind shard on reserved address")
        })
        .collect();
    router.health_sweep();

    // The sweep must leave each shard either unlearned (epoch 0, lazy
    // learning still armed) or fully learned — never a published epoch
    // over a placeholder row base.
    for i in 0..addrs.len() {
        let (epoch, rows) = (router.supervisor().epoch(i), router.supervisor().rows(i));
        assert!(
            epoch == 0 || rows > 0,
            "shard {i}: epoch {epoch} published with placeholder row base"
        );
    }

    match run_batch(&router, &predicates, false) {
        Response::BatchRows(replies) => assert_bit_identical(&replies, &oracle),
        other => panic!("post-race fleet must serve fully: {other:?}"),
    }

    // Ingest forwards to the tail shard; the acknowledged global total
    // must count the earlier shards' rows too.
    match router.handle(
        Request::Ingest { values: vec![3, 5] },
        &RequestMeta::default(),
    ) {
        Response::Ingested {
            appended,
            delta_rows,
            total_rows,
        } => {
            assert_eq!(appended, 2);
            assert_eq!(delta_rows, 2);
            assert_eq!(total_rows, ROWS as u64 + 2);
        }
        other => panic!("ingest through the router failed: {other:?}"),
    }

    for shard in shards {
        shard.shutdown();
    }
}
