//! Client-side bounded retry: transient wire failures are retried on a
//! fresh connection (mirroring the disk layer's bounded read-retry
//! loop), permanent failures are not, and every retry is visible in
//! [`ClientStats`].

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bix_core::{BitmapIndex, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{
    Client, ClientError, Direction, FaultyStream, NetFault, NetFaultPlan, RetryPolicy, Server,
    ServerConfig,
};

fn start_server() -> Server {
    let column: Vec<u64> = (0..4_000u64).map(|i| i % 20).collect();
    let index = BitmapIndex::build(
        &column,
        &IndexConfig::one_component(20, EncodingScheme::Interval),
    );
    Server::start(index, "127.0.0.1:0", ServerConfig::default()).expect("bind")
}

/// A dialer whose first `faulty` connections run through a seeded
/// fault plan; later connections are clean.
fn dialer(
    addr: std::net::SocketAddr,
    faulty: u64,
    plan: NetFaultPlan,
) -> Box<dyn FnMut() -> std::io::Result<FaultyStream<TcpStream>> + Send> {
    let dials = Arc::new(AtomicU64::new(0));
    Box::new(move || {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let nth = dials.fetch_add(1, Ordering::Relaxed);
        let plan = if nth < faulty {
            plan.clone()
        } else {
            NetFaultPlan::new()
        };
        Ok(FaultyStream::new(stream, plan))
    })
}

#[test]
fn garbled_reply_is_retried_on_a_fresh_connection() {
    let server = start_server();
    // The first connection's first reply arrives with a flipped bit —
    // the CRC catches it, the client redials, the retry sails through.
    let plan = NetFaultPlan::new().fault(Direction::Recv, 0, NetFault::Garble);
    let mut client =
        Client::from_dialer(dialer(server.addr(), 1, plan)).with_retry(RetryPolicy::standard(7));
    let reply = client
        .query("=3", EvalDomain::Auto, 0)
        .expect("retried query");
    assert_eq!(reply.rows.len(), 200, "every 20th row matches =3");
    let stats = client.client_stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.retries, 1, "exactly one transient retry");
    assert!(stats.reconnects >= 1, "the retry redialled");
    server.shutdown();
}

#[test]
fn truncated_reply_is_retried_but_budget_is_bounded() {
    let server = start_server();
    let plan = NetFaultPlan::new().fault(Direction::Recv, 0, NetFault::Truncate);

    // Faults outnumber the retry budget: the client must give up with
    // the transient error, not spin forever.
    let mut client =
        Client::from_dialer(dialer(server.addr(), 10, plan.clone())).with_retry(RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::standard(7)
        });
    let err = client
        .query("=3", EvalDomain::Auto, 0)
        .expect_err("budget exhausted");
    assert!(err.is_transient(), "failure class survives: {err}");
    assert_eq!(client.client_stats().retries, 2, "spent the whole budget");

    // Same fault, budget of three: the fourth connection is clean.
    let mut client =
        Client::from_dialer(dialer(server.addr(), 3, plan)).with_retry(RetryPolicy::standard(7));
    client.query("=3", EvalDomain::Auto, 0).expect("recovered");
    assert_eq!(client.client_stats().retries, 3);
    server.shutdown();
}

#[test]
fn permanent_errors_are_not_retried() {
    let server = start_server();
    let mut client = Client::from_dialer(dialer(server.addr(), 0, NetFaultPlan::new()))
        .with_retry(RetryPolicy::standard(7));
    let err = client
        .query("not a predicate", EvalDomain::Auto, 0)
        .expect_err("bad query");
    assert!(matches!(&err, ClientError::Server { .. }), "{err}");
    assert!(!err.is_transient());
    assert_eq!(
        client.client_stats().retries,
        0,
        "semantic errors fail fast"
    );
    server.shutdown();
}
