//! End-to-end ingest lifecycle over real sockets: batches absorbed into
//! the delta are immediately queryable, out-of-domain batches are
//! rejected with a typed error, a full memtable answers `Overloaded`,
//! and — the critical invariant — readers racing the background merge
//! never observe a torn (main, delta) pair.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bix_core::{BitmapIndex, CodecKind, EncodingScheme, EvalDomain, IndexConfig};
use bix_server::{Client, ClientError, ErrorCode, Server, ServerConfig, StatsFormat};
use bix_workload::DatasetSpec;

const C: u64 = 40;
const BASE_ROWS: usize = 20_000;

fn build_index(seed: u64) -> BitmapIndex {
    let data = DatasetSpec {
        rows: BASE_ROWS,
        cardinality: C,
        zipf_z: 1.0,
        seed,
    }
    .generate();
    let config =
        IndexConfig::one_component(C, EncodingScheme::EqualityInterval).with_codec(CodecKind::Ewah);
    BitmapIndex::build(&data.values, &config)
}

#[test]
fn ingested_rows_are_queryable_and_match_a_rebuild() {
    let index = build_index(11);
    let config = index.config().clone();
    let server = Server::start(index, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let tail = DatasetSpec {
        rows: 5_000,
        cardinality: C,
        zipf_z: 0.8,
        seed: 77,
    }
    .generate();
    let mut acked = 0u64;
    for batch in tail.values.chunks(512) {
        let ack = client.ingest(batch).expect("ingest batch");
        acked += ack.appended;
        assert_eq!(ack.total_rows, BASE_ROWS as u64 + acked);
    }
    assert_eq!(acked, tail.values.len() as u64);

    // Ground truth: an index rebuilt from the concatenated column.
    let base = DatasetSpec {
        rows: BASE_ROWS,
        cardinality: C,
        zipf_z: 1.0,
        seed: 11,
    }
    .generate();
    let mut all = base.values.clone();
    all.extend_from_slice(&tail.values);
    let mut rebuilt = BitmapIndex::build(&all, &config);

    for pred in ["=7", "3..20", "<=25", ">=30", "!10..30", "in:0,4,8,39"] {
        let q = bix_core::Query::parse(pred, C).expect("parse");
        let want: Vec<u64> = rebuilt
            .evaluate(&q)
            .to_positions()
            .iter()
            .map(|&p| p as u64)
            .collect();
        let got = client.query(pred, EvalDomain::Auto, 0).expect("query");
        assert_eq!(got.rows, want, "{pred} differs from rebuild");
    }
    server.shutdown();
}

#[test]
fn bad_batches_get_typed_refusals() {
    let index = build_index(23);
    let config = ServerConfig {
        // Tiny memtable, huge merge threshold: the delta fills up and
        // the merge never rescues it, so the second error path shows.
        delta_budget_bytes: 4 << 10,
        merge_threshold_bytes: 1 << 30,
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Out-of-domain value: rejected atomically, nothing lands.
    let err = client.ingest(&[1, 2, C + 5]).expect_err("out of domain");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("want typed BadQuery, got {other:?}"),
    }
    let ack = client.ingest(&[1, 2, 3]).expect("clean batch");
    assert_eq!(ack.delta_rows, 3, "rejected batch left no residue");

    // Fill the 4 KiB memtable: the shard sheds load with Overloaded
    // rather than evicting or crashing.
    let mut overloaded = false;
    for _ in 0..200 {
        match client.ingest(&[5; 512]) {
            Ok(_) => {}
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Overloaded);
                overloaded = true;
                break;
            }
            Err(other) => panic!("want typed Overloaded, got {other:?}"),
        }
    }
    assert!(overloaded, "memtable budget never pushed back");
    server.shutdown();
}

/// Readers race a writer and the background merge. Every reader sends
/// `[=7, !=7]` as one batch frame: both predicates are evaluated
/// against one (main, delta) snapshot, so their row sets must always
/// partition that snapshot exactly — disjoint, complementary, and with
/// a total that never moves backwards on a connection. A torn pair
/// (main swapped mid-evaluation, or a delta pruned against the old
/// main) breaks the partition immediately.
#[test]
fn concurrent_readers_during_merge_see_no_torn_reads() {
    let index = build_index(42);
    let config = ServerConfig {
        // Merge aggressively — every few KiB of buffered tail — so
        // readers race many live swaps without the merge thread
        // monopolizing the CPU re-cloning the index per batch.
        merge_threshold_bytes: 16 << 10,
        // One worker per concurrent connection (4 readers + writer +
        // the final checker), or the writer starves in admission.
        workers: 8,
        queue_depth: 16,
        ..ServerConfig::default()
    };
    let server = Server::start(index, "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let ingested = Arc::new(AtomicU64::new(0));

    let writer = {
        let stop = Arc::clone(&stop);
        let ingested = Arc::clone(&ingested);
        std::thread::spawn(move || {
            let tail = DatasetSpec {
                rows: 40_000,
                cardinality: C,
                zipf_z: 0.5,
                seed: 1234,
            }
            .generate();
            let mut client = Client::connect_with_timeout(addr, std::time::Duration::from_secs(60))
                .expect("writer connect");
            for batch in tail.values.chunks(256) {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match client.ingest(batch) {
                    Ok(_) => {
                        ingested.fetch_add(batch.len() as u64, Ordering::Release);
                    }
                    // A refused batch never landed, so waiting out the
                    // merge and re-sending cannot double-apply it.
                    Err(ClientError::Server {
                        code: ErrorCode::Overloaded,
                        ..
                    }) => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(other) => panic!("writer hit {other:?}"),
                }
            }
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|who| {
            let stop = Arc::clone(&stop);
            let ingested = Arc::clone(&ingested);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with_timeout(addr, std::time::Duration::from_secs(60))
                        .expect("reader connect");
                let preds = vec!["=7".to_string(), "!=7".to_string()];
                let mut last_total = BASE_ROWS as u64;
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let upper = BASE_ROWS as u64 + ingested.load(Ordering::Acquire);
                    let replies = client
                        .batch(&preds, EvalDomain::Auto, 0)
                        .expect("reader batch");
                    let eq = &replies[0].rows;
                    let ne = &replies[1].rows;
                    let total = (eq.len() + ne.len()) as u64;
                    // Partition: disjoint and complementary over one
                    // consistent snapshot of main ∪ delta.
                    for (a, b) in eq.iter().zip(eq.iter().skip(1)) {
                        assert!(a < b, "reader {who}: =7 rows unsorted");
                    }
                    let mut merged: Vec<u64> = eq.iter().chain(ne.iter()).copied().collect();
                    merged.sort_unstable();
                    merged.dedup();
                    assert_eq!(
                        merged.len() as u64,
                        total,
                        "reader {who}: =7 and !=7 overlap — torn snapshot"
                    );
                    assert_eq!(
                        merged.last().map(|&r| r + 1),
                        Some(total),
                        "reader {who}: row space has holes — torn snapshot"
                    );
                    assert!(
                        total >= last_total,
                        "reader {who}: total rows moved backwards ({last_total} -> {total})"
                    );
                    // `ingested` was read before the query, so the
                    // snapshot can only be ahead of it by rows that
                    // landed in between — never behind the floor.
                    assert!(
                        total >= BASE_ROWS as u64 && total <= BASE_ROWS as u64 + 40_000,
                        "reader {who}: total {total} outside plausible range \
                         (acked floor was {upper})"
                    );
                    last_total = total;
                    snapshots += 1;
                }
                snapshots
            })
        })
        .collect();

    writer.join().expect("writer thread");
    stop.store(true, Ordering::Release);
    let mut snapshots = 0u64;
    for r in readers {
        snapshots += r.join().expect("reader thread");
    }
    assert!(snapshots > 0, "readers never observed a snapshot");

    // After the dust settles the server must account for every row.
    let mut client = Client::connect(addr).expect("final connect");
    let final_rows = BASE_ROWS as u64 + ingested.load(Ordering::Acquire);
    let replies = client
        .batch(&["=7".into(), "!=7".into()], EvalDomain::Auto, 0)
        .expect("final batch");
    assert_eq!(
        (replies[0].rows.len() + replies[1].rows.len()) as u64,
        final_rows,
        "rows lost or duplicated across ingest + merges"
    );
    let stats = client.stats(StatsFormat::Prometheus).expect("stats");
    assert!(stats.contains("bix_ingest_rows_total"));
    assert!(stats.contains("bix_delta_rows"));
    assert!(stats.contains("bix_delta_merges_total"));
    server.shutdown();
}
