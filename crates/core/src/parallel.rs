//! Parallel batch query execution.
//!
//! The paper's evaluator answers one query at a time against a disk whose
//! head position is part of the simulation state. A warehouse workload
//! arrives as *batches* of selection queries, which parallelize on two
//! axes:
//!
//! * **Across queries** — each query's rewrite and evaluation is
//!   independent; a fixed worker pool drains the batch.
//! * **Within a query** — the §6.3 streaming evaluator's expression DAG
//!   has independent subtrees (different components' bitmaps, disjoint
//!   constituents); a dependency-counting scheduler folds ready nodes
//!   concurrently.
//!
//! Reads go through [`BitmapStore::read_shared`] (`&self`) and the
//! lock-striped [`ShardedBufferPool`]; every thread carries its own
//! [`ReadContext`] (disk head + I/O counters, one simulated disk arm per
//! thread), merged into the batch totals — and charged back to the store's
//! global counters — when the batch completes.
//!
//! Hash-consing guarantees each distinct bitmap appears as exactly one DAG
//! leaf and is therefore scanned exactly once per query, so batch-level
//! scan counts are identical to running [`EvalStrategy::ComponentWise`]
//! sequentially (seek counts differ: heads are per-thread).

use crate::eval::{reads_compressed, Dag, NodeOp, NodeVal};
use crate::multi::PlanEvalResult;
use crate::plan::{Plan, PlanLiteral};
use crate::{BitmapIndex, DeltaIndex, EvalDomain, EvalResult, Expr, IndexedTable, Query};
use bix_bitvec::Bitvec;
use bix_compress::{BitOp, CodecKind};
use bix_storage::{BitmapHandle, CostModel, IoStats, ReadContext, ShardedBufferPool};
use bix_telemetry::{SpanId, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

// Referenced by the module docs above.
#[allow(unused_imports)]
use crate::EvalStrategy;
#[allow(unused_imports)]
use bix_storage::BitmapStore;

/// Returned by [`ParallelExecutor::execute_deadline`] when the deadline
/// passed before every query in the batch finished. Partial results are
/// discarded: a served query is either complete and bit-exact or not
/// answered at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline exceeded before the batch completed")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Shared cancellation state for one deadline-bounded batch: the wall
/// deadline plus a sticky flag so that, once any worker observes expiry,
/// every other worker short-circuits without re-reading the clock.
struct Cancel {
    deadline: Instant,
    expired: std::sync::atomic::AtomicBool,
}

impl Cancel {
    fn new(deadline: Instant) -> Cancel {
        Cancel {
            deadline,
            expired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// True once the deadline has passed. Checked between DAG nodes and
    /// between queries — the enforcement points of a request deadline —
    /// so a single node's work is the cancellation latency bound.
    fn expired(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= self.deadline {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Executes batches of selection queries concurrently against one index.
///
/// The single-threaded API ([`BitmapIndex::evaluate_detailed`]) is
/// untouched; this type is an additive facade over the same rewrite and
/// the same §6.3 evaluation semantics.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
    inner_threads: Option<usize>,
    domain: EvalDomain,
}

impl ParallelExecutor {
    /// An executor with a total budget of `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        ParallelExecutor {
            threads,
            inner_threads: None,
            domain: EvalDomain::default(),
        }
    }

    /// Sets the [`EvalDomain`] every query's DAG fold runs in (default
    /// [`EvalDomain::Auto`]).
    pub fn with_domain(mut self, domain: EvalDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Overrides how many threads fold each individual query's DAG.
    ///
    /// By default the budget is spent across queries first (one thread per
    /// query while the batch is wide), and only batches narrower than the
    /// thread count get within-query workers. Forcing `n > 1` exercises
    /// within-query folding regardless of batch width.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_inner_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one inner thread");
        self.inner_threads = Some(n);
        self
    }

    /// The total thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates every query in `queries`, fanning out over the executor's
    /// threads. Results arrive in input order. I/O is charged per-thread
    /// and merged; the merged counters are also added to the index store's
    /// global statistics so sequential-style accounting keeps working.
    pub fn execute(
        &self,
        index: &BitmapIndex,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
    ) -> BatchResult {
        self.execute_traced(index, queries, pool, cost, &Tracer::disabled(), None)
    }

    /// [`ParallelExecutor::execute`] with span tracing: records a `batch`
    /// span under `parent` with one `query` child per batch entry (opened
    /// on whichever worker thread picks the query up) and, inside each
    /// query, the rewrite / build / fold phases with per-DAG-node spans
    /// carrying queue-wait and run time. A disabled tracer makes this
    /// identical to [`ParallelExecutor::execute`].
    pub fn execute_traced(
        &self,
        index: &BitmapIndex,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> BatchResult {
        self.execute_inner(index, None, queries, pool, cost, tracer, parent, None)
            .expect("no deadline, cannot expire")
    }

    /// [`ParallelExecutor::execute`] with a wall-clock deadline, the
    /// serving path's bounded-latency entry point. The deadline is
    /// checked between queries and between DAG nodes; once it passes,
    /// remaining work is abandoned (leaf reads and bitwise ops are
    /// skipped) and the whole batch returns [`DeadlineExceeded`] —
    /// partial answers are never handed out. `None` behaves exactly like
    /// [`ParallelExecutor::execute`].
    pub fn execute_deadline(
        &self,
        index: &BitmapIndex,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
        deadline: Option<Instant>,
    ) -> Result<BatchResult, DeadlineExceeded> {
        self.execute_inner(
            index,
            None,
            queries,
            pool,
            cost,
            &Tracer::disabled(),
            None,
            deadline,
        )
    }

    /// Span tracing *and* a wall-clock deadline together — the traced
    /// serving path. Behaves like [`ParallelExecutor::execute_traced`]
    /// when `deadline` is `None` and like
    /// [`ParallelExecutor::execute_deadline`] when the tracer is
    /// disabled; a deadline expiry discards the batch but the spans
    /// recorded up to that point survive in the tracer.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_full(
        &self,
        index: &BitmapIndex,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
        tracer: &Tracer,
        parent: Option<SpanId>,
        deadline: Option<Instant>,
    ) -> Result<BatchResult, DeadlineExceeded> {
        self.execute_inner(index, None, queries, pool, cost, tracer, parent, deadline)
    }

    /// [`ParallelExecutor::execute_full`] over `main ∪ delta`: every
    /// query's result is the main index's answer with the in-memory
    /// delta tail appended ([`DeltaIndex::overlay`]), so mid-ingest
    /// batches are bit-identical to a from-scratch rebuild over the
    /// concatenated column. `delta: None` behaves exactly like
    /// [`ParallelExecutor::execute_full`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_full_delta(
        &self,
        index: &BitmapIndex,
        delta: Option<&DeltaIndex>,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
        tracer: &Tracer,
        parent: Option<SpanId>,
        deadline: Option<Instant>,
    ) -> Result<BatchResult, DeadlineExceeded> {
        self.execute_inner(index, delta, queries, pool, cost, tracer, parent, deadline)
    }

    /// Executes a multi-attribute [`Plan`] against an [`IndexedTable`]:
    /// every distinct literal becomes an independent work item (its
    /// per-attribute expression DAG is a root of the cross-index plan),
    /// drained by the executor's worker pool with the same adaptive
    /// domain selection as single-index batches. The clause fold runs
    /// word-wise on the calling thread once all literals land.
    pub fn execute_plan(
        &self,
        table: &IndexedTable,
        plan: &Plan,
        pool: &ShardedBufferPool,
        cost: &CostModel,
    ) -> PlanEvalResult {
        self.execute_plan_full(
            table,
            None,
            plan,
            pool,
            cost,
            &Tracer::disabled(),
            None,
            None,
        )
        .expect("no deadline, cannot expire")
    }

    /// [`ParallelExecutor::execute_plan`] with per-attribute delta
    /// overlays, span tracing, and a wall-clock deadline — the serving
    /// path. `deltas` is indexed by schema position; when present,
    /// every attribute the plan touches must carry a delta with the
    /// same appended row count.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_plan_full(
        &self,
        table: &IndexedTable,
        deltas: Option<&[Option<&DeltaIndex>]>,
        plan: &Plan,
        pool: &ShardedBufferPool,
        cost: &CostModel,
        tracer: &Tracer,
        parent: Option<SpanId>,
        deadline: Option<Instant>,
    ) -> Result<PlanEvalResult, DeadlineExceeded> {
        let cancel = deadline.map(Cancel::new);
        let cancel = cancel.as_ref();
        let lits = plan.distinct_literals();
        let outer = self.threads.min(lits.len()).max(1);
        let inner = self
            .inner_threads
            .unwrap_or_else(|| (self.threads / outer).max(1));

        let plan_span = tracer.span("plan", parent);
        plan_span.attr("clauses", plan.clauses.len());
        plan_span.attr("literals", lits.len());
        let plan_id = plan_span.id();

        let slots: Vec<Mutex<Option<EvalResult>>> = lits.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..outer {
                let (next, slots, lits) = (&next, &slots, &lits);
                scope.spawn(move || loop {
                    let li = next.fetch_add(1, Ordering::Relaxed);
                    let Some(lit) = lits.get(li) else { break };
                    if cancel.is_some_and(Cancel::expired) {
                        break;
                    }
                    let index = table
                        .index_at(lit.attr)
                        .expect("plan literal within schema");
                    let delta = deltas.and_then(|d| d.get(lit.attr).copied().flatten());
                    let span = if tracer.is_enabled() {
                        Some(tracer.span(&format!("literal {li}"), plan_id))
                    } else {
                        None
                    };
                    let span_id = span.as_ref().and_then(|s| s.id());
                    let mut result = evaluate_one(
                        index,
                        delta,
                        &lit.query,
                        pool,
                        inner,
                        self.domain,
                        cost,
                        tracer,
                        span_id,
                        cancel,
                    );
                    if lit.complement {
                        result.bitmap.not_assign();
                    }
                    if let Some(span) = &span {
                        span.attr("scans", result.scans);
                        span.attr("pages", result.io.pages_read);
                    }
                    *slots[li].lock().expect("literal slot") = Some(result);
                });
            }
        });

        if cancel.is_some_and(Cancel::expired) {
            return Err(DeadlineExceeded);
        }
        let results: Vec<EvalResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("literal slot")
                    .expect("every literal evaluated")
            })
            .collect();

        let mut out = PlanEvalResult {
            bitmap: Bitvec::zeros(0),
            scans: 0,
            io: IoStats::new(),
            seconds: 0.0,
            decompressions: 0,
            literals: lits.len(),
        };
        for (lit, r) in lits.iter().zip(&results) {
            out.scans += r.scans;
            out.io += r.io;
            out.seconds += r.total_seconds();
            out.decompressions += r.decompressions;
            if let Some(index) = table.index_at(lit.attr) {
                index.store().charge(r.io);
            }
        }
        let total_rows = results.first().map_or_else(
            || {
                table.rows()
                    + deltas
                        .into_iter()
                        .flatten()
                        .flatten()
                        .next()
                        .map_or(0, |d| d.rows())
            },
            |r| r.bitmap.len(),
        );
        let lookup = |lit: &PlanLiteral| -> &Bitvec {
            &results[lits
                .iter()
                .position(|l| l == lit)
                .expect("literal evaluated")]
            .bitmap
        };
        let mut acc: Option<Bitvec> = None;
        for clause in &plan.clauses {
            let folded = match clause.split_first() {
                None => Bitvec::ones_vec(total_rows),
                Some((first, rest)) => {
                    let mut b = lookup(first).clone();
                    for lit in rest {
                        b.and_assign(lookup(lit));
                    }
                    b
                }
            };
            match &mut acc {
                None => acc = Some(folded),
                Some(a) => a.or_assign(&folded),
            }
        }
        out.bitmap = acc.unwrap_or_else(|| Bitvec::zeros(total_rows));
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_inner(
        &self,
        index: &BitmapIndex,
        delta: Option<&DeltaIndex>,
        queries: &[Query],
        pool: &ShardedBufferPool,
        cost: &CostModel,
        tracer: &Tracer,
        parent: Option<SpanId>,
        deadline: Option<Instant>,
    ) -> Result<BatchResult, DeadlineExceeded> {
        let started = Instant::now();
        let cancel = deadline.map(Cancel::new);
        let cancel = cancel.as_ref();
        let outer = self.threads.min(queries.len()).max(1);
        let inner = self
            .inner_threads
            .unwrap_or_else(|| (self.threads / outer).max(1));

        let batch_span = tracer.span("batch", parent);
        batch_span.attr("queries", queries.len());
        batch_span.attr("threads", self.threads);
        let batch_id = batch_span.id();

        let slots: Vec<Mutex<Option<EvalResult>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..outer {
                let (next, slots) = (&next, &slots);
                scope.spawn(move || loop {
                    let qi = next.fetch_add(1, Ordering::Relaxed);
                    let Some(q) = queries.get(qi) else { break };
                    if cancel.is_some_and(Cancel::expired) {
                        break;
                    }
                    let q_span = if tracer.is_enabled() {
                        Some(tracer.span(&format!("query {qi}"), batch_id))
                    } else {
                        None
                    };
                    let q_id = q_span.as_ref().and_then(|s| s.id());
                    let result = evaluate_one(
                        index,
                        delta,
                        q,
                        pool,
                        inner,
                        self.domain,
                        cost,
                        tracer,
                        q_id,
                        cancel,
                    );
                    if let Some(span) = &q_span {
                        span.attr("scans", result.scans);
                        span.attr("pages", result.io.pages_read);
                    }
                    *slots[qi].lock().expect("result slot") = Some(result);
                });
            }
        });

        if cancel.is_some_and(Cancel::expired) {
            return Err(DeadlineExceeded);
        }
        let results: Vec<EvalResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every query evaluated")
            })
            .collect();

        let mut io = IoStats::new();
        let mut io_seconds = 0.0;
        let mut cpu_seconds = 0.0;
        for r in &results {
            io += r.io;
            io_seconds += r.io_seconds;
            cpu_seconds += r.cpu_seconds;
        }
        index.store().charge(io);

        Ok(BatchResult {
            results,
            io,
            io_seconds,
            cpu_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            threads: self.threads,
        })
    }
}

/// The outcome of one parallel batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query outcomes, in input order.
    pub results: Vec<EvalResult>,
    /// Merged disk activity across all worker threads.
    pub io: IoStats,
    /// Simulated disk time summed over queries (the batch's aggregate
    /// cost-model I/O, as if each per-thread disk arm ran serially).
    pub io_seconds: f64,
    /// Measured CPU time summed over queries.
    pub cpu_seconds: f64,
    /// Real elapsed time for the whole batch.
    pub wall_seconds: f64,
    /// The executor's thread budget when this batch ran.
    pub threads: usize,
}

impl BatchResult {
    /// Total bitmap scans across the batch.
    pub fn total_scans(&self) -> usize {
        self.results.iter().map(|r| r.scans).sum()
    }

    /// Total distinct bitmaps referenced across the batch (per query;
    /// bitmaps shared between queries count once per query, as in
    /// sequential accounting).
    pub fn total_distinct(&self) -> usize {
        self.results.iter().map(|r| r.distinct_bitmaps).sum()
    }
}

/// Evaluates one query: rewrite, DAG fold (parallel if `inner > 1`), and
/// the existence-bitmap intersection — mirroring
/// [`BitmapIndex::evaluate_detailed`] with
/// [`EvalStrategy::ComponentWise`]-equivalent scan accounting.
#[allow(clippy::too_many_arguments)]
fn evaluate_one(
    index: &BitmapIndex,
    delta: Option<&DeltaIndex>,
    q: &Query,
    pool: &ShardedBufferPool,
    inner: usize,
    domain: EvalDomain,
    cost: &CostModel,
    tracer: &Tracer,
    parent: Option<SpanId>,
    cancel: Option<&Cancel>,
) -> EvalResult {
    let started = Instant::now();
    let constituents = index.rewrite_constituents_traced(q, tracer, parent);
    let merged = Expr::or(constituents);
    let mut distinct = merged.scan_count();

    let lookup = |r: crate::BitmapRef| index.handle(r.component, r.slot);
    let build_span = tracer.span("build", parent);
    let dag = Dag::build(&merged);
    build_span.attr("nodes", dag.ops.len());
    build_span.finish();

    let fold_span = tracer.span("fold", parent);
    let fold_id = fold_span.id();
    let fold = fold_dag(
        &dag,
        index.rows(),
        &lookup,
        index,
        pool,
        inner,
        domain,
        tracer,
        fold_id,
        cancel,
    );
    let (mut bitmap, peak_resident, mut scans, mut io, mut decompressions) = (
        fold.bitmap,
        fold.peak_resident,
        fold.scans,
        fold.io,
        fold.decompressions,
    );
    fold_span.attr("workers", inner);
    fold_span.attr("decompressions", decompressions);
    fold_span.finish();

    if let Some(eb) = index.existence_handle() {
        if !cancel.is_some_and(Cancel::expired) {
            let span = tracer.span("existence", parent);
            let mut ctx = ReadContext::new();
            let existence = index.store().read_shared(eb, pool, &mut ctx);
            bitmap.and_assign(&existence);
            span.finish();
            scans += 1;
            distinct += 1;
            decompressions += usize::from(eb.codec() != CodecKind::Raw);
            io += ctx.take_stats();
        }
    }

    let mut result = EvalResult {
        bitmap,
        scans,
        distinct_bitmaps: distinct,
        io,
        io_seconds: cost.io_seconds(&io),
        cpu_seconds: cost.cpu_seconds(started.elapsed().as_secs_f64()),
        decompressions,
        peak_resident,
        nodes_raw: fold.nodes_raw,
        nodes_compressed: fold.nodes_compressed,
        delta_scans: 0,
        delta_rows: 0,
    };
    if let Some(delta) = delta {
        if !cancel.is_some_and(Cancel::expired) {
            let span = tracer.span("delta", parent);
            delta.overlay(q, &mut result);
            span.attr("delta_rows", result.delta_rows);
            span.finish();
        }
    }
    result
}

/// A ready-queue entry: the node index plus its enqueue time when
/// tracing is on (`None` when off, so the untraced hot path never calls
/// `Instant::now`). The stamp becomes the node span's `wait_ns` — time
/// spent ready but not yet picked up by a worker.
type ReadyEntry = (usize, Option<Instant>);

/// Shared state of one DAG fold: a dependency-counting scheduler.
/// A node becomes ready when all its children are computed; workers drain
/// the ready queue until every node has run.
struct FoldState {
    /// Ready-node queue plus count of nodes completed so far.
    ready: Mutex<(VecDeque<ReadyEntry>, usize)>,
    /// Wakes idle workers when nodes become ready or the fold finishes.
    wake: Condvar,
    /// Computed values (raw or still-compressed); freed (set back to
    /// `None`) at the last consumer.
    values: Vec<Mutex<Option<NodeVal>>>,
    /// Children still pending per node; a node is enqueued at zero.
    pending: Vec<AtomicUsize>,
    /// Remaining consumers per node (from [`Dag::refs`]).
    refs: Vec<AtomicUsize>,
    /// Leaf reads issued (one per distinct bitmap, by construction).
    scans: AtomicUsize,
    /// Compressed streams decoded to raw bitmaps so far.
    decompressions: AtomicUsize,
    /// Nodes whose computed value was a decoded bitmap / a compressed
    /// stream (the per-domain evaluation mix surfaced in `EvalResult`).
    nodes_raw: AtomicUsize,
    nodes_compressed: AtomicUsize,
    /// Live values now / at peak (for `peak_resident` accounting).
    resident: AtomicUsize,
    peak: AtomicUsize,
}

/// Everything one DAG fold produced.
struct FoldOutcome {
    bitmap: Bitvec,
    peak_resident: usize,
    scans: usize,
    io: IoStats,
    decompressions: usize,
    nodes_raw: usize,
    nodes_compressed: usize,
}

/// Folds the DAG bottom-up with `workers` threads (the §6.3 evaluator's
/// independent-subtree parallelism). Runs inline when `workers == 1`.
#[allow(clippy::too_many_arguments)]
fn fold_dag(
    dag: &Dag,
    rows: usize,
    lookup: &(dyn Fn(crate::BitmapRef) -> BitmapHandle + Sync),
    index: &BitmapIndex,
    pool: &ShardedBufferPool,
    workers: usize,
    domain: EvalDomain,
    tracer: &Tracer,
    parent: Option<SpanId>,
    cancel: Option<&Cancel>,
) -> FoldOutcome {
    let n = dag.ops.len();
    let parents: Vec<Vec<usize>> = {
        let mut parents = vec![Vec::new(); n];
        for (i, op) in dag.ops.iter().enumerate() {
            for c in op.children() {
                parents[c].push(i);
            }
        }
        parents
    };

    let state = FoldState {
        ready: Mutex::new((VecDeque::new(), 0)),
        wake: Condvar::new(),
        values: (0..n).map(|_| Mutex::new(None)).collect(),
        pending: dag
            .ops
            .iter()
            .map(|op| AtomicUsize::new(op.children().len()))
            .collect(),
        refs: dag.refs.iter().map(|&r| AtomicUsize::new(r)).collect(),
        scans: AtomicUsize::new(0),
        decompressions: AtomicUsize::new(0),
        nodes_raw: AtomicUsize::new(0),
        nodes_compressed: AtomicUsize::new(0),
        resident: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
    };
    let enqueue_stamp = || tracer.is_enabled().then(Instant::now);
    {
        let mut ready = state.ready.lock().expect("ready queue");
        for (i, op) in dag.ops.iter().enumerate() {
            if op.children().is_empty() {
                ready.0.push_back((i, enqueue_stamp()));
            }
        }
    }

    let io = Mutex::new(IoStats::new());
    std::thread::scope(|scope| {
        let run = || {
            let mut ctx = ReadContext::new();
            worker_loop(
                dag, &parents, &state, rows, lookup, index, pool, &mut ctx, n, domain, tracer,
                parent, cancel,
            );
            *io.lock().expect("io totals") += ctx.take_stats();
        };
        for _ in 1..workers {
            scope.spawn(run);
        }
        run(); // the calling thread is worker 0
    });

    let root_val = state.values[dag.root]
        .lock()
        .expect("root value")
        .take()
        .expect("root computed");
    let mut root_dec = 0usize;
    let result = root_val.into_raw(&mut root_dec);
    FoldOutcome {
        bitmap: result,
        peak_resident: state.peak.load(Ordering::Relaxed),
        scans: state.scans.load(Ordering::Relaxed),
        io: io.into_inner().expect("io totals"),
        decompressions: state.decompressions.load(Ordering::Relaxed) + root_dec,
        nodes_raw: state.nodes_raw.load(Ordering::Relaxed),
        nodes_compressed: state.nodes_compressed.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    dag: &Dag,
    parents: &[Vec<usize>],
    state: &FoldState,
    rows: usize,
    lookup: &(dyn Fn(crate::BitmapRef) -> BitmapHandle + Sync),
    index: &BitmapIndex,
    pool: &ShardedBufferPool,
    ctx: &mut ReadContext,
    total: usize,
    domain: EvalDomain,
    tracer: &Tracer,
    parent: Option<SpanId>,
    cancel: Option<&Cancel>,
) {
    loop {
        // Take a ready node, or sleep until one appears / the fold ends.
        let (node, enqueued) = {
            let mut ready = state.ready.lock().expect("ready queue");
            loop {
                if let Some(entry) = ready.0.pop_front() {
                    break entry;
                }
                if ready.1 == total {
                    return;
                }
                ready = state.wake.wait(ready).expect("ready queue");
            }
        };

        // Span covering this node's run time, annotated with how long it
        // sat in the ready queue before a worker picked it up.
        let node_span = enqueued.map(|t| {
            let kind = match &dag.ops[node] {
                NodeOp::Const(_) => "const",
                NodeOp::Leaf(_) => "read",
                NodeOp::Not(_) => "not",
                NodeOp::And(_) => "and",
                NodeOp::Or(_) => "or",
                NodeOp::Xor(..) => "xor",
            };
            let span = tracer.span(&format!("node {node} {kind}"), parent);
            span.attr("wait_ns", t.elapsed().as_nanos());
            span
        });

        let mut dec = 0usize;
        let value = if cancel.is_some_and(Cancel::expired) {
            // Deadline passed: complete the node without touching disk,
            // children, or kernels so the fold drains immediately. The
            // placeholder value is never handed out — the executor maps
            // the whole batch to `DeadlineExceeded`.
            NodeVal::Raw(Bitvec::zeros(0))
        } else {
            match &dag.ops[node] {
                NodeOp::Const(true) => NodeVal::Raw(Bitvec::ones_vec(rows)),
                NodeOp::Const(false) => NodeVal::Raw(Bitvec::zeros(rows)),
                NodeOp::Leaf(r) => {
                    state.scans.fetch_add(1, Ordering::Relaxed);
                    let handle = lookup(*r);
                    let stored = index.store().stored_size(handle);
                    if reads_compressed(domain, handle, stored, index.domain_cost_model()) {
                        let c = index
                            .store()
                            .read_compressed_shared(handle, pool, ctx)
                            .unwrap_or_else(|e| {
                                panic!("corrupt bitmap on an unguarded shared read path: {e}")
                            });
                        NodeVal::packed(c)
                    } else {
                        dec += usize::from(handle.codec() != CodecKind::Raw);
                        NodeVal::Raw(index.store().read_shared(handle, pool, ctx))
                    }
                }
                op => {
                    // Fold children, locking one value at a time. Children are
                    // all computed (dependency counts reached zero) and cannot
                    // be freed before this node — their consumer — runs.
                    let children = op.children();
                    let child = |c: usize| -> NodeVal {
                        state.values[c]
                            .lock()
                            .expect("child value")
                            .clone()
                            .expect("child computed")
                    };
                    let mut acc = child(children[0]);
                    match op {
                        NodeOp::Not(_) => {
                            acc = acc.not(domain, index.domain_cost_model(), &mut dec);
                        }
                        NodeOp::And(_) | NodeOp::Or(_) | NodeOp::Xor(..) => {
                            let bit_op = match op {
                                NodeOp::And(_) => BitOp::And,
                                NodeOp::Or(_) => BitOp::Or,
                                _ => BitOp::Xor,
                            };
                            for &c in &children[1..] {
                                let guard = state.values[c].lock().expect("child value");
                                let rhs = guard.as_ref().expect("child computed");
                                acc = acc.combine(
                                    rhs,
                                    bit_op,
                                    domain,
                                    index.domain_cost_model(),
                                    &mut dec,
                                );
                            }
                        }
                        NodeOp::Const(_) | NodeOp::Leaf(_) => unreachable!("handled above"),
                    }
                    acc
                }
            }
        };
        if dec > 0 {
            state.decompressions.fetch_add(dec, Ordering::Relaxed);
        }
        match &value {
            NodeVal::Raw(_) => &state.nodes_raw,
            NodeVal::Packed(..) => &state.nodes_compressed,
        }
        .fetch_add(1, Ordering::Relaxed);

        if let Some(span) = &node_span {
            span.attr("domain", value.domain_name());
        }
        drop(node_span);
        *state.values[node].lock().expect("node value") = Some(value);
        let live = state.resident.fetch_add(1, Ordering::Relaxed) + 1;
        state.peak.fetch_max(live, Ordering::Relaxed);

        // Free children whose last consumer just ran.
        for c in dag.ops[node].children() {
            if state.refs[c].fetch_sub(1, Ordering::AcqRel) == 1
                && state.values[c]
                    .lock()
                    .expect("child value")
                    .take()
                    .is_some()
            {
                state.resident.fetch_sub(1, Ordering::Relaxed);
            }
        }

        // Mark complete; enqueue parents that just became ready.
        let mut newly_ready: Vec<usize> = Vec::new();
        for &p in &parents[node] {
            if state.pending[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                newly_ready.push(p);
            }
        }
        {
            let stamp = tracer.is_enabled().then(Instant::now);
            let mut ready = state.ready.lock().expect("ready queue");
            ready.1 += 1;
            for p in newly_ready {
                ready.0.push_back((p, stamp));
            }
            if ready.1 == total {
                state.wake.notify_all();
            } else {
                state.wake.notify_one();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPool, EncodingScheme, IndexConfig};
    use bix_compress::CodecKind;

    fn test_index(codec: CodecKind) -> BitmapIndex {
        let column: Vec<u64> = (0..30_000u64).map(|i| (i * 37 + i / 13) % 50).collect();
        let config = IndexConfig::one_component(50, EncodingScheme::Interval).with_codec(codec);
        BitmapIndex::build(&column, &config)
    }

    fn test_queries() -> Vec<Query> {
        vec![
            Query::equality(7),
            Query::range(3, 20),
            Query::membership(vec![0, 4, 8, 12, 16, 49]),
            Query::le(25),
            Query::range(10, 40).not(),
            Query::membership((0..50).step_by(3).collect::<Vec<u64>>()),
        ]
    }

    /// Sequential ground truth for a query, plus its scan count.
    fn sequential(index: &mut BitmapIndex, q: &Query) -> EvalResult {
        let mut pool = BufferPool::new(4096);
        index.evaluate_detailed(
            q,
            &mut pool,
            EvalStrategy::ComponentWise,
            &CostModel::default(),
        )
    }

    #[test]
    fn plan_execution_matches_sequential_and_naive() {
        use crate::{Planner, TableQuery};
        let rows = 4000usize;
        let region: Vec<u64> = (0..rows).map(|i| (i * 7 % 8) as u64).collect();
        let store: Vec<u64> = (0..rows).map(|i| (i * 13 % 48) as u64).collect();
        let discount: Vec<u64> = (0..rows).map(|i| ((i * i) % 50) as u64).collect();
        let mut table = IndexedTable::new(rows);
        table.add_attribute(
            "region",
            &region,
            IndexConfig::one_component(8, EncodingScheme::Equality),
        );
        table.add_attribute(
            "store",
            &store,
            IndexConfig::one_component(48, EncodingScheme::Interval).with_codec(CodecKind::Wah),
        );
        table.add_attribute(
            "discount",
            &discount,
            IndexConfig::one_component(50, EncodingScheme::Interval),
        );
        let schema = table.schema();
        let q = TableQuery::parse(
            "region in {0, 1} and (discount >= 7 or not store = 12)",
            &schema,
        )
        .unwrap();
        let plan = Planner::new(&schema).plan(&q).unwrap();
        let naive = table.evaluate(&q);
        let sequential = table.execute_plan(&plan, &CostModel::default());
        assert_eq!(sequential.bitmap, naive);
        // COUNT pushdown agrees with materialized positions.
        assert_eq!(sequential.count(), naive.to_positions().len() as u64);
        for threads in [1usize, 2, 8] {
            let pool = ShardedBufferPool::new(4096, 8);
            let parallel = ParallelExecutor::new(threads).execute_plan(
                &table,
                &plan,
                &pool,
                &CostModel::default(),
            );
            assert_eq!(parallel.bitmap, naive, "t={threads}");
            assert_eq!(parallel.literals, sequential.literals);
            assert_eq!(parallel.scans, sequential.scans, "t={threads}");
        }
    }

    #[test]
    fn batch_matches_sequential_bit_for_bit() {
        for codec in [CodecKind::Raw, CodecKind::Bbc] {
            let mut index = test_index(codec);
            let queries = test_queries();
            let expected: Vec<EvalResult> =
                queries.iter().map(|q| sequential(&mut index, q)).collect();

            for threads in [1usize, 2, 8] {
                let pool = ShardedBufferPool::new(4096, 8);
                let batch = ParallelExecutor::new(threads).execute(
                    &index,
                    &queries,
                    &pool,
                    &CostModel::default(),
                );
                assert_eq!(batch.results.len(), queries.len());
                for (i, (got, want)) in batch.results.iter().zip(&expected).enumerate() {
                    assert_eq!(got.bitmap, want.bitmap, "{codec} t={threads} q{i}");
                    assert_eq!(got.scans, want.scans, "{codec} t={threads} q{i}");
                    assert_eq!(got.distinct_bitmaps, want.distinct_bitmaps);
                }
            }
        }
    }

    #[test]
    fn within_query_folding_matches_sequential() {
        let mut index = test_index(CodecKind::Raw);
        let queries = test_queries();
        let pool = ShardedBufferPool::new(4096, 8);
        let batch = ParallelExecutor::new(4).with_inner_threads(4).execute(
            &index,
            &queries,
            &pool,
            &CostModel::default(),
        );
        for (i, q) in queries.iter().enumerate() {
            let want = sequential(&mut index, q);
            assert_eq!(batch.results[i].bitmap, want.bitmap, "q{i}");
            assert_eq!(batch.results[i].scans, want.scans, "q{i}");
        }
    }

    #[test]
    fn eval_domains_agree_and_compressed_decodes_less() {
        use bix_compress::CodecKind;
        for codec in [CodecKind::Bbc, CodecKind::Wah, CodecKind::Ewah] {
            let index = test_index(codec);
            let queries = test_queries();
            let pool = ShardedBufferPool::new(4096, 8);
            let raw = ParallelExecutor::new(4)
                .with_domain(EvalDomain::Raw)
                .execute(&index, &queries, &pool, &CostModel::default());
            for domain in [EvalDomain::Auto, EvalDomain::Compressed] {
                let pool = ShardedBufferPool::new(4096, 8);
                let got = ParallelExecutor::new(4).with_domain(domain).execute(
                    &index,
                    &queries,
                    &pool,
                    &CostModel::default(),
                );
                for (i, (g, w)) in got.results.iter().zip(&raw.results).enumerate() {
                    assert_eq!(g.bitmap, w.bitmap, "{codec} {domain:?} q{i}");
                    assert_eq!(g.scans, w.scans, "{codec} {domain:?} q{i}");
                    assert!(
                        g.decompressions <= w.decompressions,
                        "{codec} {domain:?} q{i}: {} > {}",
                        g.decompressions,
                        w.decompressions
                    );
                }
            }
            // Keeping every stream compressed decodes strictly less over
            // the batch: multi-leaf queries fold to one decode at the root.
            let pool = ShardedBufferPool::new(4096, 8);
            let packed = ParallelExecutor::new(4)
                .with_domain(EvalDomain::Compressed)
                .execute(&index, &queries, &pool, &CostModel::default());
            let dec_packed: usize = packed.results.iter().map(|r| r.decompressions).sum();
            let dec_raw: usize = raw.results.iter().map(|r| r.decompressions).sum();
            assert!(
                dec_packed < dec_raw,
                "{codec}: compressed {dec_packed} vs raw {dec_raw}"
            );
        }
    }

    #[test]
    fn batch_io_is_charged_to_store_totals() {
        let index = test_index(CodecKind::Raw);
        let before = index.store().stats();
        let pool = ShardedBufferPool::new(4096, 4);
        let batch =
            ParallelExecutor::new(4).execute(&index, &test_queries(), &pool, &CostModel::default());
        let after = index.store().stats().since(&before);
        assert_eq!(after, batch.io, "merged batch I/O lands in global stats");
        assert!(batch.io.pages_read > 0);
        assert!(batch.io_seconds > 0.0);
    }

    #[test]
    fn warm_striped_pool_turns_rereads_into_hits() {
        let index = test_index(CodecKind::Raw);
        let pool = ShardedBufferPool::new(4096, 4);
        let exec = ParallelExecutor::new(4);
        let queries = test_queries();
        let cold = exec.execute(&index, &queries, &pool, &CostModel::default());
        let warm = exec.execute(&index, &queries, &pool, &CostModel::default());
        assert_eq!(warm.total_scans(), cold.total_scans());
        assert!(warm.io.pages_read < cold.io.pages_read);
        assert!(warm.io.pool_hits > cold.io.pool_hits);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = test_index(CodecKind::Raw);
        let pool = ShardedBufferPool::new(64, 2);
        let batch = ParallelExecutor::new(4).execute(&index, &[], &pool, &CostModel::default());
        assert!(batch.results.is_empty());
        assert_eq!(batch.total_scans(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ParallelExecutor::new(0);
    }

    #[test]
    fn expired_deadline_yields_typed_error() {
        let index = test_index(CodecKind::Raw);
        let pool = ShardedBufferPool::new(4096, 4);
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let got = ParallelExecutor::new(4)
            .with_inner_threads(2)
            .execute_deadline(
                &index,
                &test_queries(),
                &pool,
                &CostModel::default(),
                Some(past),
            );
        assert_eq!(got.unwrap_err(), DeadlineExceeded);
    }

    #[test]
    fn generous_deadline_matches_undeadlined_run() {
        let index = test_index(CodecKind::Raw);
        let queries = test_queries();
        let pool = ShardedBufferPool::new(4096, 4);
        let plain =
            ParallelExecutor::new(4).execute(&index, &queries, &pool, &CostModel::default());
        let pool = ShardedBufferPool::new(4096, 4);
        let far = std::time::Instant::now() + std::time::Duration::from_secs(600);
        let timed = ParallelExecutor::new(4)
            .execute_deadline(&index, &queries, &pool, &CostModel::default(), Some(far))
            .expect("generous deadline cannot expire");
        for (g, w) in timed.results.iter().zip(&plain.results) {
            assert_eq!(g.bitmap, w.bitmap);
            assert_eq!(g.scans, w.scans);
        }
    }

    #[test]
    fn node_mix_counters_cover_the_fold() {
        // Raw store: every folded node materialises as a raw bitvec.
        let index = test_index(CodecKind::Raw);
        let pool = ShardedBufferPool::new(4096, 4);
        let batch = ParallelExecutor::new(2).with_inner_threads(2).execute(
            &index,
            &test_queries(),
            &pool,
            &CostModel::default(),
        );
        for r in &batch.results {
            assert!(r.nodes_raw > 0);
            assert_eq!(r.nodes_compressed, 0);
        }
        // Compressed-domain BBC: leaves stay packed through the fold.
        let index = test_index(CodecKind::Bbc);
        let pool = ShardedBufferPool::new(4096, 4);
        let batch = ParallelExecutor::new(2)
            .with_domain(EvalDomain::Compressed)
            .execute(&index, &test_queries(), &pool, &CostModel::default());
        assert!(batch.results.iter().any(|r| r.nodes_compressed > 0));
    }
}
