//! Query evaluation strategies (§6.3).
//!
//! The rewrite phase produces a bitmap expression DAG; evaluating it is a
//! scheduling problem over a bounded buffer. The paper describes the two
//! extreme points, both implemented here:
//!
//! * **Component-wise** — all constituent interval queries are merged and
//!   their bitmaps fetched one component at a time, each distinct bitmap
//!   scanned exactly once (given sufficient buffer). This is the strategy
//!   used throughout the paper's performance study.
//! * **Query-wise** — constituents are evaluated one at a time, keeping a
//!   single intermediate result. Minimal buffer requirement, but bitmaps
//!   shared between constituents may be re-read if evicted.

use crate::{BitmapRef, Expr};
use bix_bitvec::Bitvec;
use bix_compress::{BitOp, CodecKind, CompressedBitmap};
use bix_storage::{BitmapHandle, BitmapStore, BufferPool, CostModel, IoStats};
use bix_telemetry::{SpanId, Tracer};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which evaluation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// Fetch each distinct bitmap once, ordered by component (§6.3).
    #[default]
    ComponentWise,
    /// Evaluate one constituent at a time with one intermediate result.
    QueryWise,
    /// Query-wise with a greedy schedule: constituents are reordered so
    /// that each next constituent shares as many bitmaps as possible with
    /// the ones just evaluated, maximizing buffer-pool reuse under tight
    /// memory. This is the scheduling problem §6.3 leaves as future work,
    /// solved with a nearest-neighbour heuristic.
    QueryWiseScheduled,
    /// The paper's component-wise evaluation *as described*: process one
    /// component at a time, combining each component's bitmaps into the
    /// per-constituent intermediate results and freeing them before the
    /// next component — so working memory stays bounded by the §6.3
    /// formula (`n1 + 2·n2` intermediates plus one component's bitmaps)
    /// instead of holding every distinct bitmap like
    /// [`EvalStrategy::ComponentWise`]. [`EvalResult::peak_resident`]
    /// reports the measured footprint.
    ComponentStreaming,
}

/// Which representation the §6.3 DAG fold works over.
///
/// The classic evaluator decompresses every bitmap as it is read and does
/// word-wise bitwise work. Codecs closed under the bitwise operations
/// (BBC, WAH, EWAH) also support folding the *compressed streams*
/// directly — aligned fills combine in O(1) regardless of run length, and
/// only one decompression is paid, at the root. Which wins depends on
/// density: sparse, fill-heavy streams favour the compressed domain;
/// near-incompressible streams favour a single decode plus word loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalDomain {
    /// Per-node choice priced by the [`DomainCostModel`]: a leaf stays
    /// compressed when its codec's kernel is predicted cheaper over the
    /// stored stream than a decode plus word-wise work over the raw
    /// image; an intermediate result is decoded as soon as that stops
    /// holding. This is the default.
    #[default]
    Auto,
    /// Keep every supported codec's stream compressed through the whole
    /// fold; decompress once at the root.
    Compressed,
    /// Decompress every bitmap at read time and fold word-wise (the
    /// classic path).
    Raw,
}

impl EvalDomain {
    /// Parses the `--eval-domain` CLI spelling.
    pub fn parse(s: &str) -> Option<EvalDomain> {
        match s {
            "auto" => Some(EvalDomain::Auto),
            "compressed" => Some(EvalDomain::Compressed),
            "raw" => Some(EvalDomain::Raw),
            _ => None,
        }
    }

    /// The CLI spelling of this domain.
    pub fn name(self) -> &'static str {
        match self {
            EvalDomain::Auto => "auto",
            EvalDomain::Compressed => "compressed",
            EvalDomain::Raw => "raw",
        }
    }
}

/// Per-codec slopes of the [`DomainCostModel`], nanoseconds per byte.
///
/// Both slopes are measured on near-incompressible (literal-heavy)
/// inputs — the regime where the packed-vs-raw decision is close. Fill-
/// heavy streams have tiny stored sizes, so the linear rule prefers the
/// packed domain for them automatically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainCosts {
    /// Decoding cost for dense (literal-heavy) streams: nanoseconds per
    /// byte of the *decoded* image.
    pub decode_ns_per_raw_byte: f64,
    /// Decoding cost for sparse (run-heavy) streams, same denomination.
    /// Decode speed is strongly density-dependent and the codecs
    /// disagree on the sign: WAH and Roaring decode sparse streams
    /// several times *faster* than dense ones (fills memset, arrays set
    /// scattered bits), while BBC and EWAH decode them *slower* (per-run
    /// header overhead dominates when every run is short).
    pub decode_sparse_ns_per_raw_byte: f64,
    /// Compressed-kernel cost: nanoseconds per *stored* byte folded.
    pub kernel_ns_per_stored_byte: f64,
}

impl DomainCosts {
    /// The decode slope for a stream of `stored` bytes decoding to `raw`
    /// bytes, picked by the stream's own compression ratio: below 50%
    /// the stream is run-dominated and the sparse slope applies.
    pub fn decode_slope(&self, stored: usize, raw: usize) -> f64 {
        if stored * 2 < raw {
            self.decode_sparse_ns_per_raw_byte
        } else {
            self.decode_ns_per_raw_byte
        }
    }
}

/// Expected number of future fold ops a decoded value serves.
///
/// The packed-vs-raw choice is made greedily per DAG node, but a decode
/// is a one-time cost while every op after it runs at
/// `word_ns_per_byte`. [`DomainCostModel::prefer_packed`] therefore
/// amortizes the decode over this many ops — a typical §6 expression
/// fold is several levels deep, so charging the full decode against one
/// op systematically overprices demotion.
pub const DECODE_REUSE: f64 = 3.0;

/// A measured cost model deciding, per DAG node, whether a value is
/// cheaper to keep as a compressed stream or as a decoded bitmap.
///
/// The rule compares the marginal cost of the next operation on the value
/// in each domain. Folding a packed value costs about
/// `kernel_ns_per_stored_byte × stored` per op; going raw costs a decode
/// (the density-matched [`DomainCosts::decode_slope`] × raw, amortized
/// over [`DECODE_REUSE`] future ops), plus `word_ns_per_byte × raw` for
/// the word-wise op, plus — the term that makes the choice honest — a
/// full decode of the packed operand the next op would otherwise have
/// kernel-folded: once a value is raw, [`NodeVal::combine`] must decode
/// every compressed operand it meets. The value stays packed when
///
/// ```text
/// kernel_ns × stored  ≤  (decode_ns / DECODE_REUSE + word_ns) × raw
///                         + operand_decode_ns × operand_raw
/// ```
///
/// The same inequality governs leaf admission (`reads_compressed`,
/// operand priced self-like) and intermediate-result demotion
/// (`NodeVal::combine`/`not`, operand priced from the op actually
/// performed), replacing the two ad-hoc size-ratio thresholds that
/// previously disagreed with each other — and that demoted every dense
/// stream even when its kernel was cheaper than a decode. The operand
/// term is what lets EWAH hold a dense accumulator packed through a long
/// OR over compressed leaves (its kernel is cheaper per byte than its
/// own decode) while WAH and Roaring, whose sparse decodes are nearly
/// free, correctly let the same accumulator demote.
///
/// [`DomainCostModel::DEFAULT`] holds constants measured with
/// [`DomainCostModel::calibrate`] on the development container;
/// `calibrate()` re-measures on the current machine in a few
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainCostModel {
    /// BBC slopes.
    pub bbc: DomainCosts,
    /// WAH slopes.
    pub wah: DomainCosts,
    /// EWAH slopes.
    pub ewah: DomainCosts,
    /// Roaring slopes.
    pub roaring: DomainCosts,
    /// Word-wise fold cost: nanoseconds per byte of a decoded bitmap.
    pub word_ns_per_byte: f64,
}

impl Default for DomainCostModel {
    fn default() -> Self {
        DomainCostModel::DEFAULT
    }
}

impl DomainCostModel {
    /// Constants measured by [`DomainCostModel::calibrate`] on the
    /// reference container (single-core x86-64, release build).
    pub const DEFAULT: DomainCostModel = DomainCostModel {
        bbc: DomainCosts {
            decode_ns_per_raw_byte: 1.31,
            decode_sparse_ns_per_raw_byte: 3.05,
            kernel_ns_per_stored_byte: 34.5,
        },
        wah: DomainCosts {
            decode_ns_per_raw_byte: 1.39,
            decode_sparse_ns_per_raw_byte: 1.79,
            kernel_ns_per_stored_byte: 4.75,
        },
        ewah: DomainCosts {
            decode_ns_per_raw_byte: 1.21,
            decode_sparse_ns_per_raw_byte: 1.28,
            kernel_ns_per_stored_byte: 0.80,
        },
        roaring: DomainCosts {
            decode_ns_per_raw_byte: 3.36,
            decode_sparse_ns_per_raw_byte: 0.31,
            kernel_ns_per_stored_byte: 7.42,
        },
        word_ns_per_byte: 0.030,
    };

    /// The slopes for `codec`, or `None` when the codec has no
    /// compressed-domain kernels (only [`CodecKind::Raw`] today).
    pub fn costs(&self, codec: CodecKind) -> Option<DomainCosts> {
        match codec {
            CodecKind::Bbc => Some(self.bbc),
            CodecKind::Wah => Some(self.wah),
            CodecKind::Ewah => Some(self.ewah),
            CodecKind::Roaring => Some(self.roaring),
            CodecKind::Raw => None,
        }
    }

    /// Predicted nanoseconds for one compressed-domain op over a value of
    /// `codec` with `stored` stream bytes. Infinite when the codec has no
    /// kernels, so [`DomainCostModel::prefer_packed`] never picks it.
    pub fn packed_op_ns(&self, codec: CodecKind, stored: usize) -> f64 {
        self.costs(codec).map_or(f64::INFINITY, |c| {
            c.kernel_ns_per_stored_byte * stored as f64
        })
    }

    /// Predicted nanoseconds to decode a value of `codec` with `stored`
    /// stream bytes and `raw` decoded-image bytes, then fold one
    /// word-wise op over it.
    pub fn raw_op_ns(&self, codec: CodecKind, stored: usize, raw: usize) -> f64 {
        let decode = self
            .costs(codec)
            .map_or(0.0, |c| c.decode_slope(stored, raw));
        (decode + self.word_ns_per_byte) * raw as f64
    }

    /// Whether a value of `codec` with `stored` stream bytes and `raw`
    /// decoded bytes is cheaper kept packed — the *admission* rule for
    /// [`EvalDomain::Auto`], applied when a leaf is fetched.
    ///
    /// Unlike [`DomainCostModel::raw_op_ns`] (the true one-op price used
    /// for prediction), the value's own decode is divided by
    /// [`DECODE_REUSE`]: demoting once makes every later op on the value
    /// word-cheap, and charging the whole decode against a single op
    /// would pin dense streams packed through folds deep enough to repay
    /// the decode many times over. The demote side also carries a full
    /// *sibling* decode: a raw value forces every packed operand it later
    /// combines with through [`NodeVal::into_raw`], a per-op cost a
    /// packed kernel would have avoided entirely. At admission time the
    /// sibling is unknown, so it is priced self-like (same codec, same
    /// density regime) — the other leaves of the same query.
    pub fn prefer_packed(&self, codec: CodecKind, stored: usize, raw: usize) -> bool {
        self.keep_packed(codec, stored, raw, Some((stored, raw)))
    }

    /// The *demotion* rule for [`EvalDomain::Auto`], applied to the
    /// result of every compressed-domain op ([`NodeVal::combine`] /
    /// [`NodeVal::not`]). Same inequality as
    /// [`DomainCostModel::prefer_packed`], but the forced-decode term
    /// prices the op's *actual* operand (`None` when the operand arrived
    /// raw, so demotion forces no decode and gets cheaper).
    pub fn keep_packed(
        &self,
        codec: CodecKind,
        stored: usize,
        raw: usize,
        operand: Option<(usize, usize)>,
    ) -> bool {
        let Some(c) = self.costs(codec) else {
            return false;
        };
        let packed = c.kernel_ns_per_stored_byte * stored as f64;
        let mut demote =
            (c.decode_slope(stored, raw) / DECODE_REUSE + self.word_ns_per_byte) * raw as f64;
        if let Some((op_stored, op_raw)) = operand {
            demote += c.decode_slope(op_stored, op_raw) * op_raw as f64;
        }
        packed <= demote
    }

    /// Measures the model's slopes on the current machine.
    ///
    /// Times each codec's decode and binary kernel, and the word-wise
    /// fold, over a pseudo-random half-dense megabit bitmap (the literal-
    /// heavy regime where the packed-vs-raw decision is close) and takes
    /// the minimum of several repetitions. The kernel slope is also
    /// measured on a sparse pair (XOR over scattered single bits — the
    /// regime that exercises per-run and per-element merge paths rather
    /// than bulk word loops) and the worse of the two slopes wins: a
    /// model that underprices the slow path keeps values packed exactly
    /// where the kernel loses. Decode is measured in both regimes and
    /// kept as *separate* slopes ([`DomainCosts::decode_slope`] picks by
    /// the stream's own ratio) because the codecs disagree on which
    /// regime decodes faster. Costs a few milliseconds; callers that
    /// care (the `eval_domain` bench) run it once and reuse the result
    /// via [`crate::BitmapIndex::set_domain_cost_model`].
    pub fn calibrate() -> DomainCostModel {
        use bix_compress::{Bbc, BitmapCodec, Ewah, Roaring, Wah};
        const BITS: usize = 1 << 20;
        let raw_bytes = (BITS / 8) as f64;

        // xorshift64*: deterministic, dependency-free irregular fill.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut a = Bitvec::zeros(BITS);
        let mut b = Bitvec::zeros(BITS);
        for w in 0..BITS / 64 {
            a.set_bits(w * 64, 64, next());
            b.set_bits(w * 64, 64, next());
        }
        // Scattered single bits, mean gap ~42: Roaring stays in array
        // containers, WAH/EWAH alternate fills and lone literals.
        let mut sparse = |salt: u64| {
            let mut bv = Bitvec::zeros(BITS);
            let mut pos = (salt % 13) as usize;
            while pos < BITS {
                bv.set(pos, true);
                pos += (next() % 67) as usize + 9;
            }
            bv
        };
        let (sa, sb) = (sparse(1), sparse(2));

        // Minimum over reps: the least noise-sensitive location statistic
        // for a throughput slope (outliers are always slowdowns).
        fn min_ns(mut f: impl FnMut()) -> f64 {
            f(); // warm-up
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_nanos() as f64);
            }
            best
        }

        let word_ns_per_byte = {
            let mut acc = a.clone();
            min_ns(|| {
                acc.and_assign(&b);
                std::hint::black_box(&acc);
            }) / raw_bytes
        };

        let measure = |codec: &dyn BitmapCodec| -> DomainCosts {
            let ca = CompressedBitmap::from_parts(codec.kind(), BITS, codec.compress(&a));
            let cb = CompressedBitmap::from_parts(codec.kind(), BITS, codec.compress(&b));
            let decode_ns_per_raw_byte = min_ns(|| {
                std::hint::black_box(ca.try_decode().expect("calibration stream"));
            }) / raw_bytes;
            let dense_slope = min_ns(|| {
                std::hint::black_box(ca.binary_op(&cb, BitOp::And).expect("kernel"));
            }) / ca.stored_size().max(cb.stored_size()).max(1) as f64;
            let csa = CompressedBitmap::from_parts(codec.kind(), BITS, codec.compress(&sa));
            let csb = CompressedBitmap::from_parts(codec.kind(), BITS, codec.compress(&sb));
            let decode_sparse_ns_per_raw_byte = min_ns(|| {
                std::hint::black_box(csa.try_decode().expect("calibration stream"));
            }) / raw_bytes;
            let sparse_slope = min_ns(|| {
                std::hint::black_box(csa.binary_op(&csb, BitOp::Xor).expect("kernel"));
            }) / csa.stored_size().max(csb.stored_size()).max(1) as f64;
            DomainCosts {
                decode_ns_per_raw_byte,
                decode_sparse_ns_per_raw_byte,
                kernel_ns_per_stored_byte: dense_slope.max(sparse_slope),
            }
        };

        DomainCostModel {
            bbc: measure(&Bbc),
            wah: measure(&Wah),
            ewah: measure(&Ewah),
            roaring: measure(&Roaring),
            word_ns_per_byte,
        }
    }
}

/// Decides whether a leaf bitmap is read as a compressed stream
/// ([`BitmapStore::read_compressed`]) or decoded at read time.
pub(crate) fn reads_compressed(
    domain: EvalDomain,
    handle: BitmapHandle,
    stored: usize,
    model: &DomainCostModel,
) -> bool {
    if !handle.codec().supports_compressed_ops() {
        return false;
    }
    match domain {
        EvalDomain::Raw => false,
        EvalDomain::Compressed => true,
        EvalDomain::Auto => {
            model.prefer_packed(handle.codec(), stored, handle.len_bits().div_ceil(8))
        }
    }
}

/// One value flowing through the evaluation DAG: either a decoded bitmap
/// or a still-compressed stream (validated at read time, so kernel ops
/// and the final decode cannot fail).
#[derive(Debug, Clone)]
pub(crate) enum NodeVal {
    /// A decoded bitmap; ops on it are word-wise.
    Raw(Bitvec),
    /// A compressed stream; ops on it run in the compressed domain. The
    /// cell lazily caches the decoded image: hash-consed DAG nodes are
    /// consumed by several parents, and without the cache every
    /// mixed-domain consumer would decode (and count) the same stream
    /// again — letting `auto` exceed the raw domain's decompression
    /// count on queries with shared subexpressions. Clones share the
    /// cell, so a value decodes at most once however often it is read.
    Packed(CompressedBitmap, DecodedCell),
}

/// Shared lazy decode slot for [`NodeVal::Packed`]; `Arc` because the
/// parallel executor's fold reads node values from several threads.
pub(crate) type DecodedCell = std::sync::Arc<std::sync::OnceLock<Bitvec>>;

/// Decodes through the cache, counting the decompression only when this
/// call actually performed it (`get_or_init` runs the closure exactly
/// once per cell, so the count stays deterministic under the parallel
/// executor too).
fn decode_cached<'a>(
    c: &CompressedBitmap,
    cell: &'a DecodedCell,
    decompressions: &mut usize,
) -> &'a Bitvec {
    let mut fresh = false;
    let bv = cell.get_or_init(|| {
        fresh = true;
        c.try_decode().expect("stream validated at read time")
    });
    if fresh {
        *decompressions += 1;
    }
    bv
}

fn apply_assign(acc: &mut Bitvec, op: BitOp, rhs: &Bitvec) {
    match op {
        BitOp::And => acc.and_assign(rhs),
        BitOp::Or => acc.or_assign(rhs),
        BitOp::Xor => acc.xor_assign(rhs),
        BitOp::AndNot => *acc = acc.and_not(rhs),
    }
}

impl NodeVal {
    /// Telemetry label for the representation this value ended up in.
    pub(crate) fn domain_name(&self) -> &'static str {
        match self {
            NodeVal::Raw(_) => "raw",
            NodeVal::Packed(..) => "compressed",
        }
    }

    /// Wraps a freshly produced compressed stream with an empty decode
    /// cache.
    pub(crate) fn packed(c: CompressedBitmap) -> NodeVal {
        NodeVal::Packed(c, DecodedCell::default())
    }

    /// Decodes (through the shared cache, counting only a fresh
    /// decompression) or clones out a raw bitmap.
    pub(crate) fn to_raw(&self, decompressions: &mut usize) -> Bitvec {
        match self {
            NodeVal::Raw(bv) => bv.clone(),
            NodeVal::Packed(c, cell) => decode_cached(c, cell, decompressions).clone(),
        }
    }

    /// Consumes the value into a raw bitmap, counting any decompression.
    pub(crate) fn into_raw(self, decompressions: &mut usize) -> Bitvec {
        match self {
            NodeVal::Raw(bv) => bv,
            NodeVal::Packed(c, cell) => {
                decode_cached(&c, &cell, decompressions);
                match std::sync::Arc::try_unwrap(cell) {
                    Ok(once) => once.into_inner().expect("cell just initialized"),
                    Err(shared) => shared.get().expect("cell just initialized").clone(),
                }
            }
        }
    }

    /// Demotes a packed result to raw when the cost model says the ops
    /// above it are cheaper word-wise — the per-node adaptive choice
    /// under [`EvalDomain::Auto`]. `operand` carries the stored/raw
    /// sizes of the packed operand the producing op consumed (if any):
    /// demoting a value that keeps meeting compressed operands forces a
    /// decode per op, so the model charges for it.
    fn settle(
        c: CompressedBitmap,
        domain: EvalDomain,
        model: &DomainCostModel,
        operand: Option<(usize, usize)>,
        decompressions: &mut usize,
    ) -> NodeVal {
        if domain == EvalDomain::Auto
            && !model.keep_packed(c.kind(), c.stored_size(), c.raw_size(), operand)
        {
            *decompressions += 1;
            return NodeVal::Raw(c.try_decode().expect("stream validated at read time"));
        }
        NodeVal::packed(c)
    }

    /// Complements the value, staying compressed when possible. A
    /// complement can change the stored size dramatically (a sparse
    /// Roaring array becomes near-full bitmap containers), so the result
    /// goes through the same [`DomainCostModel`] demotion check as
    /// [`NodeVal::combine`].
    pub(crate) fn not(
        &self,
        domain: EvalDomain,
        model: &DomainCostModel,
        decompressions: &mut usize,
    ) -> NodeVal {
        if let NodeVal::Packed(c, _) = self {
            if let Some(neg) = c.not_op() {
                // The complemented stream is the proxy for the operands
                // the result will meet (same codec, same density regime):
                // demoting here would force them through a decode apiece.
                let operand = Some((c.stored_size(), c.raw_size()));
                return NodeVal::settle(neg, domain, model, operand, decompressions);
            }
        }
        NodeVal::Raw(self.to_raw(decompressions).not())
    }

    /// Combines two values under `op`. Two compressed streams combine in
    /// the compressed domain; mixed or unsupported pairs decode and fold
    /// word-wise. Under [`EvalDomain::Auto`] a compressed result whose
    /// future ops the [`DomainCostModel`] prices higher than a decode
    /// plus word loops is decoded eagerly — the per-node adaptive choice.
    pub(crate) fn combine(
        self,
        other: &NodeVal,
        op: BitOp,
        domain: EvalDomain,
        model: &DomainCostModel,
        decompressions: &mut usize,
    ) -> NodeVal {
        if let (NodeVal::Packed(a, _), NodeVal::Packed(b, _)) = (&self, other) {
            if let Some(c) = a.binary_op(b, op) {
                let operand = Some((b.stored_size(), b.raw_size()));
                return NodeVal::settle(c, domain, model, operand, decompressions);
            }
        }
        let mut acc = self.into_raw(decompressions);
        match other {
            NodeVal::Raw(bv) => apply_assign(&mut acc, op, bv),
            NodeVal::Packed(c, cell) => {
                apply_assign(&mut acc, op, decode_cached(c, cell, decompressions));
            }
        }
        NodeVal::Raw(acc)
    }
}

/// Greedy nearest-neighbour ordering: start from the constituent with the
/// most leaves shared with any other, then repeatedly append the
/// unvisited constituent sharing the most leaves with the previous one.
fn schedule(constituents: &[Expr]) -> Vec<usize> {
    let leaves: Vec<std::collections::BTreeSet<BitmapRef>> =
        constituents.iter().map(Expr::leaves).collect();
    let overlap = |a: usize, b: usize| leaves[a].intersection(&leaves[b]).count();

    let n = constituents.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut visited = vec![false; n];
    // Seed: the pair with maximum overlap (ties fall back to input order).
    // `max_by_key` keeps the *last* maximal element, so pair it with
    // `Reverse(index)` to make ties resolve to the earliest constituent.
    let mut current = (0..n)
        .max_by_key(|&i| {
            let best = (0..n).filter(|&j| j != i).map(|j| overlap(i, j)).max();
            (best, std::cmp::Reverse(i))
        })
        .unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    loop {
        visited[current] = true;
        order.push(current);
        match (0..n)
            .filter(|&j| !visited[j])
            .max_by_key(|&j| (overlap(current, j), std::cmp::Reverse(j)))
        {
            Some(next) => current = next,
            None => break,
        }
    }
    order
}

/// The outcome of one query evaluation, with the paper's cost metrics.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The matching records.
    pub bitmap: Bitvec,
    /// Bitmap reads issued against the store (rescans included).
    pub scans: usize,
    /// Distinct bitmaps referenced by the expression.
    pub distinct_bitmaps: usize,
    /// Disk activity attributable to this evaluation.
    pub io: IoStats,
    /// Simulated disk time (cost model over `io`), seconds.
    pub io_seconds: f64,
    /// Measured CPU time (bitwise ops + decompression), seconds.
    pub cpu_seconds: f64,
    /// Compressed streams decoded to raw bitmaps during this evaluation
    /// (reads of [`bix_compress::CodecKind::Raw`] bitmaps are not
    /// decompressions). Compressed-domain folding drives this toward one
    /// decode — at the root — per query.
    pub decompressions: usize,
    /// Peak number of bitmaps resident in working memory at once
    /// (loaded leaves plus live intermediate results). Meaningfully small
    /// only for [`EvalStrategy::ComponentStreaming`]; the cache-everything
    /// strategies report their full cache size.
    pub peak_resident: usize,
    /// DAG-fold nodes whose value ended up as a decoded (raw) bitmap.
    /// Tracked by the [`EvalStrategy::ComponentWise`] fold and the
    /// parallel executor; the non-DAG strategies report zero. Together
    /// with [`EvalResult::nodes_compressed`] this is the operator-level
    /// compressed-vs-raw evaluation mix.
    pub nodes_raw: usize,
    /// DAG-fold nodes whose value stayed a compressed stream.
    pub nodes_compressed: usize,
    /// In-memory delta tails folded for this query (`main ∪ delta`
    /// evaluation); zero when the query ran against the main index alone.
    /// Delta reads never touch the store, so they are counted apart from
    /// [`EvalResult::scans`].
    pub delta_scans: usize,
    /// Rows of [`EvalResult::bitmap`] contributed by the delta tail
    /// (always the trailing rows).
    pub delta_rows: usize,
}

impl EvalResult {
    /// Simulated total processing time: disk + CPU, the paper's
    /// time-efficiency metric.
    pub fn total_seconds(&self) -> f64 {
        self.io_seconds + self.cpu_seconds
    }
}

/// Evaluates constituent expressions against stored bitmaps.
///
/// `handles` maps a [`BitmapRef`] to its stored bitmap; `rows` is the
/// relation cardinality. Constituents are OR-ed together (a membership
/// query is a disjunction of its interval constituents); pass a single
/// constituent for a plain interval query.
pub fn evaluate(
    constituents: &[Expr],
    rows: usize,
    handles: &dyn Fn(BitmapRef) -> BitmapHandle,
    store: &mut BitmapStore,
    pool: &mut BufferPool,
    strategy: EvalStrategy,
    cost: &CostModel,
) -> EvalResult {
    evaluate_traced(
        constituents,
        rows,
        handles,
        store,
        pool,
        strategy,
        cost,
        &Tracer::disabled(),
        None,
    )
}

/// [`evaluate`] with span tracing: opens an `eval` span under `parent`
/// with `fetch` / `fold` / `stream` / `constituent` children and
/// per-bitmap `read` spans. A disabled tracer makes this identical to
/// [`evaluate`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_traced(
    constituents: &[Expr],
    rows: usize,
    handles: &dyn Fn(BitmapRef) -> BitmapHandle,
    store: &mut BitmapStore,
    pool: &mut BufferPool,
    strategy: EvalStrategy,
    cost: &CostModel,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> EvalResult {
    evaluate_domain_traced(
        constituents,
        rows,
        handles,
        store,
        pool,
        strategy,
        EvalDomain::default(),
        &DomainCostModel::DEFAULT,
        cost,
        tracer,
        parent,
    )
}

/// [`evaluate_traced`] with an explicit [`EvalDomain`] and the
/// [`DomainCostModel`] that prices [`EvalDomain::Auto`]'s per-node
/// packed-vs-raw choice. The domain applies to the
/// [`EvalStrategy::ComponentWise`] DAG fold; the query-wise and
/// streaming strategies always fold raw bitmaps (their per-constituent
/// structure re-reads shared bitmaps, so stream-level ops buy nothing).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_domain_traced(
    constituents: &[Expr],
    rows: usize,
    handles: &dyn Fn(BitmapRef) -> BitmapHandle,
    store: &mut BitmapStore,
    pool: &mut BufferPool,
    strategy: EvalStrategy,
    domain: EvalDomain,
    model: &DomainCostModel,
    cost: &CostModel,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> EvalResult {
    let before_io = store.stats();
    let started = Instant::now();
    let eval_span = tracer.span("eval", parent);
    let eval_id = eval_span.id();

    let merged = Expr::or(constituents.iter().cloned());
    let distinct = merged.scan_count();
    let mut scans = 0usize;
    let mut peak_resident = 0usize;
    let mut decompressions = 0usize;
    let mut node_mix = (0usize, 0usize);

    let bitmap = match strategy {
        EvalStrategy::ComponentStreaming => {
            let stream = tracer.span("stream", eval_id);
            let (result, peak, n_scans, n_dec) =
                evaluate_streaming(&merged, rows, handles, store, pool);
            scans = n_scans;
            peak_resident = peak;
            decompressions = n_dec;
            stream.attr("scans", n_scans);
            stream.attr("peak_resident", peak);
            result
        }
        EvalStrategy::ComponentWise => {
            // Fetch every distinct bitmap once, in component order —
            // compressed streams stay compressed when the domain says so —
            // then fold the hash-consed DAG from the cache.
            let fetch_span = tracer.span("fetch", eval_id);
            let fetch_id = fetch_span.id();
            let mut cache: BTreeMap<BitmapRef, NodeVal> = BTreeMap::new();
            for r in merged.leaves() {
                let handle = handles(r);
                let read_span = if tracer.is_enabled() {
                    let before = store.stats();
                    Some((
                        tracer.span(&format!("read c{}:{}", r.component, r.slot), fetch_id),
                        before,
                    ))
                } else {
                    None
                };
                let val = if reads_compressed(domain, handle, store.stored_size(handle), model) {
                    let c = store.read_compressed(handle, pool).unwrap_or_else(|e| {
                        panic!("corrupt bitmap on an unguarded read path: {e}")
                    });
                    NodeVal::packed(c)
                } else {
                    decompressions += usize::from(handle.codec() != CodecKind::Raw);
                    NodeVal::Raw(store.read(handle, pool))
                };
                if let Some((span, before)) = read_span {
                    let d = store.stats().since(&before);
                    span.attr("pages", d.pages_read);
                    span.attr("pool_hits", d.pool_hits);
                    span.attr("bytes", d.bytes_read);
                    span.attr("domain", val.domain_name());
                }
                scans += 1;
                cache.insert(r, val);
            }
            fetch_span.attr("scans", scans);
            fetch_span.finish();
            peak_resident = cache.len() + 1;
            let fold_span = tracer.span("fold", eval_id);
            let result = fold_cache(
                &merged,
                rows,
                cache,
                domain,
                model,
                &mut decompressions,
                &mut node_mix,
                tracer,
                fold_span.id(),
            );
            fold_span.finish();
            result
        }
        EvalStrategy::QueryWise | EvalStrategy::QueryWiseScheduled => {
            // One constituent at a time; each constituent re-fetches its
            // own leaves (the pool may or may not still hold them).
            let order: Vec<usize> = match strategy {
                EvalStrategy::QueryWiseScheduled => schedule(constituents),
                _ => (0..constituents.len()).collect(),
            };
            let mut acc = Bitvec::zeros(rows);
            let mut any = false;
            for &ci in &order {
                let expr = &constituents[ci];
                let c_span = if tracer.is_enabled() {
                    Some(tracer.span(&format!("constituent {ci}"), eval_id))
                } else {
                    None
                };
                let before_scans = scans;
                let mut fetch = |r: BitmapRef| {
                    scans += 1;
                    let handle = handles(r);
                    decompressions += usize::from(handle.codec() != CodecKind::Raw);
                    store.read(handle, pool)
                };
                let result = expr.evaluate(rows, &mut fetch);
                if let Some(span) = c_span {
                    span.attr("scans", scans - before_scans);
                }
                if any {
                    acc.or_assign(&result);
                } else {
                    acc = result;
                    any = true;
                }
            }
            if constituents.is_empty() {
                Bitvec::zeros(rows)
            } else {
                acc
            }
        }
    };

    let cpu_seconds = cost.cpu_seconds(started.elapsed().as_secs_f64());
    let io = store.stats().since(&before_io);
    eval_span.attr("scans", scans);
    eval_span.attr("distinct", distinct);
    eval_span.attr("pages", io.pages_read);
    eval_span.attr("decompressions", decompressions);
    EvalResult {
        bitmap,
        scans,
        distinct_bitmaps: distinct,
        io,
        io_seconds: cost.io_seconds(&io),
        cpu_seconds,
        decompressions,
        peak_resident,
        nodes_raw: node_mix.0,
        nodes_compressed: node_mix.1,
        delta_scans: 0,
        delta_rows: 0,
    }
}

/// Folds the hash-consed DAG of `merged` over the fetched leaf values,
/// combining compressed streams in the compressed domain and decoding
/// (once, at the root, in the best case) where the domain or codec
/// requires. Emits a per-node span recording which representation each
/// node's value ended up in.
#[allow(clippy::too_many_arguments)]
/// Model-predicted nanoseconds for one pairwise combine — the number
/// `bix explain` puts next to each node's measured time. Same-codec
/// packed pairs are priced as one kernel pass over the larger stream;
/// anything else decodes its packed operands and folds word-wise.
fn predict_combine_ns(lhs: &NodeVal, rhs: &NodeVal, model: &DomainCostModel) -> f64 {
    match (lhs, rhs) {
        (NodeVal::Packed(a, _), NodeVal::Packed(b, _)) if a.kind() == b.kind() => {
            model.packed_op_ns(a.kind(), a.stored_size().max(b.stored_size()))
        }
        _ => {
            let decode = |v: &NodeVal| match v {
                NodeVal::Packed(c, _) => model.costs(c.kind()).map_or(0.0, |s| {
                    s.decode_slope(c.stored_size(), c.raw_size()) * c.raw_size() as f64
                }),
                NodeVal::Raw(_) => 0.0,
            };
            let raw_bytes = match lhs {
                NodeVal::Raw(bv) => bv.byte_size(),
                NodeVal::Packed(c, _) => c.raw_size(),
            };
            decode(lhs) + decode(rhs) + model.word_ns_per_byte * raw_bytes as f64
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fold_cache(
    merged: &Expr,
    rows: usize,
    mut cache: BTreeMap<BitmapRef, NodeVal>,
    domain: EvalDomain,
    model: &DomainCostModel,
    decompressions: &mut usize,
    node_mix: &mut (usize, usize),
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Bitvec {
    let dag = Dag::build(merged);
    let mut values: Vec<Option<NodeVal>> = Vec::with_capacity(dag.ops.len());
    let child = |values: &[Option<NodeVal>], c: usize| -> NodeVal {
        values[c].clone().expect("child computed")
    };
    for (i, op) in dag.ops.iter().enumerate() {
        // Open the node span before doing the work so its duration is
        // the measured per-node cost `bix explain` compares against the
        // model's prediction.
        let node_span = if tracer.is_enabled() {
            let kind = match op {
                NodeOp::Const(_) => "const",
                NodeOp::Leaf(_) => "leaf",
                NodeOp::Not(_) => "not",
                NodeOp::And(_) => "and",
                NodeOp::Or(_) => "or",
                NodeOp::Xor(..) => "xor",
            };
            Some(tracer.span(&format!("node {i} {kind}"), parent))
        } else {
            None
        };
        // Sum of model predictions for the work this node performs
        // (tracing only; stays 0.0 on the untraced hot path).
        let mut predicted_ns = 0.0f64;
        let value = match op {
            NodeOp::Const(true) => NodeVal::Raw(Bitvec::ones_vec(rows)),
            NodeOp::Const(false) => NodeVal::Raw(Bitvec::zeros(rows)),
            NodeOp::Leaf(r) => cache.remove(r).expect("leaf fetched"),
            NodeOp::Not(c) => {
                let operand = values[*c].as_ref().expect("child computed");
                if tracer.is_enabled() {
                    predicted_ns = match operand {
                        NodeVal::Packed(p, _) => model.packed_op_ns(p.kind(), p.stored_size()),
                        NodeVal::Raw(bv) => model.word_ns_per_byte * bv.byte_size() as f64,
                    };
                }
                operand.not(domain, model, decompressions)
            }
            NodeOp::And(cs) | NodeOp::Or(cs) => {
                let bit_op = if matches!(op, NodeOp::And(_)) {
                    BitOp::And
                } else {
                    BitOp::Or
                };
                let mut acc = child(&values, cs[0]);
                for &c in &cs[1..] {
                    let rhs = values[c].as_ref().expect("child computed");
                    if tracer.is_enabled() {
                        predicted_ns += predict_combine_ns(&acc, rhs, model);
                    }
                    acc = acc.combine(rhs, bit_op, domain, model, decompressions);
                }
                acc
            }
            NodeOp::Xor(a, b) => {
                let lhs = child(&values, *a);
                let rhs = values[*b].as_ref().expect("child computed");
                if tracer.is_enabled() {
                    predicted_ns = predict_combine_ns(&lhs, rhs, model);
                }
                lhs.combine(rhs, BitOp::Xor, domain, model, decompressions)
            }
        };
        match &value {
            NodeVal::Raw(_) => node_mix.0 += 1,
            NodeVal::Packed(..) => node_mix.1 += 1,
        }
        if let Some(span) = &node_span {
            span.attr("domain", value.domain_name());
            span.attr("predicted_ns", predicted_ns.round() as u64);
        }
        drop(node_span);
        values.push(Some(value));
    }
    values[dag.root]
        .take()
        .expect("root computed")
        .into_raw(decompressions)
}

/// One operation of the hash-consed expression DAG (children are node
/// indexes, always smaller than the node's own index).
#[derive(Clone)]
pub(crate) enum NodeOp {
    /// All-ones (`true`) or all-zeros (`false`).
    Const(bool),
    /// A stored bitmap.
    Leaf(BitmapRef),
    /// Complement of one node.
    Not(usize),
    /// Conjunction of two or more nodes.
    And(Vec<usize>),
    /// Disjunction of two or more nodes.
    Or(Vec<usize>),
    /// Symmetric difference of two nodes.
    Xor(usize, usize),
}

impl NodeOp {
    /// Child node indexes of this operation.
    pub(crate) fn children(&self) -> Vec<usize> {
        match self {
            NodeOp::Const(_) | NodeOp::Leaf(_) => Vec::new(),
            NodeOp::Not(c) => vec![*c],
            NodeOp::And(cs) | NodeOp::Or(cs) => cs.clone(),
            NodeOp::Xor(a, b) => vec![*a, *b],
        }
    }
}

/// The hash-consed form of a merged query expression, shared by the
/// streaming evaluator below and the parallel DAG evaluator
/// (`crate::parallel`). Nodes are unique (identical subexpressions intern
/// to one node, so each distinct bitmap has exactly one `Leaf`) and stored
/// in topological postorder: every child index precedes its parents.
pub(crate) struct Dag {
    /// The operations, child-before-parent.
    pub(crate) ops: Vec<NodeOp>,
    /// Component phase of each node (0 = constants; leaves run in phase
    /// `component + 1`; interior nodes in their deepest child's phase).
    pub(crate) phase_of: Vec<usize>,
    /// Consumer counts per node, including one final consumer on `root` —
    /// a value may be freed when its count drains to zero.
    pub(crate) refs: Vec<usize>,
    /// Index of the root node.
    pub(crate) root: usize,
}

impl Dag {
    /// Hash-conses `merged` into unique nodes in topological order.
    pub(crate) fn build(merged: &Expr) -> Dag {
        use std::collections::HashMap;

        let mut index_of: HashMap<&Expr, usize> = HashMap::new();
        let mut ops: Vec<NodeOp> = Vec::new();
        let mut phase_of: Vec<usize> = Vec::new();

        fn intern<'e>(
            e: &'e Expr,
            index_of: &mut std::collections::HashMap<&'e Expr, usize>,
            ops: &mut Vec<NodeOp>,
            phase_of: &mut Vec<usize>,
        ) -> usize {
            if let Some(&i) = index_of.get(e) {
                return i;
            }
            let (op, phase) = match e {
                Expr::True => (NodeOp::Const(true), 0),
                Expr::False => (NodeOp::Const(false), 0),
                Expr::Leaf(r) => (NodeOp::Leaf(*r), r.component + 1),
                Expr::Not(inner) => {
                    let c = intern(inner, index_of, ops, phase_of);
                    (NodeOp::Not(c), phase_of[c])
                }
                Expr::And(children) => {
                    let cs: Vec<usize> = children
                        .iter()
                        .map(|c| intern(c, index_of, ops, phase_of))
                        .collect();
                    let phase = cs.iter().map(|&c| phase_of[c]).max().unwrap_or(0);
                    (NodeOp::And(cs), phase)
                }
                Expr::Or(children) => {
                    let cs: Vec<usize> = children
                        .iter()
                        .map(|c| intern(c, index_of, ops, phase_of))
                        .collect();
                    let phase = cs.iter().map(|&c| phase_of[c]).max().unwrap_or(0);
                    (NodeOp::Or(cs), phase)
                }
                Expr::Xor(a, b) => {
                    let ca = intern(a, index_of, ops, phase_of);
                    let cb = intern(b, index_of, ops, phase_of);
                    (NodeOp::Xor(ca, cb), phase_of[ca].max(phase_of[cb]))
                }
            };
            ops.push(op);
            phase_of.push(phase);
            let i = ops.len() - 1;
            index_of.insert(e, i);
            i
        }
        let root = intern(merged, &mut index_of, &mut ops, &mut phase_of);

        // Reference counts (how many consumers each node has).
        let mut refs = vec![0usize; ops.len()];
        for op in &ops {
            for c in op.children() {
                refs[c] += 1;
            }
        }
        refs[root] += 1; // the final consumer

        Dag {
            ops,
            phase_of,
            refs,
            root,
        }
    }
}

/// The §6.3 streaming component-wise pass: a dataflow schedule over the
/// expression DAG. Unique subexpressions are computed in component phases
/// (a node runs in the phase of its highest-component leaf), leaf bitmaps
/// are loaded only during their component's phase, and every value —
/// leaf or intermediate — is freed as soon as its last consumer has run.
/// Returns `(result, peak_resident, scans, decompressions)`.
fn evaluate_streaming(
    merged: &Expr,
    rows: usize,
    handles: &dyn Fn(BitmapRef) -> BitmapHandle,
    store: &mut BitmapStore,
    pool: &mut BufferPool,
) -> (Bitvec, usize, usize, usize) {
    let Dag {
        ops,
        phase_of,
        mut refs,
        root,
    } = Dag::build(merged);

    // Phase-ordered execution. Nodes are already topologically ordered
    // within `ops` (postorder), so a stable sort by phase preserves
    // child-before-parent within each phase.
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| phase_of[i]);

    let mut results: Vec<Option<Bitvec>> = vec![None; ops.len()];
    let mut resident = 0usize;
    let mut peak = 0usize;
    let mut scans = 0usize;
    let mut decompressions = 0usize;

    for &i in &order {
        let value = match &ops[i] {
            NodeOp::Const(true) => Bitvec::ones_vec(rows),
            NodeOp::Const(false) => Bitvec::zeros(rows),
            NodeOp::Leaf(r) => {
                scans += 1;
                let handle = handles(*r);
                decompressions += usize::from(handle.codec() != CodecKind::Raw);
                store.read(handle, pool)
            }
            NodeOp::Not(c) => results[*c].as_ref().expect("child computed").not(),
            NodeOp::And(cs) => {
                let mut acc = results[cs[0]].as_ref().expect("child computed").clone();
                for &c in &cs[1..] {
                    acc.and_assign(results[c].as_ref().expect("child computed"));
                }
                acc
            }
            NodeOp::Or(cs) => {
                let mut acc = results[cs[0]].as_ref().expect("child computed").clone();
                for &c in &cs[1..] {
                    acc.or_assign(results[c].as_ref().expect("child computed"));
                }
                acc
            }
            NodeOp::Xor(a, b) => {
                let mut acc = results[*a].as_ref().expect("child computed").clone();
                acc.xor_assign(results[*b].as_ref().expect("child computed"));
                acc
            }
        };
        results[i] = Some(value);
        resident += 1;
        peak = peak.max(resident);
        // Release children whose last consumer just ran.
        for c in ops[i].children() {
            refs[c] -= 1;
            if refs[c] == 0 && results[c].is_some() {
                results[c] = None;
                resident -= 1;
            }
        }
    }

    let result = results[root].take().expect("root computed");
    (result, peak, scans, decompressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bix_compress::CodecKind;
    use bix_storage::DiskConfig;

    #[test]
    fn eval_domain_cost_model_calibrates_to_finite_slopes() {
        let m = DomainCostModel::calibrate();
        eprintln!("calibrated: {m:#?}");
        for c in [
            CodecKind::Bbc,
            CodecKind::Wah,
            CodecKind::Ewah,
            CodecKind::Roaring,
        ] {
            let s = m.costs(c).expect("kernel-capable codec has slopes");
            assert!(
                s.decode_ns_per_raw_byte > 0.0 && s.decode_ns_per_raw_byte.is_finite(),
                "{c:?} decode slope"
            );
            assert!(
                s.decode_sparse_ns_per_raw_byte > 0.0
                    && s.decode_sparse_ns_per_raw_byte.is_finite(),
                "{c:?} sparse decode slope"
            );
            assert!(
                s.kernel_ns_per_stored_byte > 0.0 && s.kernel_ns_per_stored_byte.is_finite(),
                "{c:?} kernel slope"
            );
        }
        assert!(m.word_ns_per_byte > 0.0 && m.word_ns_per_byte.is_finite());
        assert!(m.costs(CodecKind::Raw).is_none(), "raw never packs");
        // An empty stream is always worth keeping packed; a huge stream
        // over a tiny image never is.
        assert!(m.prefer_packed(CodecKind::Ewah, 0, 1 << 20));
        assert!(!m.prefer_packed(CodecKind::Ewah, 1 << 30, 8));
    }

    /// A toy store with 4 bitmaps over 100 rows.
    fn setup() -> (BitmapStore, Vec<BitmapHandle>, Vec<Bitvec>) {
        let mut store = BitmapStore::new(DiskConfig { page_size: 64 });
        let rows = 100usize;
        let bitmaps: Vec<Bitvec> = (0..4)
            .map(|k| {
                let positions: Vec<usize> = (0..rows).filter(|i| i % (k + 2) == 0).collect();
                Bitvec::from_positions(rows, &positions)
            })
            .collect();
        let handles = bitmaps
            .iter()
            .enumerate()
            .map(|(k, bv)| store.put(&format!("b{k}"), CodecKind::Raw, bv))
            .collect();
        (store, handles, bitmaps)
    }

    #[test]
    fn component_wise_scans_each_distinct_bitmap_once() {
        let (mut store, handles, bitmaps) = setup();
        let mut pool = BufferPool::new(64);
        // Expression referencing bitmap 0 twice and bitmap 1 once.
        let e = Expr::or([
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 1)]),
            Expr::and([Expr::leaf(0, 0), Expr::not(Expr::leaf(0, 1))]),
        ]);
        let result = evaluate(
            &[e],
            100,
            &|r| handles[r.slot],
            &mut store,
            &mut pool,
            EvalStrategy::ComponentWise,
            &CostModel::default(),
        );
        assert_eq!(result.scans, 2);
        assert_eq!(result.distinct_bitmaps, 2);
        // (b0 ∧ b1) ∨ (b0 ∧ ¬b1) = b0.
        assert_eq!(result.bitmap, bitmaps[0]);
        assert!(result.io_seconds > 0.0);
    }

    #[test]
    fn query_wise_rescans_shared_bitmaps() {
        let (mut store, handles, bitmaps) = setup();
        let mut pool = BufferPool::new(64);
        let constituents = vec![
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 1)]),
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 2)]),
        ];
        let result = evaluate(
            &constituents,
            100,
            &|r| handles[r.slot],
            &mut store,
            &mut pool,
            EvalStrategy::QueryWise,
            &CostModel::default(),
        );
        // Bitmap 0 fetched by both constituents: 4 store reads, 3 distinct.
        assert_eq!(result.scans, 4);
        assert_eq!(result.distinct_bitmaps, 3);
        let expect = bitmaps[0].and(&bitmaps[1]).or(&bitmaps[0].and(&bitmaps[2]));
        assert_eq!(result.bitmap, expect);
    }

    #[test]
    fn schedule_groups_sharing_constituents() {
        // Constituents 0 and 2 share leaves; the schedule must make them
        // adjacent so the pool can serve the second from cache.
        let constituents = vec![
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 1)]),
            Expr::leaf(0, 7),
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 2)]),
        ];
        let order = schedule(&constituents);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert_eq!(pos(0).abs_diff(pos(2)), 1, "sharing pair split: {order:?}");
    }

    #[test]
    fn schedule_breaks_ties_in_input_order() {
        // All constituents are disjoint, so every overlap is 0 and every
        // choice is a tie. The documented fallback is input order; the old
        // `max_by_key` kept the *last* maximal element and started at the
        // back.
        let constituents: Vec<Expr> = (0..5).map(|s| Expr::leaf(0, s)).collect();
        assert_eq!(schedule(&constituents), vec![0, 1, 2, 3, 4]);

        // Two equally-good seeds (0∼1 and 2∼3 overlap pairwise): the seed
        // must be constituent 0, not the last maximal candidate.
        let paired = vec![
            Expr::and([Expr::leaf(0, 0), Expr::leaf(0, 1)]),
            Expr::leaf(0, 0),
            Expr::and([Expr::leaf(0, 2), Expr::leaf(0, 3)]),
            Expr::leaf(0, 2),
        ];
        let order = schedule(&paired);
        assert_eq!(order[0], 0, "seed must be the first maximal constituent");
        assert_eq!(order[1], 1, "nearest neighbour ties break low-index first");
    }

    #[test]
    fn schedule_is_a_permutation() {
        let constituents: Vec<Expr> = (0..6).map(|s| Expr::leaf(0, s)).collect();
        let mut order = schedule(&constituents);
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
        assert!(schedule(&[]).is_empty());
        assert_eq!(schedule(&constituents[..1]), vec![0]);
    }

    #[test]
    fn strategies_agree_on_results() {
        let (mut store, handles, _) = setup();
        let constituents = vec![
            Expr::xor(Expr::leaf(0, 0), Expr::leaf(0, 3)),
            Expr::not(Expr::leaf(0, 2)),
        ];
        let mut results = Vec::new();
        for strategy in [
            EvalStrategy::ComponentWise,
            EvalStrategy::QueryWise,
            EvalStrategy::QueryWiseScheduled,
        ] {
            let mut pool = BufferPool::new(64);
            store.reset_stats();
            results.push(
                evaluate(
                    &constituents,
                    100,
                    &|r| handles[r.slot],
                    &mut store,
                    &mut pool,
                    strategy,
                    &CostModel::default(),
                )
                .bitmap,
            );
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn empty_constituents_yield_empty_bitmap() {
        let (mut store, handles, _) = setup();
        for strategy in [EvalStrategy::ComponentWise, EvalStrategy::QueryWise] {
            let mut pool = BufferPool::new(8);
            let result = evaluate(
                &[],
                100,
                &|r| handles[r.slot],
                &mut store,
                &mut pool,
                strategy,
                &CostModel::default(),
            );
            assert!(result.bitmap.is_all_zero());
            assert_eq!(result.scans, 0);
        }
    }

    #[test]
    fn warm_pool_reduces_io_but_not_scans() {
        let (mut store, handles, _) = setup();
        let mut pool = BufferPool::new(64);
        let e = vec![Expr::leaf(0, 0)];
        let cold = evaluate(
            &e,
            100,
            &|r| handles[r.slot],
            &mut store,
            &mut pool,
            EvalStrategy::ComponentWise,
            &CostModel::default(),
        );
        let warm = evaluate(
            &e,
            100,
            &|r| handles[r.slot],
            &mut store,
            &mut pool,
            EvalStrategy::ComponentWise,
            &CostModel::default(),
        );
        assert_eq!(cold.scans, warm.scans);
        assert!(warm.io.pages_read < cold.io.pages_read.max(1));
        assert!(warm.io_seconds < cold.io_seconds);
    }
}
