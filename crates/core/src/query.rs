//! The query model: interval and membership selection queries.

use std::fmt;

/// Upper bound on the number of values a parsed membership predicate may
/// carry. Parsed predicates can arrive over the network (`bix-server`),
/// so the parser bounds the work a single request can demand; the limit
/// is far above anything the minimal-interval rewrite produces useful
/// plans for.
pub const MAX_MEMBERSHIP_VALUES: usize = 65_536;

/// A typed [`Query::parse`] failure.
///
/// Predicates reach the parser from untrusted network clients, so every
/// malformed input must map to a variant here — the parser never panics,
/// whatever the byte string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The predicate was empty (or only negations of nothing).
    Empty,
    /// A numeric token did not parse as `u64`.
    BadNumber {
        /// The offending token (possibly truncated for display).
        token: String,
    },
    /// A value or bound falls outside the index domain `0..cardinality`.
    OutOfDomain {
        /// The out-of-range value.
        value: u64,
        /// The domain cardinality it was checked against.
        cardinality: u64,
    },
    /// A range predicate with `lo > hi`.
    EmptyRange {
        /// Lower bound as written.
        lo: u64,
        /// Upper bound as written.
        hi: u64,
    },
    /// `in:` with no values.
    EmptyValueList,
    /// `in:` with more than [`MAX_MEMBERSHIP_VALUES`] values.
    TooManyValues {
        /// How many values the predicate carried.
        got: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// The predicate matched no rule of the grammar.
    UnknownSyntax {
        /// The unrecognized input (possibly truncated for display).
        input: String,
    },
}

/// Clips a token for error messages so hostile input cannot echo
/// megabytes back at the caller.
fn clip(s: &str) -> String {
    const MAX: usize = 48;
    if s.len() <= MAX {
        s.to_owned()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty predicate"),
            ParseError::BadNumber { token } => write!(f, "bad number {token:?}"),
            ParseError::OutOfDomain { value, cardinality } => {
                write!(f, "value {value} outside domain 0..{cardinality}")
            }
            ParseError::EmptyRange { lo, hi } => write!(f, "empty range {lo}..{hi}"),
            ParseError::EmptyValueList => write!(f, "in: needs at least one value"),
            ParseError::TooManyValues { got, cap } => {
                write!(f, "membership list has {got} values (cap {cap})")
            }
            ParseError::UnknownSyntax { input } => write!(
                f,
                "cannot parse predicate {input:?} (use =v, <=v, >=v, lo..hi, in:a,b,c, !pred)"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// A selection query over one attribute with domain `0..C`.
///
/// The paper's taxonomy (§1): an *interval query* is `x <= A <= y` or its
/// negation; a *membership query* is `A IN {v1, …, vk}`. Equality and
/// one-/two-sided range queries are special cases of interval queries, and
/// every membership query is a disjunction of a minimal set of interval
/// queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// `lo <= A <= hi` (inclusive both ends).
    Interval {
        /// Lower bound, inclusive.
        lo: u64,
        /// Upper bound, inclusive.
        hi: u64,
    },
    /// `A IN {values}` — an arbitrary value set.
    Membership(Vec<u64>),
    /// `NOT (q)`.
    Not(Box<Query>),
}

/// The paper's query classes (§1): EQ, 1RQ, 2RQ, RQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// `A = v` (`x = y`).
    Equality,
    /// `A <= v` or `A >= v` (`x = 0` or `y = C−1`).
    OneSidedRange,
    /// `x <= A <= y` with `0 < x <= y < C−1`, `x < y`.
    TwoSidedRange,
    /// The whole domain (`x = 0` and `y = C−1`).
    All,
}

impl Query {
    /// `A = v`.
    pub fn equality(v: u64) -> Query {
        Query::Interval { lo: v, hi: v }
    }

    /// `lo <= A <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: u64, hi: u64) -> Query {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        Query::Interval { lo, hi }
    }

    /// `A <= v`.
    pub fn le(v: u64) -> Query {
        Query::Interval { lo: 0, hi: v }
    }

    /// `A >= v` over a domain of cardinality `c`.
    pub fn ge(v: u64, c: u64) -> Query {
        assert!(v < c, "bound {v} outside domain 0..{c}");
        Query::Interval { lo: v, hi: c - 1 }
    }

    /// `A IN {values}`.
    pub fn membership(values: impl Into<Vec<u64>>) -> Query {
        Query::Membership(values.into())
    }

    /// `NOT (self)`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        match self {
            Query::Not(inner) => *inner,
            other => Query::Not(Box::new(other)),
        }
    }

    /// Classifies an interval query `[lo, hi]` within domain `0..c`.
    pub fn classify_interval(lo: u64, hi: u64, c: u64) -> QueryClass {
        if lo == hi {
            QueryClass::Equality
        } else if lo == 0 && hi == c - 1 {
            QueryClass::All
        } else if lo == 0 || hi == c - 1 {
            QueryClass::OneSidedRange
        } else {
            QueryClass::TwoSidedRange
        }
    }

    /// Parses the compact predicate grammar used by the `bix` CLI:
    ///
    /// | Syntax | Meaning |
    /// |---|---|
    /// | `=v` | `A = v` |
    /// | `<=v` | `A <= v` |
    /// | `>=v` | `A >= v` |
    /// | `lo..hi` | `lo <= A <= hi` (inclusive) |
    /// | `in:a,b,c` | `A IN {a, b, c}` |
    /// | `!<pred>` | negation of any of the above |
    ///
    /// `cardinality` bounds every value and range endpoint: the parser is
    /// the trust boundary for predicates arriving over the network, so
    /// out-of-domain values are rejected here rather than clamped later.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ParseError`] for malformed input. The parser
    /// never panics, whatever the byte string — negation depth, numeric
    /// overflow, huge value lists, and out-of-domain bounds all map to
    /// error variants.
    pub fn parse(s: &str, cardinality: u64) -> Result<Query, ParseError> {
        // Peel `!` prefixes iteratively (not recursively): a predicate of
        // a million bangs must not overflow the stack. Double negations
        // cancel, so only parity matters.
        let mut s = s.trim();
        let mut negate = false;
        while let Some(rest) = s.strip_prefix('!') {
            negate = !negate;
            s = rest.trim_start();
        }
        let inner = Query::parse_atom(s, cardinality)?;
        Ok(if negate { inner.not() } else { inner })
    }

    /// Parses one predicate with any leading `!` already stripped.
    fn parse_atom(s: &str, cardinality: u64) -> Result<Query, ParseError> {
        let number = |token: &str| -> Result<u64, ParseError> {
            token.trim().parse().map_err(|_| ParseError::BadNumber {
                token: clip(token.trim()),
            })
        };
        let in_domain = |value: u64| -> Result<u64, ParseError> {
            if value < cardinality {
                Ok(value)
            } else {
                Err(ParseError::OutOfDomain { value, cardinality })
            }
        };
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        if let Some(v) = s.strip_prefix('=') {
            return Ok(Query::equality(in_domain(number(v)?)?));
        }
        if let Some(v) = s.strip_prefix("<=") {
            return Ok(Query::le(in_domain(number(v)?)?));
        }
        if let Some(v) = s.strip_prefix(">=") {
            return Ok(Query::ge(in_domain(number(v)?)?, cardinality));
        }
        if let Some(list) = s.strip_prefix("in:") {
            if list.trim().is_empty() {
                return Err(ParseError::EmptyValueList);
            }
            let mut values = Vec::new();
            for part in list.split(',') {
                values.push(in_domain(number(part)?)?);
                if values.len() > MAX_MEMBERSHIP_VALUES {
                    return Err(ParseError::TooManyValues {
                        got: 1 + list.matches(',').count(),
                        cap: MAX_MEMBERSHIP_VALUES,
                    });
                }
            }
            return Ok(Query::membership(values));
        }
        if let Some((lo, hi)) = s.split_once("..") {
            let lo = number(lo)?;
            let hi = number(hi)?;
            if lo > hi {
                return Err(ParseError::EmptyRange { lo, hi });
            }
            in_domain(lo)?;
            in_domain(hi)?;
            return Ok(Query::range(lo, hi));
        }
        Err(ParseError::UnknownSyntax { input: clip(s) })
    }

    /// True if row value `v` satisfies the query (reference semantics used
    /// by tests and brute-force cross-validation).
    pub fn matches(&self, v: u64) -> bool {
        match self {
            Query::Interval { lo, hi } => *lo <= v && v <= *hi,
            Query::Membership(values) => values.contains(&v),
            Query::Not(inner) => !inner.matches(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_intervals() {
        assert_eq!(Query::equality(5), Query::Interval { lo: 5, hi: 5 });
        assert_eq!(Query::range(2, 7), Query::Interval { lo: 2, hi: 7 });
        assert_eq!(Query::le(4), Query::Interval { lo: 0, hi: 4 });
        assert_eq!(Query::ge(4, 10), Query::Interval { lo: 4, hi: 9 });
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = Query::range(7, 2);
    }

    #[test]
    fn double_negation_cancels() {
        let q = Query::equality(3);
        assert_eq!(q.clone().not().not(), q);
    }

    #[test]
    fn classification_covers_all_cases() {
        let c = 10;
        assert_eq!(Query::classify_interval(4, 4, c), QueryClass::Equality);
        assert_eq!(Query::classify_interval(0, 0, c), QueryClass::Equality);
        assert_eq!(Query::classify_interval(0, 5, c), QueryClass::OneSidedRange);
        assert_eq!(Query::classify_interval(5, 9, c), QueryClass::OneSidedRange);
        assert_eq!(Query::classify_interval(2, 7, c), QueryClass::TwoSidedRange);
        assert_eq!(Query::classify_interval(0, 9, c), QueryClass::All);
    }

    #[test]
    fn parse_grammar_round_trips() {
        assert_eq!(Query::parse("=5", 10).unwrap(), Query::equality(5));
        assert_eq!(Query::parse("<= 7", 10).unwrap(), Query::le(7));
        assert_eq!(Query::parse(">=3", 10).unwrap(), Query::ge(3, 10));
        assert_eq!(Query::parse("2..8", 10).unwrap(), Query::range(2, 8));
        assert_eq!(
            Query::parse("in:1, 4,9", 10).unwrap(),
            Query::membership(vec![1, 4, 9])
        );
        assert_eq!(Query::parse("!2..8", 10).unwrap(), Query::range(2, 8).not());
        assert!(Query::parse("8..2", 10).is_err());
        assert!(Query::parse(">=10", 10).is_err());
        assert!(Query::parse("nonsense", 10).is_err());
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(
            Query::parse("8..2", 10),
            Err(ParseError::EmptyRange { lo: 8, hi: 2 })
        );
        assert_eq!(
            Query::parse(">=10", 10),
            Err(ParseError::OutOfDomain {
                value: 10,
                cardinality: 10
            })
        );
        assert_eq!(
            Query::parse("=12", 10),
            Err(ParseError::OutOfDomain {
                value: 12,
                cardinality: 10
            })
        );
        assert_eq!(
            Query::parse("<=99", 10),
            Err(ParseError::OutOfDomain {
                value: 99,
                cardinality: 10
            })
        );
        assert_eq!(
            Query::parse("in:1,99", 10),
            Err(ParseError::OutOfDomain {
                value: 99,
                cardinality: 10
            })
        );
        assert_eq!(Query::parse("", 10), Err(ParseError::Empty));
        assert_eq!(Query::parse("!", 10), Err(ParseError::Empty));
        assert_eq!(Query::parse("in:", 10), Err(ParseError::EmptyValueList));
        assert_eq!(
            Query::parse("=18446744073709551616", u64::MAX),
            Err(ParseError::BadNumber {
                token: "18446744073709551616".into()
            })
        );
        assert!(matches!(
            Query::parse("2..8abc", 10),
            Err(ParseError::BadNumber { .. })
        ));
        assert!(matches!(
            Query::parse("what even", 10),
            Err(ParseError::UnknownSyntax { .. })
        ));
        // Every variant renders a human-readable message.
        for bad in ["", "!", "8..2", ">=10", "in:", "zzz", "=x"] {
            let msg = Query::parse(bad, 10).unwrap_err().to_string();
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn deep_negation_does_not_recurse() {
        // A predicate of a million bangs must parse iteratively (parity)
        // instead of overflowing the stack one frame per `!`.
        let mut deep = "!".repeat(1_000_001);
        deep.push_str("=3");
        assert_eq!(Query::parse(&deep, 10).unwrap(), Query::equality(3).not());
        deep.insert(0, '!');
        assert_eq!(Query::parse(&deep, 10).unwrap(), Query::equality(3));
    }

    #[test]
    fn membership_list_is_capped() {
        let huge: Vec<String> = (0..=MAX_MEMBERSHIP_VALUES)
            .map(|_| "1".to_owned())
            .collect();
        let err = Query::parse(&format!("in:{}", huge.join(",")), 10).unwrap_err();
        assert!(matches!(err, ParseError::TooManyValues { .. }), "{err}");
    }

    #[test]
    fn parse_error_messages_clip_hostile_input() {
        let huge = format!("={}", "9".repeat(1 << 20));
        let msg = Query::parse(&huge, 10).unwrap_err().to_string();
        assert!(msg.len() < 256, "echoed {} bytes", msg.len());
    }

    #[test]
    fn matches_implements_reference_semantics() {
        let q = Query::membership(vec![1, 5, 6]);
        assert!(q.matches(5));
        assert!(!q.matches(4));
        let n = q.not();
        assert!(n.matches(4));
        assert!(!n.matches(5));
        let r = Query::range(3, 6);
        assert!(r.matches(3) && r.matches(6) && !r.matches(2) && !r.matches(7));
    }
}
