//! The query model: interval and membership selection queries.

/// A selection query over one attribute with domain `0..C`.
///
/// The paper's taxonomy (§1): an *interval query* is `x <= A <= y` or its
/// negation; a *membership query* is `A IN {v1, …, vk}`. Equality and
/// one-/two-sided range queries are special cases of interval queries, and
/// every membership query is a disjunction of a minimal set of interval
/// queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// `lo <= A <= hi` (inclusive both ends).
    Interval {
        /// Lower bound, inclusive.
        lo: u64,
        /// Upper bound, inclusive.
        hi: u64,
    },
    /// `A IN {values}` — an arbitrary value set.
    Membership(Vec<u64>),
    /// `NOT (q)`.
    Not(Box<Query>),
}

/// The paper's query classes (§1): EQ, 1RQ, 2RQ, RQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// `A = v` (`x = y`).
    Equality,
    /// `A <= v` or `A >= v` (`x = 0` or `y = C−1`).
    OneSidedRange,
    /// `x <= A <= y` with `0 < x <= y < C−1`, `x < y`.
    TwoSidedRange,
    /// The whole domain (`x = 0` and `y = C−1`).
    All,
}

impl Query {
    /// `A = v`.
    pub fn equality(v: u64) -> Query {
        Query::Interval { lo: v, hi: v }
    }

    /// `lo <= A <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: u64, hi: u64) -> Query {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        Query::Interval { lo, hi }
    }

    /// `A <= v`.
    pub fn le(v: u64) -> Query {
        Query::Interval { lo: 0, hi: v }
    }

    /// `A >= v` over a domain of cardinality `c`.
    pub fn ge(v: u64, c: u64) -> Query {
        assert!(v < c, "bound {v} outside domain 0..{c}");
        Query::Interval { lo: v, hi: c - 1 }
    }

    /// `A IN {values}`.
    pub fn membership(values: impl Into<Vec<u64>>) -> Query {
        Query::Membership(values.into())
    }

    /// `NOT (self)`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        match self {
            Query::Not(inner) => *inner,
            other => Query::Not(Box::new(other)),
        }
    }

    /// Classifies an interval query `[lo, hi]` within domain `0..c`.
    pub fn classify_interval(lo: u64, hi: u64, c: u64) -> QueryClass {
        if lo == hi {
            QueryClass::Equality
        } else if lo == 0 && hi == c - 1 {
            QueryClass::All
        } else if lo == 0 || hi == c - 1 {
            QueryClass::OneSidedRange
        } else {
            QueryClass::TwoSidedRange
        }
    }

    /// Parses the compact predicate grammar used by the `bix` CLI:
    ///
    /// | Syntax | Meaning |
    /// |---|---|
    /// | `=v` | `A = v` |
    /// | `<=v` | `A <= v` |
    /// | `>=v` | `A >= v` |
    /// | `lo..hi` | `lo <= A <= hi` (inclusive) |
    /// | `in:a,b,c` | `A IN {a, b, c}` |
    /// | `!<pred>` | negation of any of the above |
    ///
    /// `cardinality` bounds `>=` (and validates nothing else — evaluation
    /// validates bounds against the index domain).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input.
    pub fn parse(s: &str, cardinality: u64) -> Result<Query, String> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix('!') {
            return Ok(Query::parse(rest, cardinality)?.not());
        }
        if let Some(v) = s.strip_prefix('=') {
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad value in {s:?}"))?;
            return Ok(Query::equality(v));
        }
        if let Some(v) = s.strip_prefix("<=") {
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad bound in {s:?}"))?;
            return Ok(Query::le(v));
        }
        if let Some(v) = s.strip_prefix(">=") {
            let v: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad bound in {s:?}"))?;
            if v >= cardinality {
                return Err(format!("bound {v} outside domain 0..{cardinality}"));
            }
            return Ok(Query::ge(v, cardinality));
        }
        if let Some(list) = s.strip_prefix("in:") {
            let values: Result<Vec<u64>, _> = list.split(',').map(|p| p.trim().parse()).collect();
            return Ok(Query::membership(
                values.map_err(|_| format!("bad value list in {s:?}"))?,
            ));
        }
        if let Some((lo, hi)) = s.split_once("..") {
            let lo: u64 = lo
                .trim()
                .parse()
                .map_err(|_| format!("bad range in {s:?}"))?;
            let hi: u64 = hi
                .trim()
                .parse()
                .map_err(|_| format!("bad range in {s:?}"))?;
            if lo > hi {
                return Err(format!("empty range in {s:?}"));
            }
            return Ok(Query::range(lo, hi));
        }
        Err(format!(
            "cannot parse predicate {s:?} (use =v, <=v, >=v, lo..hi, in:a,b,c, !pred)"
        ))
    }

    /// True if row value `v` satisfies the query (reference semantics used
    /// by tests and brute-force cross-validation).
    pub fn matches(&self, v: u64) -> bool {
        match self {
            Query::Interval { lo, hi } => *lo <= v && v <= *hi,
            Query::Membership(values) => values.contains(&v),
            Query::Not(inner) => !inner.matches(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_intervals() {
        assert_eq!(Query::equality(5), Query::Interval { lo: 5, hi: 5 });
        assert_eq!(Query::range(2, 7), Query::Interval { lo: 2, hi: 7 });
        assert_eq!(Query::le(4), Query::Interval { lo: 0, hi: 4 });
        assert_eq!(Query::ge(4, 10), Query::Interval { lo: 4, hi: 9 });
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = Query::range(7, 2);
    }

    #[test]
    fn double_negation_cancels() {
        let q = Query::equality(3);
        assert_eq!(q.clone().not().not(), q);
    }

    #[test]
    fn classification_covers_all_cases() {
        let c = 10;
        assert_eq!(Query::classify_interval(4, 4, c), QueryClass::Equality);
        assert_eq!(Query::classify_interval(0, 0, c), QueryClass::Equality);
        assert_eq!(Query::classify_interval(0, 5, c), QueryClass::OneSidedRange);
        assert_eq!(Query::classify_interval(5, 9, c), QueryClass::OneSidedRange);
        assert_eq!(Query::classify_interval(2, 7, c), QueryClass::TwoSidedRange);
        assert_eq!(Query::classify_interval(0, 9, c), QueryClass::All);
    }

    #[test]
    fn parse_grammar_round_trips() {
        assert_eq!(Query::parse("=5", 10).unwrap(), Query::equality(5));
        assert_eq!(Query::parse("<= 7", 10).unwrap(), Query::le(7));
        assert_eq!(Query::parse(">=3", 10).unwrap(), Query::ge(3, 10));
        assert_eq!(Query::parse("2..8", 10).unwrap(), Query::range(2, 8));
        assert_eq!(
            Query::parse("in:1, 4,9", 10).unwrap(),
            Query::membership(vec![1, 4, 9])
        );
        assert_eq!(Query::parse("!2..8", 10).unwrap(), Query::range(2, 8).not());
        assert!(Query::parse("8..2", 10).is_err());
        assert!(Query::parse(">=10", 10).is_err());
        assert!(Query::parse("nonsense", 10).is_err());
    }

    #[test]
    fn matches_implements_reference_semantics() {
        let q = Query::membership(vec![1, 5, 6]);
        assert!(q.matches(5));
        assert!(!q.matches(4));
        let n = q.not();
        assert!(n.matches(4));
        assert!(!n.matches(5));
        let r = Query::range(3, 6);
        assert!(r.matches(3) && r.matches(6) && !r.matches(2) && !r.matches(7));
    }
}
