//! The query rewrite phase (§6.1-6.2).
//!
//! Three steps turn a query into a bitmap expression:
//!
//! 1. **Membership rewrite** — `A IN {…}` becomes a disjunction of a
//!    *minimal* number of interval queries ([`minimal_intervals`]).
//! 2. **Interval rewrite** — each interval query is decomposed into
//!    digit-level predicates over the index components: equality queries
//!    by Equation (7), one-sided ranges by Equation (8) with the
//!    encoding-dependent `α_k` choice, two-sided ranges as a common-prefix
//!    conjunction plus either a top-digit split (equality-friendly
//!    encodings) or a `GE ∧ LE` pair (range-friendly encodings).
//!    Trailing maximal digits are trimmed (`A <= 499` over base-<10,10,10>
//!    becomes `A_3 <= 4`), and trailing zero digits are trimmed from lower
//!    bounds symmetrically.
//! 3. **Predicate-level rewrite** — each digit predicate becomes the
//!    encoding's bitmap expression (Equations 1, 2, 4-6), via
//!    [`EncodingScheme::expr_eq`]/[`EncodingScheme::expr_le`]/
//!    [`EncodingScheme::expr_range`].

use crate::encoding::AlphaForm;
use crate::{BaseVector, EncodingScheme, Expr, Query};

/// Rewrites an arbitrary value set into the unique minimal sorted list of
/// disjoint, non-adjacent intervals (§5's example:
/// `{6,19,20,21,22,35}` → `[6,6], [19,22], [35,35]`).
pub fn minimal_intervals(values: &[u64]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for v in sorted {
        match out.last_mut() {
            Some((_, hi)) if *hi + 1 == v => *hi = v,
            _ => out.push((v, v)),
        }
    }
    out
}

/// Rewrites a full [`Query`] into a bitmap expression over the components
/// of an index with base vector `bases` and the given encoding.
///
/// # Panics
///
/// Panics if a query constant is `>= c`.
pub fn rewrite_query(q: &Query, c: u64, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    match q {
        Query::Interval { lo, hi } => rewrite_interval(*lo, *hi, c, bases, scheme),
        Query::Membership(values) => {
            let intervals = minimal_intervals(values);
            Expr::or(
                intervals
                    .into_iter()
                    .map(|(lo, hi)| rewrite_interval(lo, hi, c, bases, scheme)),
            )
        }
        Query::Not(inner) => Expr::not(rewrite_query(inner, c, bases, scheme)),
    }
}

/// Rewrites one interval query `lo <= A <= hi` (steps 2 + 3).
///
/// # Panics
///
/// Panics if `lo > hi` or `hi >= c`.
pub fn rewrite_interval(
    lo: u64,
    hi: u64,
    c: u64,
    bases: &BaseVector,
    scheme: EncodingScheme,
) -> Expr {
    assert!(lo <= hi, "empty interval [{lo}, {hi}]");
    assert!(hi < c, "interval bound {hi} outside domain 0..{c}");
    if lo == 0 && hi == c - 1 {
        return Expr::True;
    }
    if lo == hi {
        return rewrite_eq(lo, bases, scheme);
    }
    if lo == 0 {
        return rewrite_le(hi, bases, scheme);
    }
    if hi == c - 1 {
        return Expr::not(rewrite_le(lo - 1, bases, scheme));
    }
    rewrite_two_sided(lo, hi, bases, scheme)
}

/// Equation (7): `A = v` is a conjunction of per-digit equalities.
fn rewrite_eq(v: u64, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    let digits = bases.decompose(v);
    Expr::and(
        digits
            .iter()
            .enumerate()
            .map(|(i, &d)| scheme.expr_eq(bases.bases()[i], d, i)),
    )
}

/// Equation (8): `A <= v` over all components.
fn rewrite_le(v: u64, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    le_digits(v, bases.n() - 1, bases, scheme)
}

/// `A_{top+1} … A_1 <= digits(value)` — Equation (8) restricted to the
/// `top+1` least significant components. `value` must be below the
/// capacity of those components.
fn le_digits(value: u64, top: usize, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    let b = bases.bases();
    let mut digits = Vec::with_capacity(top + 1);
    let mut rest = value;
    for &base in &b[..=top] {
        digits.push(rest % base);
        rest /= base;
    }
    debug_assert_eq!(rest, 0, "value exceeds capacity of components 0..={top}");

    // Trailing-max trim: if the k lowest digits are all maximal, the
    // comparison on them is vacuous (paper: "A <= 499" -> "A_3 <= 4").
    let mut start = 0;
    while start <= top && digits[start] == b[start] - 1 {
        start += 1;
    }
    if start > top {
        return Expr::True;
    }

    let mut acc = scheme.expr_le(b[start], digits[start], start);
    for i in start + 1..=top {
        let d = digits[i];
        let below = if d > 0 {
            scheme.expr_le(b[i], d - 1, i)
        } else {
            Expr::False
        };
        let alpha = match scheme.alpha() {
            AlphaForm::Equality => scheme.expr_eq(b[i], d, i),
            AlphaForm::Range => scheme.expr_le(b[i], d, i),
        };
        acc = Expr::or([below, Expr::and([alpha, acc])]);
    }
    acc
}

/// `A_{top+1} … A_1 >= digits(value)`, as `NOT (<= value−1)` with the
/// symmetric trailing-zero trim falling out of the recursion.
fn ge_digits(value: u64, top: usize, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    if value == 0 {
        return Expr::True;
    }
    Expr::not(le_digits(value - 1, top, bases, scheme))
}

/// Two-sided ranges (§6.2): strip the common most-significant digit
/// prefix into equality predicates, then split or bracket the rest.
fn rewrite_two_sided(lo: u64, hi: u64, bases: &BaseVector, scheme: EncodingScheme) -> Expr {
    let b = bases.bases();
    let dlo = bases.decompose(lo);
    let dhi = bases.decompose(hi);

    // Common most-significant digits become equality conjuncts.
    let mut j = bases.n() - 1;
    let mut prefix: Vec<Expr> = Vec::new();
    while j > 0 && dlo[j] == dhi[j] {
        prefix.push(scheme.expr_eq(b[j], dlo[j], j));
        j -= 1;
    }

    if j == 0 {
        // Only the least significant digit differs: one component range.
        prefix.push(scheme.expr_range(b[0], dlo[0], dhi[0], 0));
        return Expr::and(prefix);
    }

    // Capacity of components below j.
    let cap_below: u64 = b[..j].iter().product();
    let lo_low = lo % cap_below;
    let hi_low = hi % cap_below;

    let body = match scheme.alpha() {
        AlphaForm::Equality => {
            // Top-digit split (the paper's equality-encoded example):
            //   (dlo_j+1 <= A_j <= dhi_j−1)
            // ∨ (A_j = dlo_j ∧ suffix >= lo)
            // ∨ (A_j = dhi_j ∧ suffix <= hi).
            let mid = if dlo[j] < dhi[j] - 1 {
                scheme.expr_range(b[j], dlo[j] + 1, dhi[j] - 1, j)
            } else {
                Expr::False
            };
            let low_arm = Expr::and([
                scheme.expr_eq(b[j], dlo[j], j),
                ge_digits(lo_low, j - 1, bases, scheme),
            ]);
            let high_arm = Expr::and([
                scheme.expr_eq(b[j], dhi[j], j),
                le_suffix(hi_low, j - 1, cap_below, bases, scheme),
            ]);
            Expr::or([mid, low_arm, high_arm])
        }
        AlphaForm::Range => {
            // GE ∧ LE over the suffix including digit j.
            let cap_incl: u64 = cap_below * b[j];
            let lo_s = lo % cap_incl;
            let hi_s = hi % cap_incl;
            Expr::and([
                ge_digits(lo_s, j, bases, scheme),
                le_suffix(hi_s, j, cap_incl, bases, scheme),
            ])
        }
    };
    prefix.push(body);
    Expr::and(prefix)
}

/// `suffix <= value`, short-circuiting to `True` when `value` is the
/// suffix maximum.
fn le_suffix(
    value: u64,
    top: usize,
    capacity: u64,
    bases: &BaseVector,
    scheme: EncodingScheme,
) -> Expr {
    if value == capacity - 1 {
        Expr::True
    } else {
        le_digits(value, top, bases, scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bix_bitvec::Bitvec;

    #[test]
    fn minimal_intervals_merges_runs() {
        // §5's example.
        assert_eq!(
            minimal_intervals(&[6, 19, 20, 21, 22, 35]),
            vec![(6, 6), (19, 22), (35, 35)]
        );
        assert_eq!(minimal_intervals(&[]), vec![]);
        assert_eq!(minimal_intervals(&[3]), vec![(3, 3)]);
        assert_eq!(minimal_intervals(&[1, 2, 3]), vec![(1, 3)]);
        // Unsorted input with duplicates.
        assert_eq!(minimal_intervals(&[5, 1, 2, 5, 0]), vec![(0, 2), (5, 5)]);
    }

    /// Evaluates a rewritten expression at the domain level (leaves become
    /// the value sets they represent, projected through decomposition) and
    /// compares against the reference semantics.
    fn check_rewrite(c: u64, bases: &BaseVector, scheme: EncodingScheme, q: &Query) {
        let expr = rewrite_query(q, c, bases, scheme);
        let mut fetch = |r: crate::BitmapRef| {
            let b = bases.bases()[r.component];
            let slot_vals = scheme.slot_values(b, r.slot);
            let positions: Vec<usize> = (0..c)
                .filter(|&v| slot_vals.contains(&bases.decompose(v)[r.component]))
                .map(|v| v as usize)
                .collect();
            Bitvec::from_positions(c as usize, &positions)
        };
        let got = expr.evaluate(c as usize, &mut fetch);
        for v in 0..c {
            assert_eq!(
                got.get(v as usize),
                q.matches(v),
                "{scheme} bases={:?} query={q:?} value={v}",
                bases.bases()
            );
        }
    }

    #[test]
    fn every_interval_query_rewrites_correctly_all_schemes_and_bases() {
        let c = 24u64;
        let base_choices = [
            BaseVector::single(c),
            BaseVector::from_msb(&[2, 12]),
            BaseVector::from_msb(&[4, 6]),
            BaseVector::from_msb(&[6, 4]),
            BaseVector::from_msb(&[2, 3, 4]),
            BaseVector::from_msb(&[3, 2, 2, 2]),
        ];
        for scheme in EncodingScheme::ALL {
            for bases in &base_choices {
                for lo in 0..c {
                    for hi in lo..c {
                        check_rewrite(c, bases, scheme, &Query::range(lo, hi));
                    }
                }
            }
        }
    }

    #[test]
    fn membership_and_not_queries_rewrite_correctly() {
        let c = 20u64;
        let bases = BaseVector::from_msb(&[4, 5]);
        for scheme in EncodingScheme::ALL {
            check_rewrite(c, &bases, scheme, &Query::membership(vec![6, 7, 8, 15]));
            check_rewrite(c, &bases, scheme, &Query::membership(vec![0, 19]));
            check_rewrite(c, &bases, scheme, &Query::range(3, 12).not());
            check_rewrite(c, &bases, scheme, &Query::membership(vec![]));
        }
    }

    #[test]
    fn paper_example_a_le_85_base_10_10() {
        // §6.1 step 2: "A <= 85" over base-<10,10> with equality encoding
        // becomes (A_2 <= 7) ∨ [(A_2 = 8) ∧ (A_1 <= 5)].
        let bases = BaseVector::from_msb(&[10, 10]);
        let expr = rewrite_le(85, &bases, EncodingScheme::Equality);
        // Structure: Or with the low-digit arm containing E_2^8.
        match &expr {
            Expr::Or(children) => assert_eq!(children.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
        check_rewrite(100, &bases, EncodingScheme::Equality, &Query::le(85));
    }

    #[test]
    fn paper_example_a_le_499_trims_low_digits() {
        // §6.2: "A <= 499" over base-<10,10,10> simplifies to "A_3 <= 4".
        let bases = BaseVector::from_msb(&[10, 10, 10]);
        let expr = rewrite_le(499, &bases, EncodingScheme::Range);
        // Only component 2 (most significant) may be referenced.
        for leaf in expr.leaves() {
            assert_eq!(leaf.component, 2, "unexpected leaf {leaf:?}");
        }
        assert_eq!(expr.scan_count(), 1);
    }

    #[test]
    fn paper_example_common_prefix_4326_4377() {
        // §6.2: "4326 <= A <= 4377" over base-<10,10,10,10> becomes
        // (A_4 = 4) ∧ (A_3 = 3) ∧ (26 <= A_2 A_1 <= 77).
        let bases = BaseVector::from_msb(&[10, 10, 10, 10]);
        for scheme in [EncodingScheme::Equality, EncodingScheme::Range] {
            let expr = rewrite_two_sided(4326, 4377, &bases, scheme);
            check_rewrite_large(&bases, scheme, 4326, 4377, &expr);
        }
    }

    /// Domain-level check for larger domains: sample instead of exhaust.
    fn check_rewrite_large(
        bases: &BaseVector,
        scheme: EncodingScheme,
        lo: u64,
        hi: u64,
        expr: &Expr,
    ) {
        let c = bases.capacity();
        let mut fetch = |r: crate::BitmapRef| {
            let b = bases.bases()[r.component];
            let slot_vals = scheme.slot_values(b, r.slot);
            let positions: Vec<usize> = (0..c)
                .filter(|&v| slot_vals.contains(&bases.decompose(v)[r.component]))
                .map(|v| v as usize)
                .collect();
            Bitvec::from_positions(c as usize, &positions)
        };
        let got = expr.evaluate(c as usize, &mut fetch);
        for v in 0..c {
            assert_eq!(
                got.get(v as usize),
                lo <= v && v <= hi,
                "{scheme} [{lo},{hi}] at {v}"
            );
        }
    }

    #[test]
    fn ge_trailing_zero_digits_trim() {
        // "A >= 500" over base-<10,10,10> is ¬(A <= 499) = ¬(A_3 <= 4):
        // one leaf.
        let bases = BaseVector::from_msb(&[10, 10, 10]);
        let expr = rewrite_interval(500, 999, 1000, &bases, EncodingScheme::Range);
        assert_eq!(expr.scan_count(), 1, "got {expr:?}");
    }
}
