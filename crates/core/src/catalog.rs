//! Persistent multi-attribute catalogs: a `.bixcat` manifest plus one
//! `BIXIDX2` index file per attribute.
//!
//! The manifest is deliberately tiny — it names the attributes and
//! their index files; all bitmap payload lives in the per-attribute
//! files (each self-checksummed, see [`BitmapIndex::save_to`]). Layout:
//!
//! ```text
//! "BIXCAT1\n"                       magic
//! attrs: u32 LE                     (≤ MAX_CATALOG_ATTRS)
//! rows:  u64 LE
//! per attribute:
//!   name_len: u32 LE, name bytes    identifier chars, ≤ 64 bytes
//!   file_len: u32 LE, file bytes    relative filename, ≤ 256 bytes
//! crc32 of everything above: u32 LE
//! ```
//!
//! Index files are stored *relative* to the manifest; the loader
//! rejects separators and `..` components so a hostile manifest cannot
//! read outside its own directory. The whole manifest is CRC-covered,
//! and attribute indexes verify/repair through the same
//! [`crate::degrade`] machinery as standalone indexes.

use crate::degrade::{RepairReport, VerifyReport};
use crate::{BitmapIndex, IndexConfig, IndexedTable};
use bix_storage::crc32;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"BIXCAT1\n";

/// Most attributes one catalog may declare — a hostile manifest cannot
/// make the loader allocate unboundedly.
pub const MAX_CATALOG_ATTRS: usize = 256;

const MAX_NAME_LEN: usize = 64;
const MAX_FILE_LEN: usize = 256;

/// A typed catalog failure.
#[derive(Debug)]
pub enum CatalogError {
    /// An underlying file operation failed.
    Io(io::Error),
    /// The manifest does not start with the catalog magic.
    BadMagic,
    /// The manifest's trailing CRC does not match its contents.
    CrcMismatch,
    /// The manifest declares more attributes than [`MAX_CATALOG_ATTRS`].
    TooManyAttrs {
        /// Declared count.
        got: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// An attribute name is empty, too long, or not an identifier.
    BadName {
        /// The offending name (lossily decoded, clipped).
        name: String,
    },
    /// An index filename is empty, too long, absolute, or escapes the
    /// manifest's directory.
    BadFileName {
        /// The offending filename (lossily decoded, clipped).
        name: String,
    },
    /// The same attribute name appears twice.
    DuplicateAttr {
        /// The repeated name.
        name: String,
    },
    /// An attribute index's row count disagrees with the manifest.
    RowsMismatch {
        /// The attribute whose index disagrees.
        attr: String,
        /// Rows in the index file.
        got: usize,
        /// Rows the manifest declares.
        want: u64,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog i/o: {e}"),
            CatalogError::BadMagic => write!(f, "not a catalog file (bad magic)"),
            CatalogError::CrcMismatch => write!(f, "catalog manifest checksum mismatch"),
            CatalogError::TooManyAttrs { got, cap } => {
                write!(f, "manifest declares {got} attributes (cap {cap})")
            }
            CatalogError::BadName { name } => write!(f, "bad attribute name {name:?}"),
            CatalogError::BadFileName { name } => write!(f, "bad index filename {name:?}"),
            CatalogError::DuplicateAttr { name } => {
                write!(f, "attribute {name:?} declared twice")
            }
            CatalogError::RowsMismatch { attr, got, want } => {
                write!(f, "index for {attr:?} has {got} rows, manifest says {want}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<io::Error> for CatalogError {
    fn from(e: io::Error) -> CatalogError {
        CatalogError::Io(e)
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && !name.as_bytes()[0].is_ascii_digit()
}

fn valid_filename(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_FILE_LEN
        && !name.contains('/')
        && !name.contains('\\')
        && !name.contains("..")
}

fn clip_lossy(bytes: &[u8]) -> String {
    let s = String::from_utf8_lossy(&bytes[..bytes.len().min(48)]);
    s.into_owned()
}

/// A persistent multi-attribute catalog: an [`IndexedTable`] plus the
/// manifest bookkeeping that ties each attribute to its index file.
pub struct Catalog {
    table: IndexedTable,
    files: Vec<String>,
}

impl Catalog {
    /// Wraps an in-memory table; index filenames are derived from the
    /// manifest stem at save time.
    pub fn from_table(table: IndexedTable) -> Catalog {
        let files = Vec::new();
        Catalog { table, files }
    }

    /// Builds a catalog from whole columns: one `(name, column, config)`
    /// triple per attribute.
    ///
    /// # Panics
    ///
    /// Panics on column-length mismatches or duplicate names (same
    /// contract as [`IndexedTable::add_attribute`]).
    pub fn build(rows: usize, columns: &[(&str, &[u64], IndexConfig)]) -> Catalog {
        let mut table = IndexedTable::new(rows);
        for (name, column, config) in columns {
            table.add_attribute(name, column, config.clone());
        }
        Catalog::from_table(table)
    }

    /// The underlying table.
    pub fn table(&self) -> &IndexedTable {
        &self.table
    }

    /// The underlying table, mutably (evaluation needs `&mut`).
    pub fn table_mut(&mut self) -> &mut IndexedTable {
        &mut self.table
    }

    /// Consumes the catalog, yielding its table.
    pub fn into_table(self) -> IndexedTable {
        self.table
    }

    /// Saves the manifest at `path` and one `BIXIDX2` file per
    /// attribute beside it, named `<stem>.<attr>.bix`.
    pub fn save(&mut self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        let path = path.as_ref();
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "catalog".to_owned());
        let schema = self.table.schema();
        self.files = schema
            .attrs()
            .iter()
            .map(|a| format!("{stem}.{}.bix", a.name))
            .collect();
        for (i, file) in self.files.iter().enumerate() {
            let name = schema.attr(i).name.clone();
            let index = self
                .table
                .index(&name)
                .expect("schema attribute has an index");
            index.save(dir.join(file))?;
        }
        let mut manifest = Vec::new();
        manifest.extend_from_slice(MAGIC);
        manifest.extend_from_slice(&(schema.len() as u32).to_le_bytes());
        manifest.extend_from_slice(&(self.table.rows() as u64).to_le_bytes());
        for (a, file) in schema.attrs().iter().zip(&self.files) {
            manifest.extend_from_slice(&(a.name.len() as u32).to_le_bytes());
            manifest.extend_from_slice(a.name.as_bytes());
            manifest.extend_from_slice(&(file.len() as u32).to_le_bytes());
            manifest.extend_from_slice(file.as_bytes());
        }
        let crc = crc32(&manifest);
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        w.write_all(&manifest)?;
        w.write_all(&crc.to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Loads a catalog: manifest first (CRC-checked before any field is
    /// trusted), then every attribute index via [`BitmapIndex::load`].
    pub fn load(path: impl AsRef<Path>) -> Result<Catalog, CatalogError> {
        Catalog::load_inner(path.as_ref(), false)
    }

    /// Like [`Catalog::load`] but attribute indexes load through
    /// [`BitmapIndex::load_tolerant`], quarantining corrupt bitmaps
    /// instead of failing (the manifest itself must still be intact).
    pub fn load_tolerant(path: impl AsRef<Path>) -> Result<Catalog, CatalogError> {
        Catalog::load_inner(path.as_ref(), true)
    }

    fn load_inner(path: &Path, tolerant: bool) -> Result<Catalog, CatalogError> {
        let bytes = std::fs::read(path)?;
        let entries = parse_manifest(&bytes)?;
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let (rows, entries) = entries;
        let mut table = IndexedTable::new(rows as usize);
        let mut files = Vec::with_capacity(entries.len());
        for (name, file) in entries {
            let full: PathBuf = dir.join(&file);
            let reader = io::BufReader::new(std::fs::File::open(&full)?);
            let index = if tolerant {
                BitmapIndex::load_tolerant(reader)?
            } else {
                BitmapIndex::load_from(reader)?
            };
            if index.rows() as u64 != rows {
                return Err(CatalogError::RowsMismatch {
                    attr: name,
                    got: index.rows(),
                    want: rows,
                });
            }
            table.add_index(&name, index);
            files.push(file);
        }
        Ok(Catalog { table, files })
    }

    /// Verifies every attribute index's checksums, returning one report
    /// per attribute in schema order.
    pub fn verify(&mut self) -> Vec<(String, VerifyReport)> {
        self.table
            .indexes_mut()
            .map(|(name, index)| (name.to_owned(), index.verify()))
            .collect()
    }

    /// Repairs every attribute index, returning one report per
    /// attribute in schema order.
    pub fn repair(&mut self) -> Vec<(String, RepairReport)> {
        self.table
            .indexes_mut()
            .map(|(name, index)| (name.to_owned(), index.repair()))
            .collect()
    }

    /// The per-attribute index filenames recorded by the last
    /// [`Catalog::save`] or [`Catalog::load`], in schema order.
    pub fn files(&self) -> &[String] {
        &self.files
    }
}

/// Parses and validates a manifest byte string.
fn parse_manifest(bytes: &[u8]) -> Result<(u64, Vec<(String, String)>), CatalogError> {
    // The trailing CRC covers everything before it; check it before
    // trusting any declared length.
    if bytes.len() < MAGIC.len() + 4 + 8 + 4 {
        return Err(CatalogError::BadMagic);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CatalogError::BadMagic);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let declared = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != declared {
        return Err(CatalogError::CrcMismatch);
    }
    let mut r = &body[MAGIC.len()..];
    let attrs = read_u32(&mut r)? as usize;
    if attrs > MAX_CATALOG_ATTRS {
        return Err(CatalogError::TooManyAttrs {
            got: attrs,
            cap: MAX_CATALOG_ATTRS,
        });
    }
    let rows = read_u64(&mut r)?;
    let mut entries = Vec::with_capacity(attrs);
    for _ in 0..attrs {
        let name_bytes = read_prefixed(&mut r, MAX_NAME_LEN, |b| CatalogError::BadName {
            name: clip_lossy(b),
        })?;
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|e| CatalogError::BadName {
            name: clip_lossy(e.as_bytes()),
        })?;
        if !valid_name(&name) {
            return Err(CatalogError::BadName {
                name: clip_lossy(name.as_bytes()),
            });
        }
        let file_bytes = read_prefixed(&mut r, MAX_FILE_LEN, |b| CatalogError::BadFileName {
            name: clip_lossy(b),
        })?;
        let file =
            String::from_utf8(file_bytes.to_vec()).map_err(|e| CatalogError::BadFileName {
                name: clip_lossy(e.as_bytes()),
            })?;
        if !valid_filename(&file) {
            return Err(CatalogError::BadFileName {
                name: clip_lossy(file.as_bytes()),
            });
        }
        if entries.iter().any(|(n, _)| *n == name) {
            return Err(CatalogError::DuplicateAttr { name });
        }
        entries.push((name, file));
    }
    if !r.is_empty() {
        // Trailing bytes the CRC happened to cover are still malformed.
        return Err(CatalogError::BadMagic);
    }
    Ok((rows, entries))
}

fn read_u32(r: &mut &[u8]) -> Result<u32, CatalogError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|_| CatalogError::BadMagic)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, CatalogError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|_| CatalogError::BadMagic)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_prefixed<'a>(
    r: &mut &'a [u8],
    cap: usize,
    err: impl Fn(&[u8]) -> CatalogError,
) -> Result<&'a [u8], CatalogError> {
    let len = read_u32(r)? as usize;
    if len > cap || len > r.len() {
        return Err(err(&r[..r.len().min(cap)]));
    }
    let (head, tail) = r.split_at(len);
    *r = tail;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecKind, EncodingScheme, Planner, TableQuery};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bixcat-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn star_columns() -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let rows = 200usize;
        let region: Vec<u64> = (0..rows).map(|i| (i * 7 % 8) as u64).collect();
        let store: Vec<u64> = (0..rows).map(|i| (i * 13 % 48) as u64).collect();
        let discount: Vec<u64> = (0..rows).map(|i| (i * i % 50) as u64).collect();
        (region, store, discount)
    }

    fn build_catalog() -> Catalog {
        let (region, store, discount) = star_columns();
        Catalog::build(
            region.len(),
            &[
                (
                    "region",
                    &region,
                    IndexConfig::one_component(8, EncodingScheme::Equality),
                ),
                (
                    "store",
                    &store,
                    IndexConfig::one_component(48, EncodingScheme::Interval)
                        .with_codec(CodecKind::Wah),
                ),
                (
                    "discount",
                    &discount,
                    IndexConfig::one_component(50, EncodingScheme::Interval),
                ),
            ],
        )
    }

    #[test]
    fn save_load_round_trips_and_queries_match() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("star.bixcat");
        let mut cat = build_catalog();
        let q = TableQuery::parse(
            "region in {0, 1} and (discount >= 7 or not store = 12)",
            &cat.table().schema(),
        )
        .unwrap();
        let want = cat.table_mut().evaluate(&q);
        cat.save(&path).unwrap();
        assert_eq!(cat.files().len(), 3);

        let mut loaded = Catalog::load(&path).unwrap();
        assert_eq!(loaded.table().rows(), 200);
        assert_eq!(
            loaded.table().schema().attrs().len(),
            cat.table().schema().attrs().len()
        );
        let got = loaded.table_mut().evaluate(&q);
        assert_eq!(got.to_positions(), want.to_positions());

        // Plans built against the loaded schema execute identically too.
        let plan = Planner::new(&loaded.table().schema()).plan(&q).unwrap();
        let planned = loaded
            .table_mut()
            .execute_plan(&plan, &crate::CostModel::default());
        assert_eq!(planned.bitmap.to_positions(), want.to_positions());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_corruption_is_typed() {
        let dir = temp_dir("corrupt");
        let path = dir.join("star.bixcat");
        build_catalog().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip a body byte: CRC mismatch.
        bytes[12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Catalog::load(&path),
            Err(CatalogError::CrcMismatch)
        ));

        // Bad magic.
        bytes[12] ^= 0xff;
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Catalog::load(&path), Err(CatalogError::BadMagic)));

        // Truncation anywhere is an error, never a panic.
        bytes[0] ^= 0xff;
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(Catalog::load(&path).is_err(), "cut={cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_filenames_are_rejected() {
        // Hand-build a manifest whose index file escapes the directory.
        let dir = temp_dir("hostile");
        let path = dir.join("evil.bixcat");
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&8u64.to_le_bytes());
        {
            let (name, file) = ("a", "../escape.bix");
            body.extend_from_slice(&(name.len() as u32).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(file.len() as u32).to_le_bytes());
            body.extend_from_slice(file.as_bytes());
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        assert!(matches!(
            Catalog::load(&path),
            Err(CatalogError::BadFileName { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_corruption_fails_strict_load_but_not_tolerant() {
        let dir = temp_dir("tolerant");
        let path = dir.join("star.bixcat");
        let mut cat = build_catalog();
        cat.save(&path).unwrap();
        // Corrupt one byte deep inside an attribute's index payload.
        let victim = dir.join(&cat.files()[0]);
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() - 9;
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        assert!(Catalog::load(&path).is_err());
        let mut salvaged = Catalog::load_tolerant(&path).unwrap();
        let reports = salvaged.verify();
        assert_eq!(reports.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_and_repair_cover_every_attribute() {
        let mut cat = build_catalog();
        let reports = cat.verify();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|(_, r)| r.corrupt.is_empty()));
        let repairs = cat.repair();
        assert_eq!(repairs.len(), 3);
    }
}
