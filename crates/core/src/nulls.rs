//! Nullable columns: an existence bitmap alongside the encoded index.
//!
//! Real warehouse columns contain NULLs. A NULL row must satisfy *no*
//! selection predicate — including negated ones — which interacts subtly
//! with bitmap encodings whose evaluation expressions use complements
//! (e.g. interval encoding's `A = C−1` is `NOT (I^{N−1} ∨ I^0)`, and a
//! NULL row, being 0 in every bitmap, would fall into that complement).
//! The classical fix is an **existence bitmap** `EB` (1 for non-NULL
//! rows): build the value bitmaps with NULL rows cleared, and intersect
//! every final query result with `EB`. Because the intersection happens
//! after the complete expression is evaluated, every internal complement
//! is cleansed at once.

use crate::{BitmapIndex, IndexConfig, UpdateStats};
use bix_bitvec::Bitvec;

impl BitmapIndex {
    /// Builds an index over a nullable column. NULL rows set no bit in
    /// any value bitmap and are excluded from every query answer via the
    /// existence bitmap.
    ///
    /// # Panics
    ///
    /// Panics if any present value is `>= config.cardinality`.
    pub fn build_nullable(column: &[Option<u64>], config: &IndexConfig) -> Self {
        // Build over the dense column with NULLs mapped to value 0, then
        // clear the NULL rows from every bitmap by masking with EB. This
        // reuses the (optimized) dense build path; the extra AND per
        // bitmap is one word-level pass.
        let dense: Vec<u64> = column.iter().map(|v| v.unwrap_or(0)).collect();
        let mut index = BitmapIndex::build(&dense, config);

        let mut existence = Bitvec::zeros(column.len());
        for (row, v) in column.iter().enumerate() {
            if v.is_some() {
                existence.set(row, true);
            }
        }

        // Mask NULL rows out of every stored bitmap.
        let mut pool = crate::BufferPool::new(4096);
        for comp in 0..config.bases.n() {
            let b = config.bases.bases()[comp];
            for slot in 0..config.encoding.num_bitmaps(b) {
                let handle = index.handle(comp, slot);
                let mut bitmap = index.store_mut().read(handle, &mut pool);
                bitmap.and_assign(&existence);
                let new_handle = index.store_mut().replace(handle, config.codec, &bitmap);
                index.set_handle(comp, slot, new_handle);
            }
        }

        // The dense build counted NULLs as value 0; recount over the
        // non-NULL values only.
        let mut histogram = vec![0u64; config.cardinality as usize];
        for v in column.iter().flatten() {
            histogram[*v as usize] += 1;
        }
        index.set_histogram(histogram);

        let eb_handle = index.store_mut().put("EB", config.codec, &existence);
        index.set_existence(Some(eb_handle));
        index.add_uncompressed_bytes(existence.byte_size());
        index.reset_stats();
        index
    }

    /// True if this index tracks NULLs (was built from a nullable column).
    pub fn is_nullable(&self) -> bool {
        self.existence_handle().is_some()
    }

    /// Number of non-NULL rows.
    pub fn non_null_rows(&mut self) -> usize {
        match self.existence_handle() {
            None => self.rows(),
            Some(eb) => {
                let mut pool = crate::BufferPool::new(4096);
                self.store_mut().read(eb, &mut pool).count_ones()
            }
        }
    }

    /// Appends a batch of nullable records.
    ///
    /// # Panics
    ///
    /// Panics if the index was not built with [`BitmapIndex::build_nullable`],
    /// or a present value is out of domain.
    pub fn append_nullable(&mut self, new_rows: &[Option<u64>]) -> UpdateStats {
        let eb = self
            .existence_handle()
            .expect("append_nullable requires an index built with build_nullable");
        let codec = self.config().codec;

        // Extend the existence bitmap first (stats reset happens inside
        // the dense append below).
        let mut pool = crate::BufferPool::new(4096);
        let old_eb = self.store_mut().read(eb, &mut pool);
        let mut builder = bix_bitvec::BitvecBuilder::with_capacity(old_eb.len() + new_rows.len());
        for i in 0..old_eb.len() {
            builder.push(old_eb.get(i));
        }
        for v in new_rows {
            builder.push(v.is_some());
        }
        let new_eb = builder.finish();
        let new_eb_handle = self.store_mut().replace(eb, codec, &new_eb);
        self.set_existence(Some(new_eb_handle));

        // Dense append with NULLs as placeholder 0, then clear the new
        // NULL rows from every value bitmap they touched (value 0's
        // bitmaps only, so fix those up).
        let old_rows = self.rows();
        let dense: Vec<u64> = new_rows.iter().map(|v| v.unwrap_or(0)).collect();
        let mut stats = self.append(&dense);
        let null_count = new_rows.iter().filter(|v| v.is_none()).count() as u64;
        self.histogram_sub(0, null_count);

        let null_rows: Vec<usize> = new_rows
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| old_rows + i)
            .collect();
        if !null_rows.is_empty() {
            let bases: Vec<u64> = self.config().bases.bases().to_vec();
            let encoding = self.config().encoding;
            let mut corrected = 0usize;
            let mut pool = crate::BufferPool::new(4096);
            for (comp, &b) in bases.iter().enumerate() {
                for slot in 0..encoding.num_bitmaps(b) {
                    if !encoding.slot_values(b, slot).contains(&0) {
                        continue; // placeholder 0 never touched this bitmap
                    }
                    let handle = self.handle(comp, slot);
                    let mut bitmap = self.store_mut().read(handle, &mut pool);
                    for &row in &null_rows {
                        bitmap.set(row, false);
                        corrected += 1;
                    }
                    let new_handle = self.store_mut().replace(handle, codec, &bitmap);
                    self.set_handle(comp, slot, new_handle);
                }
            }
            // The dense append over-counted the placeholder bits.
            stats.one_bit_updates -= corrected;
            stats.stored_bytes_after = self.space_bytes();
        }
        self.reset_stats();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecKind, EncodingScheme, Query};

    fn nullable_column() -> Vec<Option<u64>> {
        vec![
            Some(3),
            None,
            Some(0),
            Some(9),
            None,
            Some(5),
            Some(0),
            Some(7),
        ]
    }

    fn matches(column: &[Option<u64>], q: &Query) -> Vec<usize> {
        column
            .iter()
            .enumerate()
            .filter(|(_, v)| v.map(|x| q.matches(x)).unwrap_or(false))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn nulls_never_match_any_query_any_scheme() {
        let column = nullable_column();
        let queries = [
            Query::equality(0),
            Query::equality(9),
            Query::le(4),
            Query::range(3, 7),
            Query::membership(vec![0, 5, 9]),
            Query::range(2, 8).not(),
        ];
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for codec in [CodecKind::Raw, CodecKind::Bbc] {
                let config = IndexConfig::one_component(10, scheme).with_codec(codec);
                let mut idx = BitmapIndex::build_nullable(&column, &config);
                assert!(idx.is_nullable());
                assert_eq!(idx.non_null_rows(), 6);
                for q in &queries {
                    // Note: the reference excludes NULL rows even from the
                    // negated query (SQL three-valued logic).
                    let expect: Vec<usize> = match q {
                        Query::Not(inner) => column
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| v.map(|x| !inner.matches(x)).unwrap_or(false))
                            .map(|(i, _)| i)
                            .collect(),
                        other => matches(&column, other),
                    };
                    assert_eq!(
                        idx.evaluate(q).to_positions(),
                        expect,
                        "{scheme} {codec} {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn complement_heavy_query_excludes_nulls() {
        // "A = C−1" uses a pure complement under interval encoding — the
        // exact case where NULL rows would leak without the EB.
        let column = nullable_column();
        let config = IndexConfig::one_component(10, EncodingScheme::Interval);
        let mut idx = BitmapIndex::build_nullable(&column, &config);
        assert_eq!(idx.evaluate(&Query::equality(9)).to_positions(), vec![3]);
    }

    #[test]
    fn scans_account_for_the_existence_bitmap() {
        let column = nullable_column();
        let config = IndexConfig::one_component(10, EncodingScheme::Equality);
        let mut idx = BitmapIndex::build_nullable(&column, &config);
        let mut pool = crate::BufferPool::new(64);
        let r = idx.evaluate_detailed(
            &Query::equality(5),
            &mut pool,
            crate::EvalStrategy::ComponentWise,
            &crate::CostModel::default(),
        );
        assert_eq!(r.scans, 2, "E^5 plus the existence bitmap");
        assert_eq!(r.bitmap.to_positions(), vec![5]);
    }

    #[test]
    fn append_nullable_matches_rebuild() {
        let initial = nullable_column();
        let extra = vec![Some(0u64), None, Some(9), Some(3), None];
        let mut full = initial.clone();
        full.extend(extra.iter().cloned());

        for scheme in [EncodingScheme::Interval, EncodingScheme::Range] {
            let config = IndexConfig::one_component(10, scheme).with_codec(CodecKind::Bbc);
            let mut grown = BitmapIndex::build_nullable(&initial, &config);
            let stats = grown.append_nullable(&extra);
            assert_eq!(stats.records, extra.len());

            let mut rebuilt = BitmapIndex::build_nullable(&full, &config);
            for lo in 0..10u64 {
                for hi in lo..10 {
                    let q = Query::range(lo, hi);
                    assert_eq!(
                        grown.evaluate(&q).to_positions(),
                        rebuilt.evaluate(&q).to_positions(),
                        "{scheme} [{lo},{hi}]"
                    );
                }
            }
            assert_eq!(grown.non_null_rows(), rebuilt.non_null_rows());
        }
    }

    #[test]
    fn all_null_column_matches_nothing() {
        let column: Vec<Option<u64>> = vec![None; 20];
        let config = IndexConfig::one_component(10, EncodingScheme::Interval);
        let mut idx = BitmapIndex::build_nullable(&column, &config);
        assert_eq!(idx.non_null_rows(), 0);
        assert!(idx.evaluate(&Query::le(9)).is_all_zero());
        assert!(idx.evaluate(&Query::equality(0).not()).is_all_zero());
    }

    #[test]
    fn non_nullable_index_reports_not_nullable() {
        let idx = BitmapIndex::build(
            &[1u64, 2, 3],
            &IndexConfig::one_component(10, EncodingScheme::Equality),
        );
        assert!(!idx.is_nullable());
    }

    #[test]
    #[should_panic(expected = "build_nullable")]
    fn append_nullable_on_dense_index_panics() {
        let mut idx = BitmapIndex::build(
            &[1u64],
            &IndexConfig::one_component(10, EncodingScheme::Equality),
        );
        idx.append_nullable(&[Some(1)]);
    }
}
