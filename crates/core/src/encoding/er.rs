//! Equality-range encoding `ER = E ∪ R` (§5.1).
//!
//! Both bitmap families are materialized, except `R^0 = E^0` and
//! `R^{C−2} = NOT E^{C−1}`, which are answered from the equality bitmaps.
//! Layout: slots `0..C` are `E^v`; slots `C..2C−3` are `R^1..R^{C−3}`.
//! For `C <= 3` every range bitmap is redundant and `ER` degenerates to `E`.

use crate::encoding::equality;
use crate::Expr;

pub(crate) fn num_bitmaps(b: u64) -> usize {
    if b <= 3 {
        equality::num_bitmaps(b)
    } else {
        (2 * b - 3) as usize
    }
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    if b <= 3 || slot < b as usize {
        equality::slot_values(b, slot)
    } else {
        // Slot b + i - 1 is R^i, i in 1..=b-3.
        let i = (slot as u64) - b + 1;
        (0..=i).collect()
    }
}

pub(crate) fn slot_name(b: u64, slot: usize) -> String {
    if b <= 3 || slot < b as usize {
        equality::slot_name(b, slot)
    } else {
        format!("R^{}", (slot as u64) - b + 1)
    }
}

/// `R^v` for `0 <= v <= b−2`, substituting the non-materialized endpoints.
fn r(b: u64, v: u64, comp: usize) -> Expr {
    debug_assert!(v <= b - 2);
    if b <= 3 {
        // Degenerate: answer from equality bitmaps.
        return equality::le(b, v, comp);
    }
    if v == 0 {
        Expr::leaf(comp, 0) // R^0 = E^0
    } else if v == b - 2 {
        Expr::not(Expr::leaf(comp, (b - 1) as usize)) // R^{C-2} = ¬E^{C-1}
    } else {
        Expr::leaf(comp, (b + v - 1) as usize)
    }
}

/// Equality constituents use the equality half.
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    equality::eq(b, v, comp)
}

/// Range constituents use the range half: `[0, v] = R^v`.
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    r(b, v, comp)
}

/// `[lo, hi] = R^{hi} XOR R^{lo−1}`.
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    Expr::xor(r(b, hi, comp), r(b, lo - 1, comp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_has_both_families() {
        // b = 10: slots 0..10 are E^v, slots 10..17 are R^1..R^7.
        assert_eq!(num_bitmaps(10), 17);
        assert_eq!(slot_values(10, 3), vec![3]);
        assert_eq!(slot_values(10, 10), vec![0, 1]); // R^1
        assert_eq!(slot_values(10, 16), (0..=7).collect::<Vec<_>>()); // R^7
        assert_eq!(slot_name(10, 10), "R^1");
        assert_eq!(slot_name(10, 3), "E^3");
    }

    #[test]
    fn non_materialized_endpoints_substitute() {
        // R^0 = E^0.
        assert_eq!(le(10, 0, 0), Expr::leaf(0, 0));
        // R^{C-2} = NOT E^{C-1}.
        assert_eq!(le(10, 8, 0), Expr::not(Expr::leaf(0, 9)));
        // Interior R bitmaps are their own slots.
        assert_eq!(le(10, 4, 0), Expr::leaf(0, 13));
    }

    #[test]
    fn small_cardinalities_degenerate_to_equality() {
        assert_eq!(num_bitmaps(2), 1);
        assert_eq!(num_bitmaps(3), 3);
        // b = 3: [0,1] answered from equality bitmaps.
        let e = le(3, 1, 0);
        assert!(e.scan_count() <= 1, "got {e:?}");
    }

    #[test]
    fn every_query_at_most_two_scans() {
        for b in 2u64..=32 {
            for lo in 0..b {
                for hi in lo..b {
                    let e = crate::EncodingScheme::EqualityRange.expr_range(b, lo, hi, 0);
                    assert!(e.scan_count() <= 2, "ER b={b} [{lo},{hi}]");
                }
            }
        }
    }
}
