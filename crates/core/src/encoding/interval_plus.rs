//! `I+` — the odd-cardinality interval-encoding variant (footnote 4).
//!
//! The paper's footnote 4 mentions "another variant of the interval
//! encoding scheme for the case when C is odd", detailed only in the
//! unavailable technical report [CI98a]. Our optimality analysis shows
//! why it exists: at odd C the basic windows `[j, j+⌊C/2⌋−1]` are *not*
//! optimal for one-sided range queries, while windows **one value wider**
//! are (see `bix-analysis`'s `odd_c_needs_the_footnote_4_variant`).
//!
//! For odd `C`, `I+` stores the same `⌈C/2⌉` bitmaps but with
//! `m = (C−1)/2`: `I⁺^j = [j, j+m]`, so `I⁺^0 = [0, (C−1)/2]` covers a
//! strict majority of the domain and `A <= m` is a single scan both ways
//! from the midpoint. For even `C` the widened windows lose completeness
//! (the two middle values become indistinguishable), so `I+` falls back
//! to the basic interval encoding — the variant is exactly the odd-C
//! complement the footnote describes.
//!
//! The evaluation case split mirrors Equations (4)-(6) with the wider
//! `m`; every branch is verified exhaustively in `encoding::tests`.

use crate::encoding::interval;
use crate::Expr;

/// True when the wide-window variant applies.
fn is_odd(b: u64) -> bool {
    b % 2 == 1
}

/// The wide window half-width `m = (C−1)/2` (odd C only).
fn m(b: u64) -> u64 {
    debug_assert!(is_odd(b));
    (b - 1) / 2
}

pub(crate) fn num_bitmaps(b: u64) -> usize {
    // Same count as basic interval encoding in both parities.
    b.div_ceil(2) as usize
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    if !is_odd(b) {
        return interval::slot_values(b, slot);
    }
    let j = slot as u64;
    (j..=j + m(b)).collect()
}

pub(crate) fn slot_name(b: u64, slot: usize) -> String {
    if !is_odd(b) {
        interval::slot_name(b, slot)
    } else {
        format!("I+^{slot}")
    }
}

fn i(comp: usize, j: u64) -> Expr {
    Expr::leaf(comp, j as usize)
}

/// `A = v` with the wide windows.
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    if !is_odd(b) {
        return interval::eq(b, v, comp);
    }
    if b == 3 {
        // Windows [0,1], [1,2].
        return match v {
            0 => Expr::and([i(comp, 0), Expr::not(i(comp, 1))]),
            1 => Expr::and([i(comp, 1), i(comp, 0)]),
            _ => Expr::not(i(comp, 0)),
        };
    }
    let m = m(b);
    if v < m {
        Expr::and([i(comp, v), Expr::not(i(comp, v + 1))])
    } else if v == m {
        Expr::and([i(comp, v), i(comp, 0)])
    } else if v < b - 1 {
        Expr::and([i(comp, v - m), Expr::not(i(comp, v - m - 1))])
    } else {
        // {C−1} = NOT [0, C−2] = NOT (I⁺^0 ∨ I⁺^{m−1}).
        Expr::not(Expr::or([i(comp, 0), i(comp, m - 1)]))
    }
}

/// `A <= v` for `v < C−1`: one scan at the midpoint and just below it
/// (where `[v+1, C−1]` is exactly the last window), two elsewhere.
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    if !is_odd(b) {
        return interval::le(b, v, comp);
    }
    let m = m(b);
    let n = num_bitmaps(b) as u64;
    if v == m {
        i(comp, 0)
    } else if v + 1 == m {
        // [0, m−1] = NOT [m, C−1] = NOT I⁺^{N−1}: the wide windows reach
        // the top of the domain, so this complement is a single scan.
        Expr::not(i(comp, n - 1))
    } else if v < m {
        Expr::and([i(comp, 0), Expr::not(i(comp, v + 1))])
    } else {
        Expr::or([i(comp, 0), i(comp, v - m)])
    }
}

/// `A >= lo` for `0 < lo <= C−1`: one scan when `[lo, C−1]` is exactly
/// the last window, else the complement of [`le`].
pub(crate) fn ge(b: u64, lo: u64, comp: usize) -> Expr {
    if is_odd(b) && b - 1 - lo == m(b) {
        return i(comp, num_bitmaps(b) as u64 - 1);
    }
    Expr::not(le(b, lo - 1, comp))
}

/// `lo <= A <= hi` for `0 < lo < hi < C−1`: the Equation (6) case split
/// with the wider window.
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    if !is_odd(b) {
        return interval::two_sided(b, lo, hi, comp);
    }
    let m = m(b);
    let n = num_bitmaps(b) as u64;
    let width = hi - lo;
    if width == m {
        i(comp, lo)
    } else if width > m {
        Expr::or([i(comp, lo), i(comp, hi - m)])
    } else if hi < n - 1 {
        Expr::and([i(comp, lo), Expr::not(i(comp, hi + 1))])
    } else if lo > m {
        Expr::and([i(comp, hi - m), Expr::not(i(comp, lo - m - 1))])
    } else {
        Expr::and([i(comp, lo), i(comp, hi - m)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingScheme;

    #[test]
    fn odd_c_layout_widens_the_window() {
        // C = 9: five bitmaps [j, j+4] instead of basic I's [j, j+3].
        assert_eq!(num_bitmaps(9), 5);
        assert_eq!(slot_values(9, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(slot_values(9, 4), vec![4, 5, 6, 7, 8]);
        assert_eq!(slot_name(9, 2), "I+^2");
    }

    #[test]
    fn even_c_falls_back_to_basic_interval() {
        for b in [4u64, 10, 16] {
            for slot in 0..num_bitmaps(b) {
                assert_eq!(
                    slot_values(b, slot),
                    interval::slot_values(b, slot),
                    "b={b} slot={slot}"
                );
            }
        }
    }

    #[test]
    fn midpoint_one_sided_is_single_scan() {
        // "A <= (C−1)/2" is exactly I⁺^0 — the query the wide variant wins.
        for b in [5u64, 9, 17, 49] {
            let e = EncodingScheme::IntervalPlus.expr_le(b, (b - 1) / 2, 0);
            assert_eq!(e.scan_count(), 1, "b={b}");
        }
    }

    #[test]
    fn all_queries_at_most_two_scans() {
        for b in 2u64..=33 {
            for lo in 0..b {
                for hi in lo..b {
                    let e = EncodingScheme::IntervalPlus.expr_range(b, lo, hi, 0);
                    assert!(e.scan_count() <= 2, "b={b} [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn one_sided_expected_scans_beat_basic_interval_at_odd_c() {
        // The reason footnote 4 exists, measured directly.
        for b in [5u64, 9, 13, 21] {
            let basic: usize = (0..b - 1)
                .map(|v| EncodingScheme::Interval.expr_le(b, v, 0).scan_count())
                .sum();
            let plus: usize = (0..b - 1)
                .map(|v| EncodingScheme::IntervalPlus.expr_le(b, v, 0).scan_count())
                .sum();
            assert!(plus < basic, "b={b}: I+ {plus} vs I {basic}");
        }
    }
}
