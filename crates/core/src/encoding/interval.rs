//! Interval encoding `I` (§4, Equations 4-6) — the paper's contribution.
//!
//! `⌈C/2⌉` bitmaps, `I^j = [j, j+m]` with `m = ⌊C/2⌋ − 1`: a sliding
//! window covering half the domain. Any interval query is answered with at
//! most **two** bitmap scans, at about half the space of range encoding.

use crate::Expr;

/// The window half-width `m = ⌊C/2⌋ − 1`. Undefined for `b < 2` (the
/// subtraction would underflow); [`EncodingScheme`] rejects those
/// cardinalities at its boundary before any scheme module runs.
pub(crate) fn m(b: u64) -> u64 {
    debug_assert!(b >= 2, "interval window undefined for cardinality {b}");
    b / 2 - 1
}

/// `⌈C/2⌉` bitmaps.
pub(crate) fn num_bitmaps(b: u64) -> usize {
    b.div_ceil(2) as usize
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    let j = slot as u64;
    (j..=j + m(b)).collect()
}

pub(crate) fn slot_name(_b: u64, slot: usize) -> String {
    format!("I^{slot}")
}

fn i(comp: usize, j: u64) -> Expr {
    Expr::leaf(comp, j as usize)
}

/// Equation (4): `A = v`.
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    let m = m(b);
    let n = b.div_ceil(2); // number of bitmaps
    if m == 0 {
        // b = 2 (one bitmap {0}) or b = 3 (bitmaps {0}, {1}).
        return match (b, v) {
            (2, 0) => i(comp, 0),
            (2, 1) => Expr::not(i(comp, 0)),
            (3, 2) => Expr::not(Expr::or([i(comp, 0), i(comp, 1)])),
            (_, v) => i(comp, v),
        };
    }
    if v < m {
        // I^v ∧ NOT I^{v+1}.
        Expr::and([i(comp, v), Expr::not(i(comp, v + 1))])
    } else if v == m {
        // I^v ∧ I^0.
        Expr::and([i(comp, v), i(comp, 0)])
    } else if v < b - 1 {
        // I^{v−m} ∧ NOT I^{v−m−1}.
        Expr::and([i(comp, v - m), Expr::not(i(comp, v - m - 1))])
    } else {
        // v = C−1: NOT (I^{⌈C/2⌉−1} ∨ I^0).
        Expr::not(Expr::or([i(comp, n - 1), i(comp, 0)]))
    }
}

/// Equation (5): `A <= v` for `0 <= v < C−1`.
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    let m = m(b);
    if m == 0 {
        // b = 2: v = 0 is the equality {0}; b = 3: v <= 1.
        return match (b, v) {
            (2, 0) => i(comp, 0),
            (3, 0) => i(comp, 0),
            (3, 1) => Expr::or([i(comp, 0), i(comp, 1)]),
            _ => unreachable!("le called with v >= b-1"),
        };
    }
    if v < m {
        // I^0 ∧ NOT I^{v+1}.
        Expr::and([i(comp, 0), Expr::not(i(comp, v + 1))])
    } else if v == m {
        i(comp, 0)
    } else {
        // m < v < C−1: I^0 ∨ I^{v−m}.
        Expr::or([i(comp, 0), i(comp, v - m)])
    }
}

/// Equation (6): `v1 <= A <= v2` for `0 < v1 < v2 < C−1`.
///
/// Derived case split (the paper's typeset equation is reconstructed in
/// DESIGN.md §4; each case is verified exhaustively in tests):
///
/// * width `= m+1`: the query is exactly one stored bitmap, `I^{v1}`;
/// * width `> m+1`: `I^{v1} ∨ I^{v2−m}` (two overlapping windows);
/// * width `< m+1`: intersect/subtract two windows, choosing the pair
///   whose indexes exist: `I^{v1} ∧ ¬I^{v2+1}`, or
///   `I^{v2−m} ∧ ¬I^{v1−m−1}`, or `I^{v1} ∧ I^{v2−m}`.
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    let m = m(b);
    let n = b.div_ceil(2);
    debug_assert!(m >= 1, "two-sided requires b >= 4");
    let width = hi - lo; // inclusive width minus one
    if width == m {
        i(comp, lo)
    } else if width > m {
        Expr::or([i(comp, lo), i(comp, hi - m)])
    } else if hi < n - 1 {
        Expr::and([i(comp, lo), Expr::not(i(comp, hi + 1))])
    } else if lo > m {
        Expr::and([i(comp, hi - m), Expr::not(i(comp, lo - m - 1))])
    } else {
        Expr::and([i(comp, lo), i(comp, hi - m)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingScheme;

    #[test]
    fn figure_4b_layout_c10() {
        // Figure 4(b)/5(a): C = 10, m = 4, five bitmaps I^j = [j, j+4].
        assert_eq!(num_bitmaps(10), 5);
        assert_eq!(m(10), 4);
        for j in 0..5u64 {
            assert_eq!(slot_values(10, j as usize), (j..=j + 4).collect::<Vec<_>>());
        }
        assert_eq!(slot_name(10, 2), "I^2");
    }

    #[test]
    fn space_is_half_of_range_encoding() {
        for b in 2u64..=200 {
            let i = num_bitmaps(b);
            let r = (b - 1) as usize;
            assert!(i <= r / 2 + 1, "b={b}: I={i} R={r}");
        }
    }

    #[test]
    fn equation_4_branch_shapes_c10() {
        let s = EncodingScheme::Interval;
        // v < m: I^v ∧ ¬I^{v+1}.
        assert_eq!(
            s.expr_eq(10, 2, 0),
            Expr::and([Expr::leaf(0, 2), Expr::not(Expr::leaf(0, 3))])
        );
        // v = m: I^m ∧ I^0.
        assert_eq!(
            s.expr_eq(10, 4, 0),
            Expr::and([Expr::leaf(0, 4), Expr::leaf(0, 0)])
        );
        // m < v < C-1: I^{v-m} ∧ ¬I^{v-m-1}.
        assert_eq!(
            s.expr_eq(10, 7, 0),
            Expr::and([Expr::leaf(0, 3), Expr::not(Expr::leaf(0, 2))])
        );
        // v = C-1: ¬(I^{N-1} ∨ I^0).
        assert_eq!(
            s.expr_eq(10, 9, 0),
            Expr::not(Expr::or([Expr::leaf(0, 4), Expr::leaf(0, 0)]))
        );
    }

    #[test]
    fn equation_5_branch_shapes_c10() {
        let s = EncodingScheme::Interval;
        assert_eq!(
            s.expr_le(10, 2, 0),
            Expr::and([Expr::leaf(0, 0), Expr::not(Expr::leaf(0, 3))])
        );
        assert_eq!(s.expr_le(10, 4, 0), Expr::leaf(0, 0));
        assert_eq!(
            s.expr_le(10, 7, 0),
            Expr::or([Expr::leaf(0, 0), Expr::leaf(0, 3)])
        );
        assert_eq!(s.expr_le(10, 9, 0), Expr::True);
    }

    #[test]
    fn width_m_plus_one_ranges_are_free() {
        // A two-sided range of exactly the window width is one scan.
        for b in 4u64..=40 {
            let m = m(b);
            for lo in 1..(b - 1).saturating_sub(m) {
                let hi = lo + m;
                if hi < b - 1 {
                    let e = EncodingScheme::Interval.expr_range(b, lo, hi, 0);
                    assert_eq!(e.scan_count(), 1, "b={b} [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn odd_cardinality_edge_cases() {
        // C = 9: N = 5 bitmaps, m = 3.
        assert_eq!(num_bitmaps(9), 5);
        assert_eq!(m(9), 3);
        // All equalities verified structurally at the domain level in
        // encoding::tests; spot-check v = C-1 here.
        let e = EncodingScheme::Interval.expr_eq(9, 8, 0);
        assert_eq!(e, Expr::not(Expr::or([Expr::leaf(0, 4), Expr::leaf(0, 0)])));
    }

    #[test]
    fn tiny_cardinalities() {
        assert_eq!(num_bitmaps(2), 1);
        assert_eq!(num_bitmaps(3), 2);
        let s = EncodingScheme::Interval;
        assert_eq!(s.expr_eq(2, 1, 0), Expr::not(Expr::leaf(0, 0)));
        assert_eq!(s.expr_eq(3, 1, 0), Expr::leaf(0, 1));
        assert_eq!(
            s.expr_eq(3, 2, 0),
            Expr::not(Expr::or([Expr::leaf(0, 0), Expr::leaf(0, 1)]))
        );
    }
}
