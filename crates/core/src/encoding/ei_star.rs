//! `EI*` — the space-reduced variant of equality-interval encoding (§5.4).
//!
//! `EI* = I ∪ {P^1, …, P^r}` with `r = ⌈(C−4)/2⌉` and
//! `P^i = E^i ∪ E^{i+m+1}` (two equality bitmaps OR-ed together, one value
//! from each half of the domain). Because `I^0 = [0, ⌊C/2⌋−1]` splits the
//! domain, each equality query is `P ∧ I^0` or `P ∧ ¬I^0` — two scans —
//! while ranges use the interval bitmaps unchanged. Total space
//! `⌈C/2⌉ + ⌈(C−4)/2⌉ ≈ ⅔` of `EI`. Reduces to `I` when `C <= 4`.
//!
//! The paper defers the evaluation expressions to [CI98a]; the case split
//! below is our derivation (DESIGN.md §4), exhaustively verified in
//! `encoding::tests`. Layout: slots `0..⌈C/2⌉` are `I^j`; slot
//! `⌈C/2⌉−1+i` is `P^i`.

use crate::encoding::interval;
use crate::Expr;

/// Number of paired-equality bitmaps, `r = ⌈(C−4)/2⌉`.
fn r(b: u64) -> u64 {
    (b - 4).div_ceil(2)
}

pub(crate) fn num_bitmaps(b: u64) -> usize {
    if b <= 4 {
        interval::num_bitmaps(b)
    } else {
        (b.div_ceil(2) + r(b)) as usize
    }
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    let n = b.div_ceil(2) as usize;
    if b <= 4 || slot < n {
        interval::slot_values(b, slot)
    } else {
        let i = (slot - n + 1) as u64;
        let m = interval::m(b);
        vec![i, i + m + 1]
    }
}

pub(crate) fn slot_name(b: u64, slot: usize) -> String {
    let n = b.div_ceil(2) as usize;
    if b <= 4 || slot < n {
        interval::slot_name(b, slot)
    } else {
        format!("P^{}", slot - n + 1)
    }
}

/// The paired bitmap `P^i`, `1 <= i <= r`.
fn p(b: u64, i: u64, comp: usize) -> Expr {
    debug_assert!((1..=r(b)).contains(&i));
    Expr::leaf(comp, (b.div_ceil(2) + i - 1) as usize)
}

fn i0(comp: usize) -> Expr {
    Expr::leaf(comp, 0)
}

/// `A = v`: pair bitmap ∧ (I^0 or its complement), interval forms at the
/// four values without a pair (`0`, `m` for even C, `m+1`, `C−1`).
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    if b <= 4 {
        return interval::eq(b, v, comp);
    }
    let m = interval::m(b);
    let r = r(b);
    if v >= 1 && v <= r {
        // v is the low element of P^v.
        Expr::and([p(b, v, comp), i0(comp)])
    } else if v >= m + 2 && v <= b - 2 {
        // v is the high element of P^{v-m-1}.
        Expr::and([p(b, v - m - 1, comp), Expr::not(i0(comp))])
    } else {
        // v ∈ {0, m (even C), m+1, C−1}: interval-encoding forms.
        interval::eq(b, v, comp)
    }
}

/// Ranges use the interval bitmaps (Equation 5).
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    interval::le(b, v, comp)
}

/// Ranges use the interval bitmaps (Equation 6).
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    interval::two_sided(b, lo, hi, comp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_interval_then_pairs() {
        // b = 10: 5 I slots + 3 P slots (r = 3), m = 4.
        assert_eq!(num_bitmaps(10), 8);
        assert_eq!(slot_values(10, 0), (0..=4).collect::<Vec<_>>()); // I^0
        assert_eq!(slot_values(10, 5), vec![1, 6]); // P^1
        assert_eq!(slot_values(10, 6), vec![2, 7]); // P^2
        assert_eq!(slot_values(10, 7), vec![3, 8]); // P^3
        assert_eq!(slot_name(10, 5), "P^1");
    }

    #[test]
    fn space_is_two_thirds_of_ei() {
        // (C−2) / (3C/2) approaches 2/3 from below as C grows.
        for b in 40u64..=200 {
            let ei_star = num_bitmaps(b) as f64;
            let ei = crate::EncodingScheme::EqualityInterval.num_bitmaps(b) as f64;
            let ratio = ei_star / ei;
            assert!((0.6..0.70).contains(&ratio), "b={b}: EI*/EI = {ratio:.3}");
        }
        // The paper's example cardinality: 8 of EI's 15 bitmaps.
        assert_eq!(num_bitmaps(10), 8);
        assert_eq!(crate::EncodingScheme::EqualityInterval.num_bitmaps(10), 15);
    }

    #[test]
    fn reduces_to_interval_when_small() {
        for b in 2u64..=4 {
            assert_eq!(num_bitmaps(b), interval::num_bitmaps(b));
        }
    }

    #[test]
    fn pair_equalities_share_i0() {
        // Every pair-based equality touches I^0 — the §5.4 design insight.
        for b in 5u64..=32 {
            let m = interval::m(b);
            for v in 1..b - 1 {
                if v == m || v == m + 1 {
                    continue; // interval-form values
                }
                let e = eq(b, v, 0);
                assert!(
                    e.leaves().iter().any(|l| l.slot == 0),
                    "b={b} v={v}: expected I^0 in {e:?}"
                );
                assert_eq!(e.scan_count(), 2, "b={b} v={v}");
            }
        }
    }
}
