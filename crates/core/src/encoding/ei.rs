//! Equality-interval encoding `EI = E ∪ I` (§5.3).
//!
//! Equality constituents use the equality bitmaps (1 scan); range
//! constituents use the interval bitmaps (≤ 2 scans). `EI` reduces to `E`
//! when `C < 4` (the interval bitmaps would duplicate equality bitmaps).
//! Layout: slots `0..C` are `E^v`; slots `C..C+⌈C/2⌉` are `I^j`.

use crate::encoding::{equality, interval};
use crate::Expr;

/// Offsets an interval-encoding expression's slots past the equality half.
fn shift_interval(e: Expr, b: u64) -> Expr {
    match e {
        Expr::Leaf(r) => Expr::Leaf(crate::BitmapRef::new(r.component, r.slot + b as usize)),
        Expr::Not(inner) => Expr::Not(Box::new(shift_interval(*inner, b))),
        Expr::And(children) => {
            Expr::And(children.into_iter().map(|c| shift_interval(c, b)).collect())
        }
        Expr::Or(children) => {
            Expr::Or(children.into_iter().map(|c| shift_interval(c, b)).collect())
        }
        Expr::Xor(x, y) => Expr::Xor(
            Box::new(shift_interval(*x, b)),
            Box::new(shift_interval(*y, b)),
        ),
        constant => constant,
    }
}

pub(crate) fn num_bitmaps(b: u64) -> usize {
    if b < 4 {
        equality::num_bitmaps(b)
    } else {
        (b + b.div_ceil(2)) as usize
    }
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    if b < 4 || slot < b as usize {
        equality::slot_values(b, slot)
    } else {
        interval::slot_values(b, slot - b as usize)
    }
}

pub(crate) fn slot_name(b: u64, slot: usize) -> String {
    if b < 4 || slot < b as usize {
        equality::slot_name(b, slot)
    } else {
        interval::slot_name(b, slot - b as usize)
    }
}

pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    equality::eq(b, v, comp)
}

pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    if b < 4 {
        equality::le(b, v, comp)
    } else {
        shift_interval(interval::le(b, v, comp), b)
    }
}

pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    debug_assert!(b >= 4, "two-sided requires b >= 4");
    shift_interval(interval::two_sided(b, lo, hi, comp), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_equality_then_interval() {
        // b = 10: 10 E slots + 5 I slots.
        assert_eq!(num_bitmaps(10), 15);
        assert_eq!(slot_values(10, 4), vec![4]); // E^4
        assert_eq!(slot_values(10, 10), (0..=4).collect::<Vec<_>>()); // I^0
        assert_eq!(slot_name(10, 12), "I^2");
    }

    #[test]
    fn small_cardinalities_reduce_to_equality() {
        assert_eq!(num_bitmaps(2), 1);
        assert_eq!(num_bitmaps(3), 3);
    }

    #[test]
    fn equality_is_one_scan_ranges_at_most_two() {
        for b in 2u64..=32 {
            for v in 0..b {
                assert!(
                    crate::EncodingScheme::EqualityInterval
                        .expr_eq(b, v, 0)
                        .scan_count()
                        <= 1
                );
            }
            for lo in 0..b {
                for hi in lo + 1..b {
                    let e = crate::EncodingScheme::EqualityInterval.expr_range(b, lo, hi, 0);
                    assert!(e.scan_count() <= 2, "EI b={b} [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn range_expressions_reference_interval_slots() {
        // [0, 7] over b = 10 must use I bitmaps (slots >= 10).
        let e = le(10, 7, 0);
        for leaf in e.leaves() {
            assert!(leaf.slot >= 10, "expected interval slot, got {leaf:?}");
        }
    }
}
