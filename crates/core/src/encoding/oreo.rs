//! OREO encoding `O` — Oscillating Range and Equality Organization (§5.2).
//!
//! `C − 1` bitmaps `O^1 … O^{C−1}` interleaving the two basic schemes:
//!
//! * odd `i < C−1`: `O^i = R^i = [0, i]` (a range bitmap);
//! * even `i < C−1`: `O^i = E^{i−1} ∨ E^i = {i−1, i}` (an equality pair);
//! * `O^{C−1} = ∨_{i even} E^i` (the even-values bitmap).
//!
//! The paper defers the evaluation expressions to the technical report
//! [CI98a]; the expressions below are our derivation (DESIGN.md §4),
//! verified exhaustively against the slot definitions for every
//! `C ∈ 2..=17` in `encoding::tests`. Slot `s` stores `O^{s+1}`.

use crate::Expr;

pub(crate) fn num_bitmaps(b: u64) -> usize {
    (b - 1) as usize
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    let i = slot as u64 + 1;
    if i == b - 1 {
        (0..b).filter(|v| v % 2 == 0).collect()
    } else if i % 2 == 1 {
        (0..=i).collect()
    } else {
        vec![i - 1, i]
    }
}

pub(crate) fn slot_name(b: u64, slot: usize) -> String {
    let i = slot as u64 + 1;
    if i == b - 1 {
        format!("O^{i}(evens)")
    } else if i % 2 == 1 {
        format!("O^{i}(range)")
    } else {
        format!("O^{i}(pair)")
    }
}

/// The bitmap `O^i`, `1 <= i <= b−1`.
fn o(i: u64, comp: usize) -> Expr {
    debug_assert!(i >= 1);
    Expr::leaf(comp, (i - 1) as usize)
}

/// `A = v`, at most 2 scans except the odd `v = C−2` corner (3 scans).
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    if b == 2 {
        // O^1 = evens = {0}.
        return if v == 0 {
            o(1, comp)
        } else {
            Expr::not(o(1, comp))
        };
    }
    let evens = o(b - 1, comp);
    if v == 0 {
        // [0,1] ∧ evens.
        Expr::and([o(1, comp), evens])
    } else if v == b - 1 {
        if b % 2 == 1 {
            // C odd: O^{C-2} = [0, C-2], complement is {C-1}.
            Expr::not(o(b - 2, comp))
        } else {
            // C even: neither evens nor [0, C-3] contains C-1.
            Expr::not(Expr::or([evens, o(b - 3, comp)]))
        }
    } else if v.is_multiple_of(2) {
        // {v-1, v} ∧ evens.
        Expr::and([o(v, comp), evens])
    } else if v < b - 2 {
        // {v, v+1} ∧ odds.
        Expr::and([o(v + 1, comp), Expr::not(evens)])
    } else if v == 1 {
        // b = 3: [0,1] ∧ odds = {1}.
        Expr::and([o(1, comp), Expr::not(evens)])
    } else {
        // Odd v = C-2 (C odd, b >= 5): ([0,v] ⊕ [0,v-2]) ∧ odds.
        Expr::and([Expr::xor(o(v, comp), o(v - 2, comp)), Expr::not(evens)])
    }
}

/// `A <= v` for `v < C−1`: 1 scan at odd `v`, 2 at even `v`.
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    if v == 0 {
        return eq(b, 0, comp);
    }
    if v % 2 == 1 {
        o(v, comp)
    } else {
        // [0, v-1] ∨ {v-1, v}.
        Expr::or([o(v - 1, comp), o(v, comp)])
    }
}

/// `lo <= A <= hi` for `0 < lo < hi < C−1`.
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    if hi % 2 == 1 && lo >= 2 && (lo - 1) % 2 == 1 {
        // Both bounds land on range bitmaps: nested XOR, 2 scans.
        Expr::xor(o(hi, comp), o(lo - 1, comp))
    } else {
        Expr::and([le(b, hi, comp), Expr::not(le(b, lo - 1, comp))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_interleaves_ranges_and_pairs() {
        // C = 10: O^1..O^9.
        assert_eq!(num_bitmaps(10), 9);
        assert_eq!(slot_values(10, 0), vec![0, 1]); // O^1 = [0,1]
        assert_eq!(slot_values(10, 1), vec![1, 2]); // O^2 = {1,2}
        assert_eq!(slot_values(10, 2), vec![0, 1, 2, 3]); // O^3 = [0,3]
        assert_eq!(slot_values(10, 8), vec![0, 2, 4, 6, 8]); // O^9 = evens
        assert!(slot_name(10, 8).contains("evens"));
        assert!(slot_name(10, 2).contains("range"));
        assert!(slot_name(10, 1).contains("pair"));
    }

    #[test]
    fn same_space_as_range_encoding() {
        for b in 2u64..=100 {
            assert_eq!(num_bitmaps(b), (b - 1) as usize);
        }
    }

    #[test]
    fn odd_le_is_one_scan() {
        for b in 4u64..=32 {
            for v in (1..b - 1).step_by(2) {
                assert_eq!(
                    crate::EncodingScheme::Oreo.expr_le(b, v, 0).scan_count(),
                    1,
                    "b={b} v={v}"
                );
            }
        }
    }

    #[test]
    fn even_le_is_two_scans() {
        for b in 6u64..=32 {
            for v in (2..b - 1).step_by(2) {
                assert_eq!(
                    crate::EncodingScheme::Oreo.expr_le(b, v, 0).scan_count(),
                    2,
                    "b={b} v={v}"
                );
            }
        }
    }

    #[test]
    fn equality_is_at_most_two_scans_except_corner() {
        for b in 2u64..=33 {
            for v in 0..b {
                let scans = crate::EncodingScheme::Oreo.expr_eq(b, v, 0).scan_count();
                let corner = b % 2 == 1 && b >= 5 && v == b - 2;
                if corner {
                    assert_eq!(scans, 3, "b={b} v={v}");
                } else {
                    assert!(scans <= 2, "b={b} v={v}: {scans}");
                }
            }
        }
    }

    #[test]
    fn aligned_two_sided_is_xor_of_two() {
        // [2, 7] over b = 10: lo-1 = 1 odd, hi = 7 odd -> XOR form.
        let e = crate::EncodingScheme::Oreo.expr_range(10, 2, 7, 0);
        assert_eq!(e, Expr::xor(Expr::leaf(0, 6), Expr::leaf(0, 0)));
    }
}
