//! Range encoding `R` (§2, Equation 2).
//!
//! `C − 1` bitmaps, `R^v = [0, v]` for `0 <= v <= C−2` (`R^{C−1}` would be
//! all ones and is never stored).

use crate::Expr;

pub(crate) fn num_bitmaps(b: u64) -> usize {
    (b - 1) as usize
}

pub(crate) fn slot_values(_b: u64, slot: usize) -> Vec<u64> {
    (0..=slot as u64).collect()
}

pub(crate) fn slot_name(_b: u64, slot: usize) -> String {
    format!("R^{slot}")
}

/// Equation (2), equality rows.
pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    if v == 0 {
        Expr::leaf(comp, 0)
    } else if v == b - 1 {
        Expr::not(Expr::leaf(comp, (b - 2) as usize))
    } else {
        Expr::xor(
            Expr::leaf(comp, v as usize),
            Expr::leaf(comp, (v - 1) as usize),
        )
    }
}

/// Equation (2): `[0, v] = R^v` (caller guarantees `v < b−1`).
pub(crate) fn le(_b: u64, v: u64, comp: usize) -> Expr {
    Expr::leaf(comp, v as usize)
}

/// Equation (2), final row: `[lo, hi] = R^{hi} XOR R^{lo−1}` (XOR is valid
/// because `R^{lo−1} ⊆ R^{hi}`).
pub(crate) fn two_sided(_b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    Expr::xor(
        Expr::leaf(comp, hi as usize),
        Expr::leaf(comp, (lo - 1) as usize),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingScheme;

    #[test]
    fn figure_1c_layout() {
        // Figure 1(c): C = 10 range index, R^v = [0, v], 9 bitmaps.
        assert_eq!(num_bitmaps(10), 9);
        assert_eq!(slot_values(10, 0), vec![0]);
        assert_eq!(slot_values(10, 8), (0..=8).collect::<Vec<u64>>());
        assert_eq!(slot_name(10, 8), "R^8");
    }

    #[test]
    fn equation_2_branches() {
        // v1 = v2 = 0 -> R^0.
        assert_eq!(EncodingScheme::Range.expr_eq(10, 0, 0), Expr::leaf(0, 0));
        // 0 < v < C-1 -> R^v XOR R^{v-1}.
        assert_eq!(
            EncodingScheme::Range.expr_eq(10, 4, 0),
            Expr::xor(Expr::leaf(0, 4), Expr::leaf(0, 3))
        );
        // v = C-1 -> NOT R^{C-2}.
        assert_eq!(
            EncodingScheme::Range.expr_eq(10, 9, 0),
            Expr::not(Expr::leaf(0, 8))
        );
        // v1 = 0 -> R^{v2}.
        assert_eq!(
            EncodingScheme::Range.expr_range(10, 0, 6, 0),
            Expr::leaf(0, 6)
        );
        // v2 = C-1 -> NOT R^{v1-1}.
        assert_eq!(
            EncodingScheme::Range.expr_range(10, 3, 9, 0),
            Expr::not(Expr::leaf(0, 2))
        );
        // General two-sided -> XOR.
        assert_eq!(
            EncodingScheme::Range.expr_range(10, 3, 6, 0),
            Expr::xor(Expr::leaf(0, 6), Expr::leaf(0, 2))
        );
    }

    #[test]
    fn one_sided_is_single_scan() {
        for b in 2u64..=32 {
            for v in 0..b {
                assert!(EncodingScheme::Range.expr_le(b, v, 0).scan_count() <= 1);
            }
        }
    }
}
