//! Equality encoding `E` (§2, Equation 1).
//!
//! `C` bitmaps, `E^v = {v}`. For `C = 2` only `E^0` is materialized, since
//! `E^1 = NOT E^0` (the paper's footnote 2).

use crate::Expr;

pub(crate) fn num_bitmaps(b: u64) -> usize {
    if b == 2 {
        1
    } else {
        b as usize
    }
}

pub(crate) fn slot_values(b: u64, slot: usize) -> Vec<u64> {
    debug_assert!(slot < num_bitmaps(b));
    vec![slot as u64]
}

pub(crate) fn slot_name(_b: u64, slot: usize) -> String {
    format!("E^{slot}")
}

pub(crate) fn eq(b: u64, v: u64, comp: usize) -> Expr {
    if b == 2 {
        if v == 0 {
            Expr::leaf(comp, 0)
        } else {
            Expr::not(Expr::leaf(comp, 0))
        }
    } else {
        Expr::leaf(comp, v as usize)
    }
}

/// `[0, v]` by Equation (1): OR the side with fewer bitmaps.
pub(crate) fn le(b: u64, v: u64, comp: usize) -> Expr {
    or_range(b, 0, v, comp)
}

/// `[lo, hi]` by Equation (1).
pub(crate) fn two_sided(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    or_range(b, lo, hi, comp)
}

/// `[lo, hi]` as a disjunction of equality bitmaps, complemented when the
/// complement side has fewer values (Equation 1's `⌊C/2⌋` rule).
fn or_range(b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
    let width = hi - lo + 1;
    if width <= b / 2 {
        Expr::or((lo..=hi).map(|v| eq(b, v, comp)))
    } else {
        let outside = (0..lo).chain(hi + 1..b).map(|v| eq(b, v, comp));
        Expr::not(Expr::or(outside))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingScheme;

    #[test]
    fn c2_stores_single_bitmap() {
        assert_eq!(num_bitmaps(2), 1);
        assert_eq!(eq(2, 0, 0), Expr::leaf(0, 0));
        assert_eq!(eq(2, 1, 0), Expr::not(Expr::leaf(0, 0)));
    }

    #[test]
    fn narrow_range_is_direct_or() {
        // [1,2] over b=10: 2 <= 5 bitmaps, direct OR.
        let e = EncodingScheme::Equality.expr_range(10, 1, 2, 0);
        assert_eq!(e, Expr::or([Expr::leaf(0, 1), Expr::leaf(0, 2)]));
    }

    #[test]
    fn wide_range_uses_complement() {
        // [1,8] over b=10: 8 > 5, complement of {0, 9}.
        let e = EncodingScheme::Equality.expr_range(10, 1, 8, 0);
        assert_eq!(e, Expr::not(Expr::or([Expr::leaf(0, 0), Expr::leaf(0, 9)])));
        assert_eq!(e.scan_count(), 2);
    }

    #[test]
    fn figure_1b_layout() {
        // Figure 1(b): C = 10 equality index, E^v = {v}.
        for v in 0..10u64 {
            assert_eq!(slot_values(10, v as usize), vec![v]);
        }
        assert_eq!(slot_name(10, 3), "E^3");
    }
}
