//! The bitmap encoding schemes.
//!
//! Each scheme answers two questions about a single index component of
//! cardinality `b` (for a one-component index, `b = C`):
//!
//! 1. **Layout** — how many bitmaps, and which attribute values each
//!    bitmap represents ([`EncodingScheme::slot_values`]).
//! 2. **Evaluation** — the bitmap expression answering each predicate
//!    class over this component: `A_i = v`, `A_i <= v`, `lo <= A_i <= hi`
//!    (the paper's Equations 1, 2, 4, 5, 6 plus our derived expressions
//!    for OREO and EI*; see DESIGN.md §4).
//!
//! The dispatcher here also normalizes edge cases once for every scheme:
//! `A <= b−1` is `True`, `[0, b−1]` is `True`, `[v, v]` is an equality,
//! `[0, hi]` is one-sided, and `[lo, b−1]` is `NOT (A <= lo−1)`.

mod ei;
mod ei_star;
mod equality;
mod er;
mod interval;
mod interval_plus;
mod oreo;
mod range;

use crate::Expr;

/// Which form the multi-component rewrite should pick for `α_k` in the
/// paper's Equation (8): `(A_k = v_k)` or `(A_k <= v_k)`, whichever the
/// encoding evaluates more cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaForm {
    /// Prefer equality predicates (equality-rich encodings).
    Equality,
    /// Prefer one-sided range predicates (range-capable encodings).
    Range,
}

/// The seven encoding schemes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingScheme {
    /// `E`: bitmap per value (§2).
    Equality,
    /// `R`: bitmap `R^v = [0, v]` (§2).
    Range,
    /// `I`: bitmap `I^j = [j, j+m]`, `m = ⌊C/2⌋−1` (§4).
    Interval,
    /// `ER = E ∪ R` (§5.1).
    EqualityRange,
    /// OREO: oscillating range and equality organization (§5.2).
    Oreo,
    /// `EI = E ∪ I` (§5.3).
    EqualityInterval,
    /// `EI*`: interval bitmaps plus paired-equality bitmaps (§5.4).
    EqualityIntervalStar,
    /// `I+`: the odd-cardinality interval variant of footnote 4 — windows
    /// one value wider, optimal for 1RQ at odd C (falls back to `I` at
    /// even C).
    IntervalPlus,
}

impl EncodingScheme {
    /// All seven schemes, in the paper's order.
    pub const ALL: [EncodingScheme; 7] = [
        EncodingScheme::Equality,
        EncodingScheme::Range,
        EncodingScheme::Interval,
        EncodingScheme::EqualityRange,
        EncodingScheme::Oreo,
        EncodingScheme::EqualityInterval,
        EncodingScheme::EqualityIntervalStar,
    ];

    /// The three basic (non-hybrid) schemes.
    pub const BASIC: [EncodingScheme; 3] = [
        EncodingScheme::Equality,
        EncodingScheme::Range,
        EncodingScheme::Interval,
    ];

    /// The paper's seven schemes plus the footnote-4 odd-C variant.
    pub const ALL_WITH_VARIANTS: [EncodingScheme; 8] = [
        EncodingScheme::Equality,
        EncodingScheme::Range,
        EncodingScheme::Interval,
        EncodingScheme::EqualityRange,
        EncodingScheme::Oreo,
        EncodingScheme::EqualityInterval,
        EncodingScheme::EqualityIntervalStar,
        EncodingScheme::IntervalPlus,
    ];

    /// The paper's symbol for the scheme.
    pub fn symbol(self) -> &'static str {
        match self {
            EncodingScheme::Equality => "E",
            EncodingScheme::Range => "R",
            EncodingScheme::Interval => "I",
            EncodingScheme::EqualityRange => "ER",
            EncodingScheme::Oreo => "O",
            EncodingScheme::EqualityInterval => "EI",
            EncodingScheme::EqualityIntervalStar => "EI*",
            EncodingScheme::IntervalPlus => "I+",
        }
    }

    /// Number of bitmaps stored for one component of cardinality `b`
    /// (the paper's `Space(S, C)` for one component).
    ///
    /// # Panics
    ///
    /// Panics if `b < 2`.
    pub fn num_bitmaps(self, b: u64) -> usize {
        assert!(b >= 2, "component cardinality must be at least 2");
        match self {
            EncodingScheme::Equality => equality::num_bitmaps(b),
            EncodingScheme::Range => range::num_bitmaps(b),
            EncodingScheme::Interval => interval::num_bitmaps(b),
            EncodingScheme::EqualityRange => er::num_bitmaps(b),
            EncodingScheme::Oreo => oreo::num_bitmaps(b),
            EncodingScheme::EqualityInterval => ei::num_bitmaps(b),
            EncodingScheme::EqualityIntervalStar => ei_star::num_bitmaps(b),
            EncodingScheme::IntervalPlus => interval_plus::num_bitmaps(b),
        }
    }

    /// The attribute values represented by bitmap `slot` (its bits are 1
    /// for records whose digit is in this set). Used by index construction
    /// and by the optimality analysis.
    pub fn slot_values(self, b: u64, slot: usize) -> Vec<u64> {
        assert!(slot < self.num_bitmaps(b), "slot {slot} out of range");
        match self {
            EncodingScheme::Equality => equality::slot_values(b, slot),
            EncodingScheme::Range => range::slot_values(b, slot),
            EncodingScheme::Interval => interval::slot_values(b, slot),
            EncodingScheme::EqualityRange => er::slot_values(b, slot),
            EncodingScheme::Oreo => oreo::slot_values(b, slot),
            EncodingScheme::EqualityInterval => ei::slot_values(b, slot),
            EncodingScheme::EqualityIntervalStar => ei_star::slot_values(b, slot),
            EncodingScheme::IntervalPlus => interval_plus::slot_values(b, slot),
        }
    }

    /// A human-readable name for bitmap `slot` (e.g. `"I^3"`).
    pub fn slot_name(self, b: u64, slot: usize) -> String {
        assert!(slot < self.num_bitmaps(b), "slot {slot} out of range");
        match self {
            EncodingScheme::Equality => equality::slot_name(b, slot),
            EncodingScheme::Range => range::slot_name(b, slot),
            EncodingScheme::Interval => interval::slot_name(b, slot),
            EncodingScheme::EqualityRange => er::slot_name(b, slot),
            EncodingScheme::Oreo => oreo::slot_name(b, slot),
            EncodingScheme::EqualityInterval => ei::slot_name(b, slot),
            EncodingScheme::EqualityIntervalStar => ei_star::slot_name(b, slot),
            EncodingScheme::IntervalPlus => interval_plus::slot_name(b, slot),
        }
    }

    /// The `α_k` preference for the multi-component rewrite (§6.2).
    pub fn alpha(self) -> AlphaForm {
        match self {
            EncodingScheme::Equality
            | EncodingScheme::EqualityRange
            | EncodingScheme::EqualityInterval => AlphaForm::Equality,
            EncodingScheme::Range
            | EncodingScheme::Interval
            | EncodingScheme::Oreo
            | EncodingScheme::EqualityIntervalStar
            | EncodingScheme::IntervalPlus => AlphaForm::Range,
        }
    }

    /// Bitmap expression for `A_comp = v` on a component of cardinality `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b < 2` or `v >= b`.
    pub fn expr_eq(self, b: u64, v: u64, comp: usize) -> Expr {
        assert!(b >= 2, "component cardinality must be at least 2, got {b}");
        assert!(v < b, "value {v} outside component domain 0..{b}");
        match self {
            EncodingScheme::Equality => equality::eq(b, v, comp),
            EncodingScheme::Range => range::eq(b, v, comp),
            EncodingScheme::Interval => interval::eq(b, v, comp),
            EncodingScheme::EqualityRange => er::eq(b, v, comp),
            EncodingScheme::Oreo => oreo::eq(b, v, comp),
            EncodingScheme::EqualityInterval => ei::eq(b, v, comp),
            EncodingScheme::EqualityIntervalStar => ei_star::eq(b, v, comp),
            EncodingScheme::IntervalPlus => interval_plus::eq(b, v, comp),
        }
    }

    /// Bitmap expression for `A_comp <= v`.
    ///
    /// # Panics
    ///
    /// Panics if `b < 2` or `v >= b`.
    pub fn expr_le(self, b: u64, v: u64, comp: usize) -> Expr {
        assert!(b >= 2, "component cardinality must be at least 2, got {b}");
        assert!(v < b, "bound {v} outside component domain 0..{b}");
        if v == b - 1 {
            return Expr::True;
        }
        match self {
            EncodingScheme::Equality => equality::le(b, v, comp),
            EncodingScheme::Range => range::le(b, v, comp),
            EncodingScheme::Interval => interval::le(b, v, comp),
            EncodingScheme::EqualityRange => er::le(b, v, comp),
            EncodingScheme::Oreo => oreo::le(b, v, comp),
            EncodingScheme::EqualityInterval => ei::le(b, v, comp),
            EncodingScheme::EqualityIntervalStar => ei_star::le(b, v, comp),
            EncodingScheme::IntervalPlus => interval_plus::le(b, v, comp),
        }
    }

    /// Bitmap expression for `lo <= A_comp <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `b < 2`, `lo > hi`, or `hi >= b`.
    pub fn expr_range(self, b: u64, lo: u64, hi: u64, comp: usize) -> Expr {
        assert!(b >= 2, "component cardinality must be at least 2, got {b}");
        assert!(lo <= hi && hi < b, "bad range [{lo}, {hi}] for base {b}");
        if lo == hi {
            return self.expr_eq(b, lo, comp);
        }
        if lo == 0 && hi == b - 1 {
            return Expr::True;
        }
        if lo == 0 {
            return self.expr_le(b, hi, comp);
        }
        if hi == b - 1 {
            // The wide-window variant can answer some suffixes with a
            // single stored bitmap; everything else complements `<=`.
            return match self {
                EncodingScheme::IntervalPlus => interval_plus::ge(b, lo, comp),
                _ => Expr::not(self.expr_le(b, lo - 1, comp)),
            };
        }
        // Proper two-sided range: 0 < lo < hi < b-1 (so b >= 4).
        match self {
            EncodingScheme::Equality => equality::two_sided(b, lo, hi, comp),
            EncodingScheme::Range => range::two_sided(b, lo, hi, comp),
            EncodingScheme::Interval => interval::two_sided(b, lo, hi, comp),
            EncodingScheme::EqualityRange => er::two_sided(b, lo, hi, comp),
            EncodingScheme::Oreo => oreo::two_sided(b, lo, hi, comp),
            EncodingScheme::EqualityInterval => ei::two_sided(b, lo, hi, comp),
            EncodingScheme::EqualityIntervalStar => ei_star::two_sided(b, lo, hi, comp),
            EncodingScheme::IntervalPlus => interval_plus::two_sided(b, lo, hi, comp),
        }
    }
}

impl std::fmt::Display for EncodingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bix_bitvec::Bitvec;

    /// Evaluates an expression at the *domain level*: each bitmap is
    /// replaced by the length-`b` bit vector of the values it represents,
    /// so the evaluated expression is exactly the set of matching values.
    fn domain_eval(scheme: EncodingScheme, b: u64, expr: &Expr) -> Vec<u64> {
        let mut fetch = |r: crate::BitmapRef| {
            assert_eq!(r.component, 0);
            let values = scheme.slot_values(b, r.slot);
            let positions: Vec<usize> = values.iter().map(|&v| v as usize).collect();
            Bitvec::from_positions(b as usize, &positions)
        };
        expr.evaluate(b as usize, &mut fetch)
            .to_positions()
            .into_iter()
            .map(|p| p as u64)
            .collect()
    }

    /// Exhaustively verifies every evaluation equation of every scheme at
    /// every cardinality 2..=17: equality for all v, one-sided for all v,
    /// and every two-sided range.
    #[test]
    fn all_schemes_answer_all_interval_queries_exactly() {
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for b in 2u64..=17 {
                for v in 0..b {
                    let expr = scheme.expr_eq(b, v, 0);
                    assert_eq!(
                        domain_eval(scheme, b, &expr),
                        vec![v],
                        "{scheme} b={b}: A = {v} (expr {expr:?})"
                    );
                }
                for v in 0..b {
                    let expr = scheme.expr_le(b, v, 0);
                    assert_eq!(
                        domain_eval(scheme, b, &expr),
                        (0..=v).collect::<Vec<_>>(),
                        "{scheme} b={b}: A <= {v}"
                    );
                }
                for lo in 0..b {
                    for hi in lo..b {
                        let expr = scheme.expr_range(b, lo, hi, 0);
                        assert_eq!(
                            domain_eval(scheme, b, &expr),
                            (lo..=hi).collect::<Vec<_>>(),
                            "{scheme} b={b}: {lo} <= A <= {hi} (expr {expr:?})"
                        );
                    }
                }
            }
        }
    }

    /// The paper's headline guarantee (§4): interval encoding answers
    /// *every* interval query with at most two bitmap scans.
    #[test]
    fn interval_encoding_needs_at_most_two_scans() {
        for b in 2u64..=64 {
            for lo in 0..b {
                for hi in lo..b {
                    let expr = EncodingScheme::Interval.expr_range(b, lo, hi, 0);
                    assert!(
                        expr.scan_count() <= 2,
                        "I b={b} [{lo},{hi}]: {} scans",
                        expr.scan_count()
                    );
                }
            }
        }
    }

    /// Range encoding: every interval query in at most two scans as well
    /// (with twice the bitmaps).
    #[test]
    fn range_encoding_needs_at_most_two_scans() {
        for b in 2u64..=64 {
            for lo in 0..b {
                for hi in lo..b {
                    let expr = EncodingScheme::Range.expr_range(b, lo, hi, 0);
                    assert!(expr.scan_count() <= 2, "R b={b} [{lo},{hi}]");
                }
            }
        }
    }

    /// Equality encoding: equality queries in one scan; ranges cost up to
    /// ⌊C/2⌋ scans (Equation 1's complement trick caps it there).
    #[test]
    fn equality_encoding_scan_bounds() {
        for b in 2u64..=64 {
            for v in 0..b {
                assert!(EncodingScheme::Equality.expr_eq(b, v, 0).scan_count() <= 1);
            }
            for lo in 0..b {
                for hi in lo..b {
                    let scans = EncodingScheme::Equality
                        .expr_range(b, lo, hi, 0)
                        .scan_count();
                    assert!(
                        scans <= (b / 2) as usize,
                        "E b={b} [{lo},{hi}]: {scans} scans"
                    );
                }
            }
        }
    }

    /// ER answers equality in 1 scan and one-sided ranges in 1 scan.
    #[test]
    fn er_is_time_optimal_for_eq_and_1rq() {
        for b in 4u64..=32 {
            for v in 0..b {
                assert!(EncodingScheme::EqualityRange.expr_eq(b, v, 0).scan_count() <= 1);
                assert!(EncodingScheme::EqualityRange.expr_le(b, v, 0).scan_count() <= 1);
            }
        }
    }

    /// EI* answers every equality query with at most two scans, one of
    /// which is I^0 (§5.4's design goal).
    #[test]
    fn ei_star_equality_within_two_scans() {
        for b in 2u64..=64 {
            for v in 0..b {
                let expr = EncodingScheme::EqualityIntervalStar.expr_eq(b, v, 0);
                assert!(expr.scan_count() <= 2, "EI* b={b} v={v}");
            }
        }
    }

    /// OREO: one-sided ranges within 2 scans, equality within 3
    /// (3 only at the `v = C−2` odd corner).
    #[test]
    fn oreo_scan_bounds() {
        for b in 2u64..=64 {
            for v in 0..b {
                let le = EncodingScheme::Oreo.expr_le(b, v, 0);
                assert!(le.scan_count() <= 2, "O b={b} le {v}");
                let eq = EncodingScheme::Oreo.expr_eq(b, v, 0);
                assert!(eq.scan_count() <= 3, "O b={b} eq {v}");
            }
        }
    }

    #[test]
    fn bitmap_counts_match_paper_formulas() {
        for b in 5u64..=64 {
            assert_eq!(EncodingScheme::Equality.num_bitmaps(b), b as usize);
            assert_eq!(EncodingScheme::Range.num_bitmaps(b), (b - 1) as usize);
            assert_eq!(
                EncodingScheme::Interval.num_bitmaps(b),
                b.div_ceil(2) as usize
            );
            assert_eq!(EncodingScheme::Oreo.num_bitmaps(b), (b - 1) as usize);
            // ER = E + R minus the two non-materialized bitmaps.
            assert_eq!(
                EncodingScheme::EqualityRange.num_bitmaps(b),
                (2 * b - 3) as usize
            );
            // EI = E + I (no sharing for b >= 4).
            assert_eq!(
                EncodingScheme::EqualityInterval.num_bitmaps(b),
                (b + b.div_ceil(2)) as usize
            );
            // EI* = ceil(C/2) + ceil((C-4)/2).
            assert_eq!(
                EncodingScheme::EqualityIntervalStar.num_bitmaps(b),
                (b.div_ceil(2) + (b - 4).div_ceil(2)) as usize
            );
        }
    }

    #[test]
    fn slot_values_partition_information() {
        // Every scheme must be *complete*: distinct values get distinct
        // bitmap-membership signatures, so every equality query is
        // answerable.
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for b in 2u64..=17 {
                let n = scheme.num_bitmaps(b);
                let mut signatures = std::collections::HashSet::new();
                for v in 0..b {
                    let sig: Vec<bool> = (0..n)
                        .map(|s| scheme.slot_values(b, s).contains(&v))
                        .collect();
                    assert!(
                        signatures.insert(sig),
                        "{scheme} b={b}: value {v} is indistinguishable"
                    );
                }
            }
        }
    }

    #[test]
    fn symbols_are_paper_notation() {
        let symbols: Vec<&str> = EncodingScheme::ALL.iter().map(|s| s.symbol()).collect();
        assert_eq!(symbols, ["E", "R", "I", "ER", "O", "EI", "EI*"]);
    }
}
