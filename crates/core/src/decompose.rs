//! Attribute-value decomposition (Equation 3 of the paper).
//!
//! Given a base vector `<b_n, …, b_1>`, an attribute value `v` decomposes
//! into digits `v_n v_{n−1} … v_1` with
//! `v = Σ_i v_i · Π_{j<i} b_j`, each `v_i` a base-`b_i` digit. Every
//! choice of `n` and bases defines a different *n-component* index.

use crate::EncodingScheme;

/// The base vector of an n-component index.
///
/// Bases are stored **least-significant first**: `bases()[0]` is `b_1`.
/// The paper writes vectors most-significant first (`base-<3,4>` means
/// `b_2 = 3, b_1 = 4`); use [`BaseVector::from_msb`] for that order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BaseVector {
    /// `b_1, b_2, …, b_n` — least significant first.
    bases: Vec<u64>,
}

impl BaseVector {
    /// Builds from least-significant-first bases.
    ///
    /// # Panics
    ///
    /// Panics if empty or any base is `< 2`.
    pub fn from_lsb(bases: Vec<u64>) -> Self {
        assert!(!bases.is_empty(), "base vector cannot be empty");
        assert!(
            bases.iter().all(|&b| b >= 2),
            "every base must be at least 2, got {bases:?}"
        );
        BaseVector { bases }
    }

    /// Builds from the paper's most-significant-first notation, e.g.
    /// `from_msb(&[3, 4])` is the paper's `base-<3,4>`.
    pub fn from_msb(bases: &[u64]) -> Self {
        let mut v = bases.to_vec();
        v.reverse();
        BaseVector::from_lsb(v)
    }

    /// A one-component vector covering cardinality `c`.
    pub fn single(c: u64) -> Self {
        BaseVector::from_lsb(vec![c.max(2)])
    }

    /// Number of components `n`.
    pub fn n(&self) -> usize {
        self.bases.len()
    }

    /// Bases, least significant first (`b_1` first).
    pub fn bases(&self) -> &[u64] {
        &self.bases
    }

    /// The number of distinct values representable, `Π b_i`.
    pub fn capacity(&self) -> u64 {
        self.bases.iter().product()
    }

    /// Decomposes `v` into digits, least significant first.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity()`.
    pub fn decompose(&self, v: u64) -> Vec<u64> {
        assert!(
            v < self.capacity(),
            "value {v} exceeds capacity {} of {:?}",
            self.capacity(),
            self.bases
        );
        let mut digits = Vec::with_capacity(self.bases.len());
        let mut rest = v;
        for &b in &self.bases {
            digits.push(rest % b);
            rest /= b;
        }
        digits
    }

    /// Recomposes digits (least significant first) into a value.
    ///
    /// # Panics
    ///
    /// Panics if the digit count mismatches or a digit is out of base range.
    pub fn compose(&self, digits: &[u64]) -> u64 {
        assert_eq!(digits.len(), self.bases.len(), "digit count mismatch");
        let mut v = 0u64;
        let mut place = 1u64;
        for (&d, &b) in digits.iter().zip(&self.bases) {
            assert!(d < b, "digit {d} out of range for base {b}");
            v += d * place;
            place *= b;
        }
        v
    }

    /// Total number of bitmaps an index with this base vector stores under
    /// the given encoding scheme.
    pub fn num_bitmaps(&self, scheme: EncodingScheme) -> usize {
        self.bases.iter().map(|&b| scheme.num_bitmaps(b)).sum()
    }
}

/// Decomposes `v` over `bases` (least significant first) — free-function
/// form of [`BaseVector::decompose`].
pub fn decompose(v: u64, bases: &[u64]) -> Vec<u64> {
    BaseVector::from_lsb(bases.to_vec()).decompose(v)
}

/// Recomposes `digits` over `bases` (least significant first).
pub fn compose(digits: &[u64], bases: &[u64]) -> u64 {
    BaseVector::from_lsb(bases.to_vec()).compose(digits)
}

/// Finds the base vector with `n` components covering cardinality `c` that
/// minimizes the total number of bitmaps for `scheme` — the paper's
/// "best index per component count" selection rule (§7.1 picks, for each
/// `n`, the index with the best space ratio).
///
/// Ties are broken toward more balanced (smaller maximum) bases, matching
/// the time-optimal choice among space-equal indexes.
///
/// # Panics
///
/// Panics if `c < 2`, `n == 0`, or `c < 2^n` (no valid decomposition).
pub fn best_bases(c: u64, n: usize, scheme: EncodingScheme) -> BaseVector {
    assert!(c >= 2, "cardinality must be at least 2");
    assert!(n >= 1, "need at least one component");
    // Valid iff the lower n−1 components can stay below C (else the most
    // significant base b_n = ⌈C / Π b_i⌉ would degenerate to 1).
    assert!(
        n == 1 || (c as f64) > 2f64.powi(n as i32 - 1),
        "cardinality {c} cannot be decomposed into {n} components of base >= 2"
    );

    // Enumerate candidate base vectors recursively. The search space for
    // the paper's parameters (c <= 1000, n <= 8) is tiny.
    fn search(
        c: u64,
        remaining: usize,
        prefix: &mut Vec<u64>,
        best: &mut Option<(usize, u64, Vec<u64>)>,
        scheme: EncodingScheme,
    ) {
        let prod: u64 = prefix.iter().product();
        if remaining == 1 {
            // Last (most significant) base: b_n = ceil(c / prod), >= 2.
            let bn = c.div_ceil(prod).max(2);
            let mut bases = prefix.clone();
            bases.push(bn);
            let cost: usize = bases.iter().map(|&b| scheme.num_bitmaps(b)).sum();
            let balance = *bases.iter().max().expect("non-empty");
            let candidate = (cost, balance, bases);
            if best
                .as_ref()
                .is_none_or(|b| (candidate.0, candidate.1) < (b.0, b.1))
            {
                *best = Some(candidate);
            }
            return;
        }
        // Lower components may range 2..=c/2 but anything beyond ceil(c/prod)
        // only wastes space; cap the branching accordingly.
        let cap = c.div_ceil(prod).max(2);
        for b in 2..=cap {
            prefix.push(b);
            search(c, remaining - 1, prefix, best, scheme);
            prefix.pop();
        }
    }

    let mut best = None;
    search(c, n, &mut Vec::new(), &mut best, scheme);
    let (_, _, bases) = best.expect("search space is non-empty");
    BaseVector::from_lsb(bases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_base_3_4() {
        // Figure 2: C = 10 decomposed over base-<3,4>.
        let bv = BaseVector::from_msb(&[3, 4]);
        assert_eq!(bv.n(), 2);
        assert_eq!(bv.bases(), &[4, 3]);
        // 8 = 2*4 + 0, 9 = 2*4 + 1, 7 = 1*4 + 3 (paper's arrows).
        assert_eq!(bv.decompose(8), vec![0, 2]);
        assert_eq!(bv.decompose(9), vec![1, 2]);
        assert_eq!(bv.decompose(7), vec![3, 1]);
        assert_eq!(bv.decompose(0), vec![0, 0]);
    }

    #[test]
    fn decompose_compose_round_trip() {
        let bv = BaseVector::from_lsb(vec![4, 3, 5]);
        for v in 0..bv.capacity() {
            assert_eq!(bv.compose(&bv.decompose(v)), v);
        }
    }

    #[test]
    fn paper_example_35_in_base_8() {
        // §2: 35 = 4_8 3_8.
        let bv = BaseVector::from_lsb(vec![8, 8]);
        assert_eq!(bv.decompose(35), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn decompose_out_of_range_panics() {
        let bv = BaseVector::from_lsb(vec![4, 3]);
        let _ = bv.decompose(12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn base_one_rejected() {
        let _ = BaseVector::from_lsb(vec![4, 1]);
    }

    #[test]
    fn best_bases_single_component_is_c() {
        let bv = best_bases(50, 1, EncodingScheme::Equality);
        assert_eq!(bv.bases(), &[50]);
    }

    #[test]
    fn best_bases_covers_cardinality() {
        for scheme in EncodingScheme::ALL {
            for n in 1..=4 {
                let bv = best_bases(50, n, scheme);
                assert!(bv.capacity() >= 50, "{scheme:?} n={n}: {:?}", bv.bases());
                assert_eq!(bv.n(), n);
            }
        }
    }

    #[test]
    fn best_bases_for_equality_prefers_balanced_splits() {
        // For equality encoding, bitmap count is the sum of bases, which is
        // minimized by near-equal factors: 50 -> ~{7,8}.
        let bv = best_bases(50, 2, EncodingScheme::Equality);
        let total: usize = bv
            .bases()
            .iter()
            .map(|&b| EncodingScheme::Equality.num_bitmaps(b))
            .sum();
        assert!(
            total <= 15,
            "expected near-sqrt split, got {:?}",
            bv.bases()
        );
    }

    #[test]
    fn best_bases_base2_components_reach_binary_encoding() {
        // With n = ceil(log2 C) components, the best equality-encoded index
        // degenerates to Wu & Buchmann's binary encoding: one bitmap per
        // component (the C=2 footnote).
        let bv = best_bases(50, 6, EncodingScheme::Equality);
        assert_eq!(bv.num_bitmaps(EncodingScheme::Equality), 6);
    }

    #[test]
    #[should_panic(expected = "cannot be decomposed")]
    fn too_many_components_panics() {
        let _ = best_bases(10, 5, EncodingScheme::Equality);
    }
}
