//! Batched index updates (§4.2).
//!
//! The paper measures per-record update cost as the number of bitmaps
//! whose bit must be set to 1, and notes that DSS indexes are updated in
//! batches. [`BitmapIndex::append`] implements the batched path: every
//! stored bitmap is read, extended by one bit per new record, and
//! rewritten through the codec. The returned [`UpdateStats`] exposes both
//! the §4.2 cost unit (one-bit updates) and the physical rewrite cost.

use crate::BitmapIndex;

/// Costs of one batched append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Records appended.
    pub records: usize,
    /// Total `(record, bitmap)` pairs whose bit was set to 1 — the §4.2
    /// update-cost unit summed over the batch.
    pub one_bit_updates: usize,
    /// Bitmaps physically rewritten (all of them: every bitmap grows by
    /// `records` bits whether or not any new bit is 1).
    pub bitmaps_rewritten: usize,
    /// Stored bytes after the append.
    pub stored_bytes_after: usize,
}

impl UpdateStats {
    /// Mean §4.2 update cost per appended record.
    pub fn mean_cost_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.one_bit_updates as f64 / self.records as f64
        }
    }
}

impl BitmapIndex {
    /// Appends a batch of records to the index.
    ///
    /// Every bitmap is decoded, extended (1-bits where the new records'
    /// digits fall in the bitmap's value set), re-encoded with the index
    /// codec, and rewritten. I/O incurred by the rewrite is excluded from
    /// the query-time counters (they are reset afterwards, matching the
    /// paper's convention that index maintenance happens off the query
    /// clock).
    ///
    /// The rewrite runs through the crash-safe journal protocol of
    /// [`BitmapIndex::try_append`]; this convenience wrapper simply treats
    /// any [`crate::AppendError`] as fatal. When fault injection is
    /// active, or when the batch comes from an untrusted source, call
    /// [`BitmapIndex::try_append`] (and [`BitmapIndex::recover`]) instead.
    ///
    /// # Panics
    ///
    /// Panics if any value is `>= cardinality`, or if the simulated disk
    /// faults mid-append.
    pub fn append(&mut self, new_rows: &[u64]) -> UpdateStats {
        self.try_append(new_rows).unwrap_or_else(|e| match e {
            crate::AppendError::Disk(_) => {
                panic!("disk fault during append; use try_append + recover under fault injection")
            }
            other => panic!("{other}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecKind, EncodingScheme, IndexConfig, Query};

    fn build(scheme: EncodingScheme, codec: CodecKind, column: &[u64]) -> BitmapIndex {
        BitmapIndex::build(
            column,
            &IndexConfig::one_component(10, scheme).with_codec(codec),
        )
    }

    #[test]
    fn append_then_query_matches_rebuilt_index() {
        let initial: Vec<u64> = vec![3, 2, 1, 2, 8];
        let extra: Vec<u64> = vec![0, 9, 5, 5, 7, 4];
        let mut full: Vec<u64> = initial.clone();
        full.extend(&extra);

        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for codec in [CodecKind::Raw, CodecKind::Bbc] {
                let mut appended = build(scheme, codec, &initial);
                let stats = appended.append(&extra);
                assert_eq!(stats.records, extra.len());
                assert_eq!(appended.rows(), full.len());

                let mut rebuilt = build(scheme, codec, &full);
                for lo in 0..10u64 {
                    for hi in lo..10 {
                        let q = Query::range(lo, hi);
                        assert_eq!(
                            appended.evaluate(&q).to_positions(),
                            rebuilt.evaluate(&q).to_positions(),
                            "{scheme} {codec} [{lo},{hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_record_cost_matches_section_4_2() {
        // Appending one record with value v touches exactly the bitmaps
        // whose value set contains v.
        let base: Vec<u64> = vec![1, 2, 3];
        for scheme in EncodingScheme::BASIC {
            for v in 0..10u64 {
                let mut idx = build(scheme, CodecKind::Raw, &base);
                let stats = idx.append(&[v]);
                let expect = (0..scheme.num_bitmaps(10))
                    .filter(|&s| scheme.slot_values(10, s).contains(&v))
                    .count();
                assert_eq!(stats.one_bit_updates, expect, "{scheme} v={v}");
                assert_eq!(stats.bitmaps_rewritten, scheme.num_bitmaps(10));
            }
        }
    }

    #[test]
    fn batch_cost_is_sum_of_per_record_costs() {
        let mut idx = build(EncodingScheme::Range, CodecKind::Raw, &[0]);
        // Values 0..10 once each: range-encoded, value v is in bitmaps
        // R^v..R^8, so cost = sum over v of (9 - v) for v <= 8 plus 0.
        let batch: Vec<u64> = (0..10).collect();
        let stats = idx.append(&batch);
        let expect: usize = (0..9).map(|v| 9 - v).sum();
        assert_eq!(stats.one_bit_updates, expect);
        assert!((stats.mean_cost_per_record() - expect as f64 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_cost_tracks_update_cost_model() {
        // Uniform batch: the mean §4.2 cost approaches (C−1)/2 for range
        // encoding (the paper's expected case).
        let mut idx = build(EncodingScheme::Range, CodecKind::Raw, &[0]);
        let batch: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let stats = idx.append(&batch);
        assert!((stats.mean_cost_per_record() - 4.5).abs() < 0.01);
    }

    #[test]
    fn multi_component_append_works() {
        let initial: Vec<u64> = vec![7, 3];
        let extra: Vec<u64> = vec![9, 0, 4];
        let config =
            IndexConfig::n_components(10, EncodingScheme::Interval, 2).with_codec(CodecKind::Bbc);
        let mut idx = BitmapIndex::build(&initial, &config);
        idx.append(&extra);
        assert_eq!(
            idx.evaluate(&Query::range(3, 8)).to_positions(),
            vec![0, 1, 4]
        );
    }

    #[test]
    fn empty_append_is_a_noop() {
        let mut idx = build(EncodingScheme::Interval, CodecKind::Raw, &[1, 2]);
        let before = idx.space_bytes();
        let stats = idx.append(&[]);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.one_bit_updates, 0);
        assert_eq!(stats.mean_cost_per_record(), 0.0);
        assert_eq!(idx.space_bytes(), before);
        assert_eq!(idx.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_append_panics() {
        let mut idx = build(EncodingScheme::Equality, CodecKind::Raw, &[1]);
        idx.append(&[10]);
    }

    #[test]
    fn space_grows_with_appends() {
        let mut idx = build(EncodingScheme::Equality, CodecKind::Raw, &[1; 100]);
        let before = idx.space_bytes();
        let stats = idx.append(&vec![2; 1000]);
        assert!(stats.stored_bytes_after > before);
        assert_eq!(idx.space_bytes(), stats.stored_bytes_after);
        assert_eq!(idx.uncompressed_bytes(), stats.stored_bytes_after);
    }
}
