//! LSM-style in-memory delta index for high-rate streaming ingest.
//!
//! [`BitmapIndex::try_append`] rewrites every bitmap of the index per
//! batch — O(index size) no matter how small the batch. A serving system
//! under live traffic instead absorbs appends into a [`DeltaIndex`]: an
//! in-memory *memtable* holding, for every `(component, slot)` of the
//! main index's configuration, the bitmap **tail** covering only the
//! rows appended since the last merge. Absorbing a row touches exactly
//! the slots whose value set contains the row's digit (the §4.2 update
//! cost), each a single word-OR into a raw `u64` buffer — no decode, no
//! re-encode, no journal — which is what makes millions of rows per
//! second sustainable single-threaded.
//!
//! Query evaluation stays transparent: `main ∪ delta` is a *positional
//! concatenation*. Every bitmap operator the rewrite emits (AND, OR,
//! XOR, length-masked NOT, and the True/False constants) acts
//! independently on each bit position, so folding the same expression
//! over the main bitmaps and over the delta tails, then concatenating
//! the two results, is bit-identical to rebuilding the index from the
//! concatenated column. [`DeltaIndex::overlay`] appends the delta's
//! answer to an [`EvalResult`] produced by the main index and splits
//! the counters (`delta_scans` / `delta_rows`) so the cost accounting
//! stays honest about which rows never touched the store.
//!
//! The memtable is bounded: [`DeltaIndex::absorb`] rejects a batch that
//! would exceed the byte budget with [`AppendError::MemtableFull`] —
//! admission control for a serving shard, which answers `Overloaded`
//! and lets the background merge (see `bix-server`) drain the delta
//! through the journaled [`BitmapIndex::try_append`] protocol before
//! the client retries.

use crate::{AppendError, BitmapIndex, EvalResult, Expr, IndexConfig, Query};
use bix_bitvec::Bitvec;

/// Gauges describing the current delta memtable (for `bix stats` and
/// the serving metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rows currently buffered (appended since the last merge).
    pub rows: usize,
    /// Rows of the main index this delta extends.
    pub base_rows: usize,
    /// Bytes the memtable occupies (tail words + retained values).
    pub bytes: usize,
    /// The configured memtable budget in bytes.
    pub budget_bytes: usize,
}

/// In-memory per-slot bitmap tails absorbing appends for one
/// [`BitmapIndex`] (see the module docs).
///
/// The delta is configuration-coupled, not storage-coupled: it is built
/// from the same [`IndexConfig`] as the main index, so the §6 rewrite
/// produces the identical expression over `(component, slot)` refs and
/// the tails can answer it without touching the main index at all.
#[derive(Debug, Clone)]
pub struct DeltaIndex {
    config: IndexConfig,
    /// Rows of the main index snapshot this delta extends. Row `i` of
    /// the delta is global row `base_rows + i`.
    base_rows: usize,
    /// Rows buffered in the tails.
    rows: usize,
    /// The buffered values, in append order — the merge replays these
    /// through the journaled append protocol.
    values: Vec<u64>,
    /// `tails[component][slot]`: raw word buffer of the slot's bitmap
    /// tail, `rows` bits long. Bits past `rows` are zero.
    tails: Vec<Vec<Vec<u64>>>,
    /// `member_slots[component][digit]`: the slots whose value set
    /// contains `digit` — precomputed so absorbing a row is O(slots
    /// actually touched), the §4.2 cost, not O(slots × digits).
    member_slots: Vec<Vec<Vec<u32>>>,
    budget_bytes: usize,
}

impl DeltaIndex {
    /// An empty delta extending a main index of `base_rows` rows built
    /// under `config`, with a memtable budget of `budget_bytes`.
    pub fn new(config: &IndexConfig, base_rows: usize, budget_bytes: usize) -> DeltaIndex {
        let encoding = config.encoding;
        let bases = config.bases.bases().to_vec();
        let mut tails = Vec::with_capacity(bases.len());
        let mut member_slots = Vec::with_capacity(bases.len());
        for &b in &bases {
            let slots = encoding.num_bitmaps(b);
            tails.push(vec![Vec::new(); slots]);
            let mut by_digit = vec![Vec::new(); b as usize];
            for slot in 0..slots {
                for v in encoding.slot_values(b, slot) {
                    by_digit[v as usize].push(u32::try_from(slot).expect("slot index"));
                }
            }
            member_slots.push(by_digit);
        }
        DeltaIndex {
            config: config.clone(),
            base_rows,
            rows: 0,
            values: Vec::new(),
            tails,
            member_slots,
            budget_bytes,
        }
    }

    /// An empty delta extending `index` as it currently stands.
    pub fn for_index(index: &BitmapIndex, budget_bytes: usize) -> DeltaIndex {
        DeltaIndex::new(index.config(), index.rows(), budget_bytes)
    }

    /// Rows currently buffered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows of the main index this delta extends.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Total rows of `main ∪ delta`.
    pub fn total_rows(&self) -> usize {
        self.base_rows + self.rows
    }

    /// The buffered values in append order (what a merge replays).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Bytes the memtable occupies: tail words plus retained values.
    pub fn bytes_used(&self) -> usize {
        self.tail_bytes(self.rows) + self.values.len() * 8
    }

    /// Current gauges.
    pub fn stats(&self) -> DeltaStats {
        DeltaStats {
            rows: self.rows,
            base_rows: self.base_rows,
            bytes: self.bytes_used(),
            budget_bytes: self.budget_bytes,
        }
    }

    fn tail_bytes(&self, rows: usize) -> usize {
        let words = bix_bitvec::words_for(rows);
        let slots: usize = self.tails.iter().map(Vec::len).sum();
        slots * words * 8
    }

    /// Absorbs a batch into the tails. All-or-nothing: a rejected batch
    /// leaves the delta untouched.
    ///
    /// Rejects out-of-domain values with [`AppendError::OutOfDomain`]
    /// and batches that would exceed the memtable budget with
    /// [`AppendError::MemtableFull`].
    pub fn absorb(&mut self, batch: &[u64]) -> Result<usize, AppendError> {
        let c = self.config.cardinality;
        if let Some(&bad) = batch.iter().find(|&&v| v >= c) {
            return Err(AppendError::OutOfDomain {
                value: bad,
                cardinality: c,
            });
        }
        let needed =
            self.tail_bytes(self.rows + batch.len()) + (self.values.len() + batch.len()) * 8;
        if needed > self.budget_bytes {
            return Err(AppendError::MemtableFull {
                needed,
                budget: self.budget_bytes,
            });
        }
        self.fill(batch);
        Ok(batch.len())
    }

    /// Sets the tail bits for `batch` (domain and budget already
    /// checked). The only per-row work is one word-OR per member slot.
    fn fill(&mut self, batch: &[u64]) {
        let rows_after = self.rows + batch.len();
        let words_after = bix_bitvec::words_for(rows_after);
        let bases = self.config.bases.bases().to_vec();
        let mut divisor = 1u64;
        for (comp, &b) in bases.iter().enumerate() {
            for tail in &mut self.tails[comp] {
                tail.resize(words_after, 0);
            }
            let member = &self.member_slots[comp];
            let tails = &mut self.tails[comp];
            for (i, &v) in batch.iter().enumerate() {
                let pos = self.rows + i;
                let (word, bit) = (pos / 64, 1u64 << (pos % 64));
                let digit = (v / divisor) % b;
                for &slot in &member[digit as usize] {
                    tails[slot as usize][word] |= bit;
                }
            }
            divisor *= b;
        }
        self.values.extend_from_slice(batch);
        self.rows = rows_after;
    }

    /// One slot's bitmap tail as a [`Bitvec`] of `rows` bits.
    pub fn tail(&self, component: usize, slot: usize) -> Bitvec {
        Bitvec::from_words(self.rows, self.tails[component][slot].clone())
    }

    /// Evaluates `q` against the delta rows alone, returning the
    /// matching tail bitmap plus the number of distinct tails folded.
    /// Runs the same §6 rewrite as the main index (shared
    /// [`IndexConfig`] ⇒ identical expression), folded in memory.
    pub fn evaluate_query(&self, q: &Query) -> (Bitvec, usize) {
        let c = self.config.cardinality;
        let constituents: Vec<Expr> = match q {
            Query::Membership(values) => crate::minimal_intervals(values)
                .into_iter()
                .map(|(lo, hi)| {
                    crate::rewrite_interval(lo, hi, c, &self.config.bases, self.config.encoding)
                })
                .collect(),
            other => vec![crate::rewrite_query(
                other,
                c,
                &self.config.bases,
                self.config.encoding,
            )],
        };
        let merged = Expr::or(constituents);
        let scans = merged.scan_count();
        let mut fetch = |r: crate::BitmapRef| self.tail(r.component, r.slot);
        (merged.evaluate(self.rows, &mut fetch), scans)
    }

    /// Appends the delta's answer for `q` to a main-index
    /// [`EvalResult`], making it the `main ∪ delta` answer. Splits the
    /// counters: tails folded go to `delta_scans`, appended rows to
    /// `delta_rows`; the store-side counters are untouched (delta reads
    /// never perform I/O).
    ///
    /// # Panics
    ///
    /// Panics if `result.bitmap` does not cover exactly
    /// [`DeltaIndex::base_rows`] rows — the result was computed against
    /// a different main-index snapshot than this delta extends (a torn
    /// main/delta pairing, which must never reach a client).
    pub fn overlay(&self, q: &Query, result: &mut EvalResult) {
        assert_eq!(
            result.bitmap.len(),
            self.base_rows,
            "main/delta snapshot mismatch: result covers {} rows, delta extends {}",
            result.bitmap.len(),
            self.base_rows
        );
        if self.rows == 0 {
            return;
        }
        let (tail, scans) = self.evaluate_query(q);
        result.bitmap.extend_from(&tail);
        result.delta_scans += scans;
        result.delta_rows += self.rows;
    }

    /// Drops the first `merged` buffered values — they are now in the
    /// main index — and advances `base_rows` past them. The surviving
    /// suffix (rows absorbed while the merge ran) is re-packed into
    /// fresh tails.
    ///
    /// # Panics
    ///
    /// Panics if `merged > rows`.
    pub fn prune_merged(&mut self, merged: usize) {
        assert!(
            merged <= self.rows,
            "cannot prune {merged} of {} delta rows",
            self.rows
        );
        let remaining: Vec<u64> = self.values[merged..].to_vec();
        self.base_rows += merged;
        self.rows = 0;
        self.values.clear();
        for comp in &mut self.tails {
            for tail in comp {
                tail.clear();
            }
        }
        self.fill(&remaining);
    }
}

impl BitmapIndex {
    /// Evaluates a query over `main ∪ delta`: this index's answer with
    /// the delta tail appended (see [`DeltaIndex::overlay`]). The
    /// sequential counterpart of
    /// [`crate::ParallelExecutor::execute_full_delta`].
    pub fn evaluate_with_delta(&mut self, q: &Query, delta: &DeltaIndex) -> Bitvec {
        let mut result = {
            let mut pool =
                bix_storage::BufferPool::new(self.config().disk.pages_for_bytes(64 << 20));
            self.evaluate_detailed(
                q,
                &mut pool,
                crate::EvalStrategy::ComponentWise,
                &bix_storage::CostModel::default(),
            )
        };
        delta.overlay(q, &mut result);
        result.bitmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodecKind, EncodingScheme, Query};

    fn config(scheme: EncodingScheme) -> IndexConfig {
        IndexConfig::one_component(10, scheme)
    }

    #[test]
    fn absorb_then_overlay_matches_rebuild() {
        let initial: Vec<u64> = vec![3, 2, 1, 2, 8];
        let extra: Vec<u64> = vec![0, 9, 5, 5, 7, 4];
        let mut full = initial.clone();
        full.extend(&extra);
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            let cfg = config(scheme);
            let mut main = BitmapIndex::build(&initial, &cfg);
            let mut delta = DeltaIndex::for_index(&main, 1 << 20);
            delta.absorb(&extra).expect("fits");
            let mut rebuilt = BitmapIndex::build(&full, &cfg);
            for lo in 0..10u64 {
                for hi in lo..10 {
                    let q = Query::range(lo, hi);
                    assert_eq!(
                        main.evaluate_with_delta(&q, &delta).to_positions(),
                        rebuilt.evaluate(&q).to_positions(),
                        "{scheme} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_component_and_negation_match_rebuild() {
        let initial: Vec<u64> = (0..200u64).map(|i| (i * 7) % 100).collect();
        let extra: Vec<u64> = (0..77u64).map(|i| (i * 13 + 5) % 100).collect();
        let mut full = initial.clone();
        full.extend(&extra);
        let cfg =
            IndexConfig::n_components(100, EncodingScheme::Interval, 2).with_codec(CodecKind::Bbc);
        let mut main = BitmapIndex::build(&initial, &cfg);
        let mut delta = DeltaIndex::for_index(&main, 1 << 20);
        delta.absorb(&extra).expect("fits");
        let mut rebuilt = BitmapIndex::build(&full, &cfg);
        for q in [
            Query::range(10, 60),
            Query::equality(5),
            Query::membership(vec![0, 7, 55, 99]),
            Query::range(20, 80).not(),
        ] {
            assert_eq!(
                main.evaluate_with_delta(&q, &delta).to_positions(),
                rebuilt.evaluate(&q).to_positions(),
                "{q:?}"
            );
        }
    }

    #[test]
    fn out_of_domain_batch_is_rejected_atomically() {
        let cfg = config(EncodingScheme::Equality);
        let main = BitmapIndex::build(&[1, 2], &cfg);
        let mut delta = DeltaIndex::for_index(&main, 1 << 20);
        let err = delta.absorb(&[3, 10, 4]).expect_err("10 out of domain");
        assert_eq!(
            err,
            AppendError::OutOfDomain {
                value: 10,
                cardinality: 10
            }
        );
        assert!(delta.is_empty(), "rejected batch left no partial state");
        assert_eq!(delta.values(), &[] as &[u64]);
    }

    #[test]
    fn budget_rejects_with_memtable_full() {
        let cfg = config(EncodingScheme::Equality);
        let main = BitmapIndex::build(&[1], &cfg);
        let mut delta = DeltaIndex::for_index(&main, 64);
        let err = delta.absorb(&vec![1; 1000]).expect_err("budget is tiny");
        assert!(matches!(err, AppendError::MemtableFull { .. }));
        assert!(delta.is_empty());
        // A batch within budget still lands.
        let mut delta = DeltaIndex::for_index(&main, 1 << 20);
        assert_eq!(delta.absorb(&[5, 6]).expect("fits"), 2);
        assert_eq!(delta.rows(), 2);
        assert!(delta.bytes_used() <= 1 << 20);
    }

    #[test]
    fn prune_merged_keeps_the_unmerged_suffix() {
        let cfg = config(EncodingScheme::Interval);
        let initial: Vec<u64> = vec![1, 2, 3];
        let mut main = BitmapIndex::build(&initial, &cfg);
        let mut delta = DeltaIndex::for_index(&main, 1 << 20);
        delta.absorb(&[4, 5]).expect("fits");
        delta.absorb(&[6, 7, 8]).expect("fits");

        // Merge the first batch into main, as the background merge does.
        main.append(&[4, 5]);
        delta.prune_merged(2);
        assert_eq!(delta.base_rows(), 5);
        assert_eq!(delta.rows(), 3);
        assert_eq!(delta.values(), &[6, 7, 8]);

        let mut rebuilt = BitmapIndex::build(&[1, 2, 3, 4, 5, 6, 7, 8], &cfg);
        for q in [Query::range(2, 6), Query::equality(7), Query::le(4)] {
            assert_eq!(
                main.evaluate_with_delta(&q, &delta).to_positions(),
                rebuilt.evaluate(&q).to_positions(),
                "{q:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "snapshot mismatch")]
    fn overlay_panics_on_torn_main_delta_pairing() {
        let cfg = config(EncodingScheme::Equality);
        let mut main = BitmapIndex::build(&[1, 2, 3], &cfg);
        // Delta claims to extend a 5-row main; main has 3 rows.
        let mut delta = DeltaIndex::new(&cfg, 5, 1 << 20);
        delta.absorb(&[4]).expect("fits");
        let _ = main.evaluate_with_delta(&Query::equality(1), &delta);
    }

    #[test]
    fn stats_report_budget_and_usage() {
        let cfg = config(EncodingScheme::Equality);
        let main = BitmapIndex::build(&[1], &cfg);
        let mut delta = DeltaIndex::for_index(&main, 4096);
        delta.absorb(&[2, 3, 4]).expect("fits");
        let s = delta.stats();
        assert_eq!(s.rows, 3);
        assert_eq!(s.base_rows, 1);
        assert_eq!(s.budget_bytes, 4096);
        assert!(s.bytes > 0 && s.bytes <= 4096);
    }
}
