//! Index persistence: a versioned on-disk format for built indexes.
//!
//! The experiments run against a simulated disk, but a downstream user
//! needs to build an index once and reopen it later. The format is a
//! single file:
//!
//! ```text
//! magic  "BIXIDX1\n"                          8 bytes
//! u64    attribute cardinality C
//! u64    row count
//! u8     encoding tag   u8 codec tag   u8 has-existence-bitmap
//! u16    number of components
//! u64×n  component bases, least significant first
//! u64×C  per-value histogram (for selectivity estimation)
//! u32    total bitmap count
//! per bitmap (component-major, slot order; the existence bitmap, when
//! present, comes last):
//!   u64  stored (compressed) byte length
//!   ...  stored bytes (exactly as on the simulated disk)
//! ```
//!
//! All integers are little-endian. Loading rebuilds the simulated disk
//! with the same page geometry, so space accounting and query costs are
//! identical to the freshly built index.

use crate::{BaseVector, BitmapIndex, CodecKind, EncodingScheme, IndexConfig};
use bix_storage::{BitmapStore, DiskConfig};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"BIXIDX1\n";

fn encoding_tag(scheme: EncodingScheme) -> u8 {
    match scheme {
        EncodingScheme::Equality => 0,
        EncodingScheme::Range => 1,
        EncodingScheme::Interval => 2,
        EncodingScheme::EqualityRange => 3,
        EncodingScheme::Oreo => 4,
        EncodingScheme::EqualityInterval => 5,
        EncodingScheme::EqualityIntervalStar => 6,
        EncodingScheme::IntervalPlus => 7,
    }
}

fn encoding_from_tag(tag: u8) -> io::Result<EncodingScheme> {
    EncodingScheme::ALL_WITH_VARIANTS
        .into_iter()
        .find(|&s| encoding_tag(s) == tag)
        .ok_or_else(|| bad_data(format!("unknown encoding tag {tag}")))
}

fn codec_tag(codec: CodecKind) -> u8 {
    match codec {
        CodecKind::Raw => 0,
        CodecKind::Bbc => 1,
        CodecKind::Wah => 2,
        CodecKind::Ewah => 3,
        CodecKind::Roaring => 4,
    }
}

fn codec_from_tag(tag: u8) -> io::Result<CodecKind> {
    match tag {
        0 => Ok(CodecKind::Raw),
        1 => Ok(CodecKind::Bbc),
        2 => Ok(CodecKind::Wah),
        3 => Ok(CodecKind::Ewah),
        4 => Ok(CodecKind::Roaring),
        other => Err(bad_data(format!("unknown codec tag {other}"))),
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_exact_array<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_exact_array(r)?))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_exact_array(r)?))
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    Ok(u16::from_le_bytes(read_exact_array(r)?))
}

impl BitmapIndex {
    /// Serializes the index to a writer in the format above.
    pub fn save_to(&self, mut w: impl Write) -> io::Result<()> {
        let config = self.config();
        w.write_all(MAGIC)?;
        w.write_all(&config.cardinality.to_le_bytes())?;
        w.write_all(&(self.rows() as u64).to_le_bytes())?;
        w.write_all(&[
            encoding_tag(config.encoding),
            codec_tag(config.codec),
            u8::from(self.is_nullable()),
        ])?;
        let bases = config.bases.bases();
        w.write_all(&(bases.len() as u16).to_le_bytes())?;
        for &b in bases {
            w.write_all(&b.to_le_bytes())?;
        }
        for &count in self.histogram() {
            w.write_all(&count.to_le_bytes())?;
        }
        w.write_all(&(self.num_bitmaps() as u32).to_le_bytes())?;
        for (comp, &base) in bases.iter().enumerate() {
            for slot in 0..config.encoding.num_bitmaps(base) {
                let contents = self.stored_contents(comp, slot);
                w.write_all(&(contents.len() as u64).to_le_bytes())?;
                w.write_all(contents)?;
            }
        }
        if let Some(eb) = self.existence_handle() {
            let contents = self.existence_contents(eb);
            w.write_all(&(contents.len() as u64).to_le_bytes())?;
            w.write_all(contents)?;
        }
        Ok(())
    }

    /// Saves to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.save_to(&mut w)?;
        w.flush()
    }

    /// Deserializes an index from a reader.
    pub fn load_from(mut r: impl Read) -> io::Result<BitmapIndex> {
        let magic: [u8; 8] = read_exact_array(&mut r)?;
        if &magic != MAGIC {
            return Err(bad_data("not a bitmap-index file (bad magic)".into()));
        }
        let cardinality = read_u64(&mut r)?;
        let rows = read_u64(&mut r)? as usize;
        let [enc_tag, codec_tag_byte, has_existence] = read_exact_array::<3>(&mut r)?;
        let encoding = encoding_from_tag(enc_tag)?;
        let codec = codec_from_tag(codec_tag_byte)?;
        if has_existence > 1 {
            return Err(bad_data(format!("bad existence flag {has_existence}")));
        }
        let n = read_u16(&mut r)? as usize;
        if n == 0 {
            return Err(bad_data("zero components".into()));
        }
        let mut bases = Vec::with_capacity(n);
        for _ in 0..n {
            bases.push(read_u64(&mut r)?);
        }
        let bases = BaseVector::from_lsb(bases);
        if bases.capacity() < cardinality {
            return Err(bad_data("base vector cannot cover cardinality".into()));
        }
        let mut histogram = Vec::with_capacity(cardinality as usize);
        for _ in 0..cardinality {
            histogram.push(read_u64(&mut r)?);
        }
        let total_bitmaps = read_u32(&mut r)? as usize;
        let config = IndexConfig {
            cardinality,
            bases,
            encoding,
            codec,
            disk: DiskConfig::default(),
        };
        if total_bitmaps != config.num_bitmaps() {
            return Err(bad_data(format!(
                "bitmap count {} does not match configuration ({})",
                total_bitmaps,
                config.num_bitmaps()
            )));
        }

        let mut store = BitmapStore::new(config.disk);
        let mut handles = Vec::with_capacity(n);
        let mut uncompressed_bytes = 0usize;
        for (comp, &b) in config.bases.bases().iter().enumerate() {
            let n_slots = encoding.num_bitmaps(b);
            let mut comp_handles = Vec::with_capacity(n_slots);
            for slot in 0..n_slots {
                let len = read_u64(&mut r)? as usize;
                let mut contents = vec![0u8; len];
                r.read_exact(&mut contents)?;
                // Validate by decoding once; also restores len-bits info.
                let name = format!("c{comp}:{}", encoding.slot_name(b, slot));
                let bitmap = codec.codec().decompress(&contents, rows);
                uncompressed_bytes += bitmap.byte_size();
                comp_handles.push(store.put(&name, codec, &bitmap));
            }
            handles.push(comp_handles);
        }
        let existence = if has_existence == 1 {
            let len = read_u64(&mut r)? as usize;
            let mut contents = vec![0u8; len];
            r.read_exact(&mut contents)?;
            let bitmap = codec.codec().decompress(&contents, rows);
            uncompressed_bytes += bitmap.byte_size();
            Some(store.put("EB", codec, &bitmap))
        } else {
            None
        };
        Ok(BitmapIndex::from_parts(
            config,
            store,
            handles,
            existence,
            histogram,
            rows,
            uncompressed_bytes,
        ))
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<BitmapIndex> {
        let file = std::fs::File::open(path)?;
        BitmapIndex::load_from(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;

    fn sample_index(scheme: EncodingScheme, codec: CodecKind) -> BitmapIndex {
        let column: Vec<u64> = (0..5000u64).map(|i| (i * 37 + i / 7) % 50).collect();
        let config = IndexConfig::n_components(50, scheme, 2).with_codec(codec);
        BitmapIndex::build(&column, &config)
    }

    #[test]
    fn save_load_round_trip_in_memory() {
        for scheme in EncodingScheme::ALL_WITH_VARIANTS {
            for codec in [CodecKind::Raw, CodecKind::Bbc] {
                let mut original = sample_index(scheme, codec);
                let mut buf = Vec::new();
                original.save_to(&mut buf).expect("save");
                let mut loaded = BitmapIndex::load_from(buf.as_slice()).expect("load");

                assert_eq!(loaded.rows(), original.rows());
                assert_eq!(loaded.num_bitmaps(), original.num_bitmaps());
                assert_eq!(loaded.space_bytes(), original.space_bytes());
                for q in [
                    Query::equality(17),
                    Query::range(5, 31),
                    Query::membership(vec![0, 9, 48, 49]),
                ] {
                    assert_eq!(
                        loaded.evaluate(&q).to_positions(),
                        original.evaluate(&q).to_positions(),
                        "{scheme} {codec} {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let mut original = sample_index(EncodingScheme::Interval, CodecKind::Bbc);
        let path =
            std::env::temp_dir().join(format!("bix_persist_test_{}.idx", std::process::id()));
        original.save(&path).expect("save to file");
        let mut loaded = BitmapIndex::load(&path).expect("load from file");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            loaded.evaluate(&Query::range(10, 20)).to_positions(),
            original.evaluate(&Query::range(10, 20)).to_positions()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = match BitmapIndex::load_from(&b"NOTANIDX________"[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let original = sample_index(EncodingScheme::Equality, CodecKind::Raw);
        let mut buf = Vec::new();
        original.save_to(&mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(BitmapIndex::load_from(buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let original = sample_index(EncodingScheme::Equality, CodecKind::Raw);
        let mut buf = Vec::new();
        original.save_to(&mut buf).expect("save");
        buf[24] = 0xEE; // encoding tag byte
        assert!(BitmapIndex::load_from(buf.as_slice()).is_err());
    }

    #[test]
    fn nullable_index_round_trips_with_existence_bitmap() {
        let column: Vec<Option<u64>> = (0..1000u64)
            .map(|i| if i % 7 == 0 { None } else { Some(i % 50) })
            .collect();
        let config =
            IndexConfig::one_component(50, EncodingScheme::Interval).with_codec(CodecKind::Bbc);
        let mut original = BitmapIndex::build_nullable(&column, &config);
        let mut buf = Vec::new();
        original.save_to(&mut buf).expect("save");
        let mut loaded = BitmapIndex::load_from(buf.as_slice()).expect("load");
        assert!(loaded.is_nullable());
        assert_eq!(loaded.non_null_rows(), original.non_null_rows());
        for q in [Query::equality(49), Query::range(3, 20).not()] {
            assert_eq!(
                loaded.evaluate(&q).to_positions(),
                original.evaluate(&q).to_positions(),
                "{q:?}"
            );
        }
    }

    #[test]
    fn loaded_index_supports_appends() {
        let mut original = sample_index(EncodingScheme::Interval, CodecKind::Bbc);
        let mut buf = Vec::new();
        original.save_to(&mut buf).expect("save");
        let mut loaded = BitmapIndex::load_from(buf.as_slice()).expect("load");
        loaded.append(&[7, 7, 7]);
        original.append(&[7, 7, 7]);
        assert_eq!(
            loaded.evaluate(&Query::equality(7)).to_positions(),
            original.evaluate(&Query::equality(7)).to_positions()
        );
    }
}
